//! The seeded DBpedia-like dataset generator.
//!
//! Substitutes for the live DBpedia endpoint (see DESIGN.md). The generated
//! graph reproduces the statistical shapes Sapphire's design depends on:
//! few predicates vs. many literals, an RDFS class hierarchy with
//! materialized transitive types (as DBpedia publishes), skewed entity
//! in-degrees (so literal significance is meaningful), literal lengths
//! spread across many bins, plus non-English and over-long literals that
//! initialization must filter out.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sapphire_rdf::{vocab, Graph, Literal, Term};

use crate::names;
use crate::ontology::{dbo, res, ANCHORS, CLASS_HIERARCHY};

/// Size knobs for the generator.
#[derive(Debug, Clone, Copy)]
pub struct DatasetConfig {
    /// RNG seed — same seed, same dataset.
    pub seed: u64,
    /// Random people (split across person subclasses).
    pub persons: usize,
    /// Random cities (countries are added proportionally).
    pub cities: usize,
    /// Random works (books/films/shows).
    pub works: usize,
    /// Random organisations (universities/companies/publishers).
    pub organisations: usize,
    /// Extra noise literals: misspellings, other languages, over-long text.
    pub noise_literals: usize,
}

impl DatasetConfig {
    /// A few hundred entities — fast unit tests.
    pub fn tiny(seed: u64) -> Self {
        DatasetConfig {
            seed,
            persons: 60,
            cities: 20,
            works: 40,
            organisations: 15,
            noise_literals: 40,
        }
    }

    /// A few thousand entities — integration tests and examples.
    pub fn small(seed: u64) -> Self {
        DatasetConfig {
            seed,
            persons: 600,
            cities: 120,
            works: 400,
            organisations: 120,
            noise_literals: 400,
        }
    }

    /// Tens of thousands of entities — benchmarks.
    pub fn medium(seed: u64) -> Self {
        DatasetConfig {
            seed,
            persons: 8_000,
            cities: 1_200,
            works: 5_000,
            organisations: 1_200,
            noise_literals: 6_000,
        }
    }

    /// Roughly 4× `medium` — the rung where snapshot bring-up visibly beats
    /// regeneration and per-shard partitions stop being toy-sized.
    pub fn large(seed: u64) -> Self {
        DatasetConfig {
            seed,
            persons: 32_000,
            cities: 4_800,
            works: 20_000,
            organisations: 4_800,
            noise_literals: 24_000,
        }
    }

    /// Resolve a scale name (`tiny` | `small` | `medium` | `large`) to its
    /// config, or `None` for an unrecognized name. Callers must treat `None`
    /// as a hard error — silently substituting a default would mislabel every
    /// downstream report.
    pub fn for_scale(scale: &str, seed: u64) -> Option<Self> {
        match scale {
            "tiny" => Some(Self::tiny(seed)),
            "small" => Some(Self::small(seed)),
            "medium" => Some(Self::medium(seed)),
            "large" => Some(Self::large(seed)),
            _ => None,
        }
    }

    /// The scale names [`DatasetConfig::for_scale`] accepts, for error text.
    pub const SCALE_NAMES: &'static [&'static str] = &["tiny", "small", "medium", "large"];
}

/// Generate the dataset.
pub fn generate(config: DatasetConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut g = Graph::new();

    emit_ontology(&mut g);
    sapphire_rdf::turtle::parse_into(ANCHORS, &mut g).expect("anchor turtle parses");

    let countries = emit_countries(&mut g, &mut rng, (config.cities / 8).max(2));
    let cities = emit_cities(&mut g, &mut rng, config.cities, &countries);
    let organisations = emit_organisations(&mut g, &mut rng, config.organisations, &cities);
    let persons = emit_persons(&mut g, &mut rng, config.persons, &cities, &organisations);
    emit_works(&mut g, &mut rng, config.works, &persons, &organisations);
    emit_noise(&mut g, &mut rng, config.noise_literals);

    materialize_types(&mut g);
    // Hand back a sealed graph: scans run at full columnar speed and the
    // result is immediately snapshot-writable.
    g.seal();
    g
}

fn iri(s: String) -> Term {
    Term::Iri(s)
}

fn en(s: impl Into<String>) -> Term {
    Term::en(s)
}

fn emit_ontology(g: &mut Graph) {
    for (class, parent) in CLASS_HIERARCHY {
        let class_iri = dbo(class);
        let parent_iri = if *parent == "Thing" {
            vocab::owl::THING.to_string()
        } else {
            dbo(parent)
        };
        g.insert(
            iri(class_iri.clone()),
            Term::iri(vocab::rdf::TYPE),
            Term::iri(vocab::owl::CLASS),
        );
        g.insert(
            iri(class_iri),
            Term::iri(vocab::rdfs::SUB_CLASS_OF),
            iri(parent_iri),
        );
    }
    // The root is a class too.
    g.insert(
        Term::iri(vocab::owl::THING),
        Term::iri(vocab::rdf::TYPE),
        Term::iri(vocab::owl::CLASS),
    );
}

fn emit_countries(g: &mut Graph, rng: &mut StdRng, n: usize) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..n {
        let name = names::COUNTRY_NAMES[i % names::COUNTRY_NAMES.len()];
        let id = res(&format!("{}_{}", name.replace(' ', "_"), i));
        g.insert(
            iri(id.clone()),
            Term::iri(vocab::rdf::TYPE),
            iri(dbo("Country")),
        );
        g.insert(iri(id.clone()), iri(dbo("name")), en(format!("{name} {i}")));
        let currency = names::CURRENCIES[rng.gen_range(0..names::CURRENCIES.len())];
        g.insert(iri(id.clone()), iri(dbo("currency")), en(currency));
        out.push(id);
    }
    out
}

fn emit_cities(g: &mut Graph, rng: &mut StdRng, n: usize, countries: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    for i in 0..n {
        let base = names::CITY_NAMES[i % names::CITY_NAMES.len()];
        let id = res(&format!("{base}_{i}"));
        let name = format!("{base} {i}");
        g.insert(
            iri(id.clone()),
            Term::iri(vocab::rdf::TYPE),
            iri(dbo("City")),
        );
        g.insert(iri(id.clone()), iri(dbo("name")), en(&name));
        g.insert(
            iri(id.clone()),
            iri(dbo("population")),
            Term::Literal(Literal::integer(rng.gen_range(1_000..9_000_000))),
        );
        let tz = names::TIME_ZONES[rng.gen_range(0..names::TIME_ZONES.len())];
        g.insert(iri(id.clone()), iri(dbo("timeZone")), en(tz));
        if let Some(c) = countries.get(rng.gen_range(0..countries.len().max(1))) {
            g.insert(iri(id.clone()), iri(dbo("country")), iri(c.clone()));
        }
        out.push(id);
    }
    out
}

fn emit_organisations(
    g: &mut Graph,
    rng: &mut StdRng,
    n: usize,
    cities: &[String],
) -> Organisations {
    let mut orgs = Organisations::default();
    for i in 0..n {
        let (class, name, list): (&str, String, &mut Vec<String>) = match i % 3 {
            0 => {
                let stem = names::UNIVERSITY_STEMS[i % names::UNIVERSITY_STEMS.len()];
                (
                    ("University"),
                    format!("University of {stem} {i}"),
                    &mut orgs.universities,
                )
            }
            1 => {
                let stem = names::COMPANY_STEMS[i % names::COMPANY_STEMS.len()];
                (
                    ("Company"),
                    format!("{stem} Corporation {i}"),
                    &mut orgs.companies,
                )
            }
            _ => {
                let stem = names::COMPANY_STEMS[(i / 3) % names::COMPANY_STEMS.len()];
                (
                    ("Publisher"),
                    format!("{stem} Press {i}"),
                    &mut orgs.publishers,
                )
            }
        };
        let id = res(&name.replace(' ', "_"));
        g.insert(
            iri(id.clone()),
            Term::iri(vocab::rdf::TYPE),
            iri(dbo(class)),
        );
        g.insert(iri(id.clone()), iri(dbo("name")), en(&name));
        g.insert(iri(id.clone()), Term::iri(vocab::rdfs::LABEL), en(&name));
        if class == "Company" {
            let ind = names::INDUSTRIES[rng.gen_range(0..names::INDUSTRIES.len())];
            g.insert(iri(id.clone()), iri(dbo("industry")), en(ind));
            if rng.gen_bool(0.2) {
                let second = names::INDUSTRIES[rng.gen_range(0..names::INDUSTRIES.len())];
                g.insert(iri(id.clone()), iri(dbo("industry")), en(second));
            }
        }
        if !cities.is_empty() && rng.gen_bool(0.5) {
            let c = &cities[rng.gen_range(0..cities.len())];
            g.insert(iri(id.clone()), iri(dbo("state")), iri(c.clone()));
        }
        list.push(id);
    }
    orgs
}

#[derive(Default)]
struct Organisations {
    universities: Vec<String>,
    companies: Vec<String>,
    publishers: Vec<String>,
}

struct Persons {
    all: Vec<String>,
    writers: Vec<String>,
    actors: Vec<String>,
}

fn emit_persons(
    g: &mut Graph,
    rng: &mut StdRng,
    n: usize,
    cities: &[String],
    orgs: &Organisations,
) -> Persons {
    const CLASSES: &[&str] = &[
        "Scientist",
        "Politician",
        "Actor",
        "Writer",
        "ChessPlayer",
        "MusicalArtist",
    ];
    let mut persons = Persons {
        all: Vec::new(),
        writers: Vec::new(),
        actors: Vec::new(),
    };
    for i in 0..n {
        let first = names::FIRST_NAMES[rng.gen_range(0..names::FIRST_NAMES.len())];
        let last = names::LAST_NAMES[rng.gen_range(0..names::LAST_NAMES.len())];
        let class = CLASSES[i % CLASSES.len()];
        let id = res(&format!("{first}_{last}_{i}"));
        let name = format!("{first} {last}");
        g.insert(
            iri(id.clone()),
            Term::iri(vocab::rdf::TYPE),
            iri(dbo(class)),
        );
        g.insert(iri(id.clone()), iri(dbo("name")), en(&name));
        g.insert(iri(id.clone()), iri(dbo("surname")), en(last));
        let year = rng.gen_range(1850..2000);
        let month = rng.gen_range(1..=12);
        let day = rng.gen_range(1..=28);
        g.insert(
            iri(id.clone()),
            iri(dbo("birthDate")),
            Term::Literal(Literal::date(format!("{year:04}-{month:02}-{day:02}"))),
        );
        if !cities.is_empty() {
            let bp = &cities[rng.gen_range(0..cities.len())];
            g.insert(iri(id.clone()), iri(dbo("birthPlace")), iri(bp.clone()));
            if rng.gen_bool(0.3) {
                // Some die where they were born, some elsewhere.
                let dp = if rng.gen_bool(0.3) {
                    bp
                } else {
                    &cities[rng.gen_range(0..cities.len())]
                };
                g.insert(iri(id.clone()), iri(dbo("deathPlace")), iri(dp.clone()));
                let dyear = year + rng.gen_range(30..90);
                g.insert(
                    iri(id.clone()),
                    iri(dbo("deathDate")),
                    Term::Literal(Literal::date(format!("{dyear:04}-01-15"))),
                );
            }
        }
        if class == "Scientist" && !orgs.universities.is_empty() {
            let u = &orgs.universities[rng.gen_range(0..orgs.universities.len())];
            g.insert(iri(id.clone()), iri(dbo("almaMater")), iri(u.clone()));
        }
        if class == "MusicalArtist" {
            let inst = names::INSTRUMENTS[rng.gen_range(0..names::INSTRUMENTS.len())];
            g.insert(iri(id.clone()), iri(dbo("instrument")), iri(res(inst)));
        }
        if rng.gen_bool(0.25) {
            if let Some(prev) = persons.all.last() {
                g.insert(iri(id.clone()), iri(dbo("spouse")), iri(prev.clone()));
            }
        }
        if rng.gen_bool(0.2) && persons.all.len() > 2 {
            let child = &persons.all[rng.gen_range(0..persons.all.len())];
            g.insert(iri(id.clone()), iri(dbo("child")), iri(child.clone()));
            g.insert(iri(child.clone()), iri(dbo("parent")), iri(id.clone()));
        }
        match class {
            "Writer" => persons.writers.push(id.clone()),
            "Actor" => persons.actors.push(id.clone()),
            _ => {}
        }
        persons.all.push(id);
    }
    persons
}

fn emit_works(g: &mut Graph, rng: &mut StdRng, n: usize, persons: &Persons, orgs: &Organisations) {
    for i in 0..n {
        let head = names::TITLE_HEADS[rng.gen_range(0..names::TITLE_HEADS.len())];
        let tail = names::TITLE_TAILS[rng.gen_range(0..names::TITLE_TAILS.len())];
        let title = format!("{head} {tail} {i}");
        let id = res(&title.replace(' ', "_"));
        let class = match i % 3 {
            0 => "Book",
            1 => "Film",
            _ => "TelevisionShow",
        };
        g.insert(
            iri(id.clone()),
            Term::iri(vocab::rdf::TYPE),
            iri(dbo(class)),
        );
        g.insert(iri(id.clone()), iri(dbo("name")), en(&title));
        match class {
            "Book" => {
                if !persons.writers.is_empty() {
                    let a = &persons.writers[rng.gen_range(0..persons.writers.len())];
                    g.insert(iri(id.clone()), iri(dbo("author")), iri(a.clone()));
                }
                if !orgs.publishers.is_empty() {
                    let p = &orgs.publishers[rng.gen_range(0..orgs.publishers.len())];
                    g.insert(iri(id.clone()), iri(dbo("publisher")), iri(p.clone()));
                }
                g.insert(
                    iri(id.clone()),
                    iri(dbo("numberOfPages")),
                    Term::Literal(Literal::integer(rng.gen_range(80..900))),
                );
            }
            "Film" => {
                if !persons.all.is_empty() {
                    let d = &persons.all[rng.gen_range(0..persons.all.len())];
                    g.insert(iri(id.clone()), iri(dbo("director")), iri(d.clone()));
                }
                for _ in 0..rng.gen_range(1..4) {
                    if !persons.actors.is_empty() {
                        let s = &persons.actors[rng.gen_range(0..persons.actors.len())];
                        g.insert(iri(id.clone()), iri(dbo("starring")), iri(s.clone()));
                    }
                }
                g.insert(
                    iri(id.clone()),
                    iri(dbo("budget")),
                    Term::Literal(Literal::double(rng.gen_range(1..300) as f64 * 1.0e6)),
                );
            }
            _ => {
                for _ in 0..rng.gen_range(2..5) {
                    if !persons.actors.is_empty() {
                        let s = &persons.actors[rng.gen_range(0..persons.actors.len())];
                        g.insert(iri(id.clone()), iri(dbo("starring")), iri(s.clone()));
                    }
                }
            }
        }
    }
}

/// Noise: misspelled names (exercising JW search), non-English literals and
/// over-long literals (exercising the init filters).
fn emit_noise(g: &mut Graph, rng: &mut StdRng, n: usize) {
    for i in 0..n {
        let id = res(&format!("Noise_{i}"));
        g.insert(
            iri(id.clone()),
            Term::iri(vocab::rdf::TYPE),
            iri(dbo("Place")),
        );
        match i % 4 {
            0 => {
                // Misspelled person/city name: duplicate, drop, or swap a char.
                let base = if rng.gen_bool(0.5) {
                    names::LAST_NAMES[rng.gen_range(0..names::LAST_NAMES.len())]
                } else {
                    names::CITY_NAMES[rng.gen_range(0..names::CITY_NAMES.len())]
                };
                g.insert(iri(id), iri(dbo("name")), en(mutate(base, rng)));
            }
            1 => {
                // Non-English literal: must be filtered by initialization.
                g.insert(
                    iri(id),
                    iri(dbo("name")),
                    Term::Literal(Literal::lang_tagged(format!("Étranger {i}"), "fr")),
                );
            }
            2 => {
                // Over-long literal: must be filtered by initialization.
                g.insert(
                    iri(id),
                    iri(dbo("name")),
                    en(format!(
                        "An exceedingly long descriptive literal number {i} that rambles on and on \
                         well past the eighty character cutoff used by Sapphire"
                    )),
                );
            }
            _ => {
                // Random short keyword-ish literal to fill the bins.
                let a = names::TITLE_HEADS[rng.gen_range(0..names::TITLE_HEADS.len())];
                let b = names::TITLE_TAILS[rng.gen_range(0..names::TITLE_TAILS.len())];
                g.insert(iri(id), iri(dbo("name")), en(format!("{a} {b} note {i}")));
            }
        }
    }
}

fn mutate(s: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 3 {
        return format!("{s}x");
    }
    let pos = rng.gen_range(1..chars.len());
    match rng.gen_range(0..3) {
        0 => {
            // duplicate a char
            let mut out: Vec<char> = chars.clone();
            out.insert(pos, chars[pos - 1]);
            out.into_iter().collect()
        }
        1 => {
            // drop a char
            let mut out = chars.clone();
            out.remove(pos);
            out.into_iter().collect()
        }
        _ => {
            // append 's' (Kennedy → Kennedys)
            format!("{s}s")
        }
    }
}

/// Add `rdf:type` triples for every superclass of each entity's declared
/// types — DBpedia materializes the transitive closure, and Sapphire's
/// class-hierarchy walk (§5.1) relies on it.
fn materialize_types(g: &mut Graph) {
    use std::collections::HashMap;
    let parents: HashMap<String, String> = CLASS_HIERARCHY
        .iter()
        .map(|(c, p)| {
            let parent = if *p == "Thing" {
                vocab::owl::THING.to_string()
            } else {
                dbo(p)
            };
            (dbo(c), parent)
        })
        .collect();
    let type_term = Term::iri(vocab::rdf::TYPE);
    let Some(type_id) = g.term_id(&type_term) else {
        return;
    };
    let mut to_add: Vec<(Term, Term)> = Vec::new();
    for t in g.matching(None, Some(type_id), None) {
        let subject = g.term(t[0]).clone();
        let mut class = g.term(t[2]).lexical().to_string();
        while let Some(parent) = parents.get(&class) {
            to_add.push((subject.clone(), Term::iri(parent.clone())));
            class = parent.clone();
        }
    }
    for (s, c) in to_add {
        g.insert(s, type_term.clone(), c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapphire_sparql::{evaluate_select, parse_select, WorkBudget};

    fn run(g: &Graph, q: &str) -> sapphire_sparql::Solutions {
        evaluate_select(g, &parse_select(q).unwrap(), &mut WorkBudget::unlimited()).unwrap()
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(DatasetConfig::tiny(7));
        let b = generate(DatasetConfig::tiny(7));
        assert_eq!(a.len(), b.len());
        let c = generate(DatasetConfig::tiny(8));
        assert_ne!(a.len(), c.len());
    }

    #[test]
    fn anchors_survive_generation() {
        let g = generate(DatasetConfig::tiny(1));
        let s = run(
            &g,
            r#"SELECT ?vp WHERE { res:John_F._Kennedy dbo:vicePresident ?vp }"#,
        );
        assert_eq!(s.len(), 1);
        assert_eq!(
            s.rows[0][0].as_ref().unwrap().lexical(),
            res("Lyndon_B._Johnson")
        );
    }

    #[test]
    fn types_are_materialized() {
        let g = generate(DatasetConfig::tiny(1));
        // JFK is a President; materialization adds Politician, Person, Agent, Thing.
        let s = run(&g, "SELECT ?t WHERE { res:John_F._Kennedy a ?t }");
        let types: Vec<String> = s.values("t").map(|t| t.lexical().to_string()).collect();
        assert!(types.contains(&dbo("President")));
        assert!(types.contains(&dbo("Politician")));
        assert!(types.contains(&dbo("Person")));
        assert!(types.contains(&vocab::owl::THING.to_string()));
    }

    #[test]
    fn class_hierarchy_is_queryable() {
        let g = generate(DatasetConfig::tiny(1));
        let s = run(
            &g,
            "SELECT ?class ?subclass WHERE { ?class a owl:Class . ?class rdfs:subClassOf ?subclass }",
        );
        assert!(s.len() >= CLASS_HIERARCHY.len());
    }

    #[test]
    fn noise_includes_filterable_literals() {
        let g = generate(DatasetConfig::tiny(3));
        let long = run(
            &g,
            "SELECT ?o WHERE { ?s dbo:name ?o . FILTER(strlen(str(?o)) >= 80) }",
        );
        assert!(!long.is_empty(), "need over-long literals");
        let french = run(
            &g,
            "SELECT ?o WHERE { ?s dbo:name ?o . FILTER(lang(?o) = 'fr') }",
        );
        assert!(!french.is_empty(), "need non-English literals");
    }

    #[test]
    fn population_skew_supports_superlatives() {
        let g = generate(DatasetConfig::tiny(5));
        let s = run(
            &g,
            "SELECT ?c ?p WHERE { ?c a dbo:City ; dbo:country res:Australia ; dbo:population ?p } ORDER BY DESC(?p) LIMIT 1",
        );
        assert_eq!(s.get(0, "c").unwrap().lexical(), res("Sydney"));
    }

    #[test]
    fn scale_knobs_scale() {
        let tiny = generate(DatasetConfig::tiny(2));
        let small = generate(DatasetConfig::small(2));
        assert!(small.len() > tiny.len() * 3);
    }

    #[test]
    fn generated_graph_is_sealed() {
        let g = generate(DatasetConfig::tiny(2));
        assert!(g.is_sealed(), "generate() must hand back a sealed graph");
    }

    #[test]
    fn large_rung_sits_well_above_medium() {
        let medium = generate(DatasetConfig::medium(42));
        let large = generate(DatasetConfig::large(42));
        assert!(
            large.len() > medium.len() * 3,
            "large ({}) must dwarf medium ({})",
            large.len(),
            medium.len()
        );
    }

    #[test]
    fn for_scale_resolves_every_published_name_and_nothing_else() {
        for &name in DatasetConfig::SCALE_NAMES {
            assert!(DatasetConfig::for_scale(name, 1).is_some(), "{name}");
        }
        assert!(DatasetConfig::for_scale("gigantic", 1).is_none());
        assert!(DatasetConfig::for_scale("", 1).is_none());
        assert!(
            DatasetConfig::for_scale("Small", 1).is_none(),
            "case-sensitive"
        );
        // The seed threads through.
        assert_eq!(DatasetConfig::for_scale("tiny", 9).unwrap().seed, 9);
    }
}
