//! The multi-session Sapphire server.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sapphire_core::qcm::CompletionResult;
use sapphire_core::qsm::QsmOutput;
use sapphire_core::session::{Modifiers, Session, TripleInput};
use sapphire_core::{AnswerTable, CacheStats, PredictiveUserModel};
use sapphire_endpoint::{QueryService, ServiceError};
use sapphire_sparql::{Query, QueryResult, SelectQuery, Solutions, WorkBudget};

use crate::admission::{AdmissionController, TenantBudgets};
use crate::error::{from_federation, ServerError};
use crate::registry::{SessionId, SessionRegistry};
use crate::response_cache::{completion_key, run_key, ShardedResponseCache};

/// Tuning knobs of a [`SapphireServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Service name (reported through the [`QueryService`] surface).
    pub name: String,
    /// Requests allowed to execute concurrently.
    pub max_in_flight: usize,
    /// Requests allowed to wait for a slot beyond `max_in_flight`; everything
    /// past this is rejected with [`ServerError::Overloaded`].
    pub max_queue_depth: usize,
    /// How long a queued request may wait before a typed
    /// [`ServerError::QueueTimeout`].
    pub queue_wait: Duration,
    /// Per-tenant work budget per accounting window (`None` = unlimited).
    /// Denominated in evaluator work units — see
    /// [`ServerConfig::with_tenant_budget`].
    pub tenant_window_budget: Option<u64>,
    /// Work units charged per QCM completion request.
    pub completion_cost: u64,
    /// Work units charged per run request, plus
    /// [`run_per_pattern_cost`](Self::run_per_pattern_cost) per triple pattern.
    pub run_base_cost: u64,
    /// Extra work units charged per triple pattern in a run request.
    pub run_per_pattern_cost: u64,
    /// Response-cache shards.
    pub cache_shards: usize,
    /// LRU capacity per response-cache shard.
    pub cache_capacity_per_shard: usize,
    /// Session-registry shards.
    pub registry_shards: usize,
    /// Maximum concurrently open sessions.
    pub max_sessions: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(8);
        ServerConfig {
            name: "sapphire".to_string(),
            max_in_flight: cores,
            max_queue_depth: cores * 4,
            queue_wait: Duration::from_millis(250),
            tenant_window_budget: None,
            completion_cost: 1,
            run_base_cost: 4,
            run_per_pattern_cost: 4,
            cache_shards: 16,
            cache_capacity_per_shard: 4096,
            registry_shards: 16,
            max_sessions: 65_536,
        }
    }
}

impl ServerConfig {
    /// A small configuration for unit tests.
    pub fn for_tests() -> Self {
        ServerConfig {
            max_in_flight: 4,
            max_queue_depth: 8,
            queue_wait: Duration::from_millis(100),
            cache_shards: 4,
            cache_capacity_per_shard: 64,
            registry_shards: 4,
            max_sessions: 256,
            ..Self::default()
        }
    }

    /// Derive the per-tenant window quota from an evaluator [`WorkBudget`] —
    /// the same knob the endpoints use per query, promoted to a service-level
    /// QoS setting. An unlimited budget disables quotas.
    pub fn with_tenant_budget(mut self, budget: &WorkBudget) -> Self {
        self.tenant_window_budget = budget.limit();
        self
    }
}

/// Point-in-time observability snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerMetrics {
    /// QCM completion requests received.
    pub completion_requests: u64,
    /// Run (QSM) requests received.
    pub run_requests: u64,
    /// Raw queries served through the [`QueryService`] surface.
    pub service_requests: u64,
    /// Requests rejected with [`ServerError::Overloaded`].
    pub rejected_overloaded: u64,
    /// Requests rejected with [`ServerError::QueueTimeout`].
    pub rejected_queue_timeout: u64,
    /// Requests rejected with [`ServerError::QuotaExhausted`].
    pub rejected_quota: u64,
    /// Completion-cache counters.
    pub completion_cache: CacheStats,
    /// Run-cache counters.
    pub run_cache: CacheStats,
    /// Sessions currently open.
    pub open_sessions: usize,
}

#[derive(Debug, Default)]
struct Counters {
    completion_requests: AtomicU64,
    run_requests: AtomicU64,
    service_requests: AtomicU64,
    rejected_overloaded: AtomicU64,
    rejected_queue_timeout: AtomicU64,
    rejected_quota: AtomicU64,
}

/// Result of a server-side "Run" click.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The query's answers, wrapped for table interaction.
    pub answers: AnswerTable,
    /// QSM suggestions (also retained server-side for
    /// [`SapphireServer::apply_alternative`]).
    pub suggestions: QsmOutput,
    /// True if the query executed (even with zero answers).
    pub executed: bool,
    /// The session's attempt count after this run.
    pub attempts: u32,
    /// True if answers and suggestions came from the response cache.
    pub cached: bool,
}

/// What the run cache stores — the model-derived payload, not the
/// session-specific bookkeeping.
#[derive(Debug, Clone)]
struct CachedRun {
    answers: Solutions,
    executed: bool,
    suggestions: QsmOutput,
}

/// A concurrent, multi-session Sapphire query service.
///
/// One `SapphireServer` owns exactly one shared, immutable
/// [`PredictiveUserModel`] behind an [`Arc`] — the knowledge-graph endpoints,
/// the assembled cache (suffix tree + residual bins), the lexica. Sessions
/// are entries in a sharded registry holding only the user's typed state;
/// requests rehydrate a [`Session`] against the shared model for their
/// duration. Every model-touching request passes admission control and
/// per-tenant budgets first, and QCM/QSM responses are memoized in a sharded
/// bounded LRU.
pub struct SapphireServer {
    pum: Arc<PredictiveUserModel>,
    config: ServerConfig,
    registry: SessionRegistry,
    admission: AdmissionController,
    tenants: TenantBudgets,
    completion_cache: ShardedResponseCache<CompletionResult>,
    run_cache: ShardedResponseCache<CachedRun>,
    counters: Counters,
}

impl SapphireServer {
    /// Stand up a server over a shared model.
    pub fn new(pum: Arc<PredictiveUserModel>, config: ServerConfig) -> Self {
        SapphireServer {
            registry: SessionRegistry::new(config.registry_shards, config.max_sessions),
            admission: AdmissionController::new(
                config.max_in_flight,
                config.max_queue_depth,
                config.queue_wait,
            ),
            tenants: TenantBudgets::new(config.tenant_window_budget),
            completion_cache: ShardedResponseCache::new(
                config.cache_shards,
                config.cache_capacity_per_shard,
            ),
            run_cache: ShardedResponseCache::new(
                config.cache_shards,
                config.cache_capacity_per_shard,
            ),
            counters: Counters::default(),
            pum,
            config,
        }
    }

    /// The shared model (e.g. for registering its endpoints elsewhere).
    pub fn model(&self) -> &Arc<PredictiveUserModel> {
        &self.pum
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Open an interactive session for `tenant`.
    pub fn open_session(&self, tenant: &str) -> Result<SessionId, ServerError> {
        self.registry.open(tenant)
    }

    /// Close a session; returns true if it existed.
    pub fn close_session(&self, id: SessionId) -> bool {
        self.registry.close(id)
    }

    /// Replace one triple-pattern row of a session.
    pub fn set_row(
        &self,
        id: SessionId,
        idx: usize,
        input: TripleInput,
    ) -> Result<(), ServerError> {
        let entry = self.registry.get(id)?;
        let mut entry = entry.lock().unwrap();
        if idx >= entry.triples.len() {
            entry.triples.resize_with(idx + 1, TripleInput::default);
        }
        entry.triples[idx] = input;
        Ok(())
    }

    /// Replace a session's query modifiers.
    pub fn set_modifiers(&self, id: SessionId, modifiers: Modifiers) -> Result<(), ServerError> {
        let entry = self.registry.get(id)?;
        entry.lock().unwrap().modifiers = modifiers;
        Ok(())
    }

    /// QCM: complete the term being typed in one of `id`'s text boxes.
    ///
    /// Admission-controlled and budget-charged; identical (normalized) terms
    /// across all sessions share one cached response.
    pub fn complete(&self, id: SessionId, typed: &str) -> Result<CompletionResult, ServerError> {
        self.counters
            .completion_requests
            .fetch_add(1, Ordering::Relaxed);
        let tenant = self.registry.get(id)?.lock().unwrap().tenant.clone();
        let permit = self.count_rejection(self.admission.admit())?;
        self.count_rejection(self.tenants.charge(&tenant, self.config.completion_cost))?;
        let key = completion_key(typed);
        if let Some(hit) = self.completion_cache.get(&key) {
            return Ok(hit);
        }
        let result = self.pum.complete(typed);
        self.completion_cache.insert(key, result.clone());
        drop(permit);
        Ok(result)
    }

    /// QSM + execution: press "Run" on session `id`.
    ///
    /// Builds the query from the session's rows, executes it against the
    /// shared federation, and gathers suggestions — all while holding the
    /// session's own lock, so concurrent runs of the *same* session
    /// serialize and stay deterministic. The model-derived payload is
    /// memoized across sessions by normalized query.
    pub fn run(&self, id: SessionId) -> Result<RunOutput, ServerError> {
        self.counters.run_requests.fetch_add(1, Ordering::Relaxed);
        let entry = self.registry.get(id)?;
        let mut entry = entry.lock().unwrap();
        // Admission comes first: a shed request must cost nothing, and even
        // query building resolves keyword predicates against the shared
        // cache. The quota charge needs the built query's shape, so it
        // follows — an over-budget tenant gives its slot straight back.
        let permit = self.count_rejection(self.admission.admit())?;
        let query = Session::resume(
            &self.pum,
            entry.triples.clone(),
            entry.modifiers.clone(),
            entry.attempts,
        )
        .build_query()?;
        let cost = self.run_cost(&query);
        self.count_rejection(self.tenants.charge(&entry.tenant, cost))?;
        let key = run_key(&query);
        let (cached, run) = match self.run_cache.get(&key) {
            Some(hit) => (true, hit),
            None => {
                let outcome = self.pum.run(&query);
                let run = CachedRun {
                    answers: outcome.answers,
                    executed: outcome.executed,
                    suggestions: outcome.suggestions,
                };
                self.run_cache.insert(key, run.clone());
                (false, run)
            }
        };
        drop(permit);
        entry.attempts += 1;
        entry.last_suggestions = Some(run.suggestions.clone());
        Ok(RunOutput {
            answers: AnswerTable::new(run.answers),
            suggestions: run.suggestions,
            executed: run.executed,
            attempts: entry.attempts,
            cached,
        })
    }

    /// Accept the `alt_index`-th term alternative from `id`'s last run:
    /// updates the session's boxes and returns the prefetched answers
    /// (§4's "almost-instantaneous" accept — no re-execution, so no
    /// admission charge either).
    pub fn apply_alternative(
        &self,
        id: SessionId,
        alt_index: usize,
    ) -> Result<AnswerTable, ServerError> {
        let entry = self.registry.get(id)?;
        let mut entry = entry.lock().unwrap();
        let suggestions = entry
            .last_suggestions
            .clone()
            .ok_or(ServerError::UnknownSuggestion {
                index: alt_index,
                available: 0,
            })?;
        let alt =
            suggestions
                .alternatives
                .get(alt_index)
                .ok_or(ServerError::UnknownSuggestion {
                    index: alt_index,
                    available: suggestions.alternatives.len(),
                })?;
        let mut session = Session::resume(
            &self.pum,
            entry.triples.clone(),
            entry.modifiers.clone(),
            entry.attempts,
        );
        let answers = session.apply_alternative(alt);
        entry.triples = session.triples;
        Ok(answers)
    }

    /// The per-tenant work charged so far in this window.
    pub fn tenant_usage(&self, tenant: &str) -> u64 {
        self.tenants.used(tenant)
    }

    /// Start a fresh tenant-budget accounting window.
    pub fn reset_budget_window(&self) {
        self.tenants.reset_window();
    }

    /// Observability snapshot.
    pub fn metrics(&self) -> ServerMetrics {
        ServerMetrics {
            completion_requests: self.counters.completion_requests.load(Ordering::Relaxed),
            run_requests: self.counters.run_requests.load(Ordering::Relaxed),
            service_requests: self.counters.service_requests.load(Ordering::Relaxed),
            rejected_overloaded: self.counters.rejected_overloaded.load(Ordering::Relaxed),
            rejected_queue_timeout: self.counters.rejected_queue_timeout.load(Ordering::Relaxed),
            rejected_quota: self.counters.rejected_quota.load(Ordering::Relaxed),
            completion_cache: self.completion_cache.stats(),
            run_cache: self.run_cache.stats(),
            open_sessions: self.registry.len(),
        }
    }

    fn run_cost(&self, query: &SelectQuery) -> u64 {
        self.config.run_base_cost
            + self.config.run_per_pattern_cost * query.pattern.triples.len() as u64
    }

    fn count_rejection<T>(&self, result: Result<T, ServerError>) -> Result<T, ServerError> {
        if let Err(e) = &result {
            match e {
                ServerError::Overloaded { .. } => {
                    self.counters
                        .rejected_overloaded
                        .fetch_add(1, Ordering::Relaxed);
                }
                ServerError::QueueTimeout { .. } => {
                    self.counters
                        .rejected_queue_timeout
                        .fetch_add(1, Ordering::Relaxed);
                }
                ServerError::QuotaExhausted { .. } => {
                    self.counters.rejected_quota.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
        }
        result
    }
}

/// Raw SPARQL surface: lets a `SapphireServer` stand behind a
/// [`ServiceEndpoint`](sapphire_endpoint::ServiceEndpoint) so other
/// deployments can federate over it, with this server's admission control
/// and budgets still enforced.
impl QueryService for SapphireServer {
    fn service_name(&self) -> &str {
        &self.config.name
    }

    fn execute_query(&self, tenant: &str, query: &Query) -> Result<QueryResult, ServiceError> {
        self.counters
            .service_requests
            .fetch_add(1, Ordering::Relaxed);
        let cost = match query {
            Query::Select(s) => self.run_cost(s),
            Query::Ask(gp) => {
                self.config.run_base_cost
                    + self.config.run_per_pattern_cost * gp.triples.len() as u64
            }
        };
        let admit = || -> Result<_, ServerError> {
            let permit = self.count_rejection(self.admission.admit())?;
            self.count_rejection(self.tenants.charge(tenant, cost))?;
            Ok(permit)
        };
        let _permit = admit().map_err(ServerError::into_service_error)?;
        self.pum
            .federation()
            .execute_parsed(query)
            .map_err(|e| from_federation(e).into_service_error())
    }
}
