//! A budgeted SPARQL evaluator over [`sapphire_rdf::Graph`].
//!
//! The evaluator charges one *work unit* per scanned candidate triple and per
//! produced row. A [`WorkBudget`] caps total work, which is how the endpoint
//! layer simulates remote-endpoint timeouts **deterministically**: the paper's
//! initialization algorithm (§5.1) is driven by which queries time out, so the
//! reproduction needs timeouts that do not depend on wall-clock noise.

use std::cmp::Ordering;
use std::collections::HashMap;

use sapphire_rdf::{Graph, Term, TermId};

use crate::ast::*;
use crate::solutions::{QueryResult, Solutions};

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The work budget was exhausted — the simulated analogue of a remote
    /// endpoint timing a query out.
    WorkLimitExceeded {
        /// Work units consumed before giving up.
        used: u64,
    },
    /// The query uses a feature outside the supported subset.
    Unsupported(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::WorkLimitExceeded { used } => {
                write!(
                    f,
                    "work limit exceeded after {used} units (simulated timeout)"
                )
            }
            EvalError::Unsupported(what) => write!(f, "unsupported query feature: {what}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A consumable work budget.
#[derive(Debug, Clone)]
pub struct WorkBudget {
    limit: Option<u64>,
    used: u64,
}

impl WorkBudget {
    /// A budget capped at `limit` units.
    pub fn limited(limit: u64) -> Self {
        WorkBudget {
            limit: Some(limit),
            used: 0,
        }
    }

    /// An unbounded budget (the paper's "warehousing architecture", where no
    /// resource constraints or timeouts apply).
    pub fn unlimited() -> Self {
        WorkBudget {
            limit: None,
            used: 0,
        }
    }

    /// Work consumed so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// The configured cap, if any (`None` for unlimited budgets). Lets
    /// higher layers — e.g. a serving tier's per-tenant quotas — reuse a
    /// budget's units without re-deriving them.
    pub fn limit(&self) -> Option<u64> {
        self.limit
    }

    #[inline]
    fn charge(&mut self, units: u64) -> Result<(), EvalError> {
        self.used += units;
        match self.limit {
            Some(l) if self.used > l => Err(EvalError::WorkLimitExceeded { used: self.used }),
            _ => Ok(()),
        }
    }
}

/// Evaluate a query against a graph within a budget.
pub fn evaluate(
    graph: &Graph,
    query: &Query,
    budget: &mut WorkBudget,
) -> Result<QueryResult, EvalError> {
    match query {
        Query::Select(s) => evaluate_select(graph, s, budget).map(QueryResult::Solutions),
        Query::Ask(gp) => {
            let vars = VarTable::from_pattern(gp);
            let rows = match_bgp(graph, gp, &vars, budget, Some(1))?;
            Ok(QueryResult::Boolean(!rows.is_empty()))
        }
    }
}

/// Evaluate a SELECT query.
pub fn evaluate_select(
    graph: &Graph,
    query: &SelectQuery,
    budget: &mut WorkBudget,
) -> Result<Solutions, EvalError> {
    let vars = VarTable::from_pattern(&query.pattern);

    // LIMIT can be pushed into BGP matching only when no operator above the
    // BGP can change row multiplicity or order.
    let pushdown = if !query.distinct
        && query.order_by.is_empty()
        && query.group_by.is_empty()
        && !query.has_aggregates()
    {
        query.limit.map(|l| l + query.offset.unwrap_or(0))
    } else {
        None
    };

    let mut rows = match_bgp(graph, &query.pattern, &vars, budget, pushdown)?;

    let aggregated = query.has_aggregates() || !query.group_by.is_empty();
    // SPARQL orders solutions *before* projection, so sort keys may refer to
    // variables that are not projected (SELECT ?city … ORDER BY DESC(?pop)).
    // For aggregate queries the keys refer to output aliases instead, so the
    // sort happens after aggregation below.
    if !aggregated && !query.order_by.is_empty() {
        order_binding_rows(graph, &vars, &mut rows, &query.order_by);
    }

    let mut solutions = if aggregated {
        aggregate(graph, query, &vars, rows)?
    } else {
        project(graph, query, &vars, rows)
    };

    if query.distinct {
        dedup_rows(&mut solutions.rows);
    }
    if aggregated && !query.order_by.is_empty() {
        order_rows(&mut solutions, &query.order_by);
    }
    if let Some(offset) = query.offset {
        solutions.rows.drain(..offset.min(solutions.rows.len()));
    }
    if let Some(limit) = query.limit {
        solutions.rows.truncate(limit);
    }
    Ok(solutions)
}

// ---------------------------------------------------------------------------
// Variable table and BGP matching
// ---------------------------------------------------------------------------

/// Maps variable names to dense indices for the binding vector.
struct VarTable {
    names: Vec<String>,
    index: HashMap<String, usize>,
}

impl VarTable {
    fn from_pattern(gp: &GraphPattern) -> Self {
        let names = gp.variables();
        let index = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        VarTable { names, index }
    }

    fn get(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    fn len(&self) -> usize {
        self.names.len()
    }
}

/// One position of a compiled pattern.
#[derive(Clone, Copy)]
enum Slot {
    /// Ground term present in the graph.
    Ground(TermId),
    /// Variable index.
    Var(usize),
    /// Ground term that does not occur in the graph at all — the pattern can
    /// never match.
    Absent,
}

struct CompiledPattern {
    slots: [Slot; 3],
}

impl CompiledPattern {
    fn compile(tp: &TriplePattern, graph: &Graph, vars: &VarTable) -> Self {
        let compile_pos = |p: &TermPattern| match p {
            TermPattern::Var(v) => Slot::Var(vars.get(v).expect("var registered")),
            TermPattern::Term(t) => match graph.term_id(t) {
                Some(id) => Slot::Ground(id),
                None => Slot::Absent,
            },
        };
        CompiledPattern {
            slots: [
                compile_pos(&tp.subject),
                compile_pos(&tp.predicate),
                compile_pos(&tp.object),
            ],
        }
    }

    fn is_satisfiable(&self) -> bool {
        !self.slots.iter().any(|s| matches!(s, Slot::Absent))
    }

    /// Number of positions that are ground or already bound.
    fn bound_count(&self, bound: &[bool]) -> usize {
        self.slots
            .iter()
            .filter(|s| match s {
                Slot::Ground(_) => true,
                Slot::Var(v) => bound[*v],
                Slot::Absent => true,
            })
            .count()
    }

    /// Base cardinality estimate using only ground positions.
    fn base_cardinality(&self, graph: &Graph) -> usize {
        let pick = |s: &Slot| match s {
            Slot::Ground(id) => Some(*id),
            _ => None,
        };
        graph.cardinality(
            pick(&self.slots[0]),
            pick(&self.slots[1]),
            pick(&self.slots[2]),
        )
    }
}

/// Match the BGP and return binding rows (indexed by [`VarTable`]).
fn match_bgp(
    graph: &Graph,
    gp: &GraphPattern,
    vars: &VarTable,
    budget: &mut WorkBudget,
    row_limit: Option<usize>,
) -> Result<Vec<Vec<Option<TermId>>>, EvalError> {
    let compiled: Vec<CompiledPattern> = gp
        .triples
        .iter()
        .map(|tp| CompiledPattern::compile(tp, graph, vars))
        .collect();
    if compiled.iter().any(|c| !c.is_satisfiable()) {
        return Ok(Vec::new());
    }

    // Filters that only reference variables not present in any pattern can be
    // evaluated against the empty binding; more commonly every filter depends
    // on pattern vars and fires as soon as its last var binds.
    let filter_vars: Vec<Vec<usize>> = gp
        .filters
        .iter()
        .map(|f| f.variables().iter().filter_map(|v| vars.get(v)).collect())
        .collect();

    // Greedy join order: repeatedly pick the remaining pattern with the most
    // bound positions, breaking ties by the smaller base cardinality.
    let order = plan_order(graph, &compiled, vars.len());

    let mut bindings: Vec<Option<TermId>> = vec![None; vars.len()];
    let mut out: Vec<Vec<Option<TermId>>> = Vec::new();
    let mut ctx = MatchCtx {
        graph,
        gp,
        vars,
        compiled: &compiled,
        order: &order,
        filter_vars: &filter_vars,
        row_limit,
    };
    recurse(&mut ctx, 0, &mut bindings, &mut out, budget)?;
    Ok(out)
}

fn plan_order(graph: &Graph, compiled: &[CompiledPattern], nvars: usize) -> Vec<usize> {
    let mut remaining: Vec<usize> = (0..compiled.len()).collect();
    let mut bound = vec![false; nvars];
    let mut order = Vec::with_capacity(compiled.len());
    while !remaining.is_empty() {
        let (pos, &best) = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &i)| {
                let c = &compiled[i];
                let bc = c.bound_count(&bound);
                // Prefer more-bound patterns; tiebreak on base cardinality.
                (3 - bc, c.base_cardinality(graph))
            })
            .expect("non-empty remaining");
        order.push(best);
        for slot in &compiled[best].slots {
            if let Slot::Var(v) = slot {
                bound[*v] = true;
            }
        }
        remaining.remove(pos);
    }
    order
}

struct MatchCtx<'a> {
    graph: &'a Graph,
    gp: &'a GraphPattern,
    vars: &'a VarTable,
    compiled: &'a [CompiledPattern],
    order: &'a [usize],
    filter_vars: &'a [Vec<usize>],
    row_limit: Option<usize>,
}

fn recurse(
    ctx: &mut MatchCtx<'_>,
    depth: usize,
    bindings: &mut Vec<Option<TermId>>,
    out: &mut Vec<Vec<Option<TermId>>>,
    budget: &mut WorkBudget,
) -> Result<(), EvalError> {
    if let Some(limit) = ctx.row_limit {
        if out.len() >= limit {
            return Ok(());
        }
    }
    if depth == ctx.order.len() {
        // All patterns matched. Filters whose variables all bound during the
        // walk already fired; evaluate the rest here (no-variable filters and
        // filters over variables that never bound — SPARQL makes an unbound
        // reference an error, which `eval_filter` maps to false).
        for (fi, fv) in ctx.filter_vars.iter().enumerate() {
            let already_fired = !fv.is_empty() && fv.iter().all(|v| bindings[*v].is_some());
            if !already_fired && !eval_filter(ctx.graph, &ctx.gp.filters[fi], bindings, ctx.vars) {
                return Ok(());
            }
        }
        budget.charge(1)?;
        out.push(bindings.clone());
        return Ok(());
    }

    let pattern = &ctx.compiled[ctx.order[depth]];
    let lookup = |slot: &Slot, bindings: &[Option<TermId>]| -> Option<TermId> {
        match slot {
            Slot::Ground(id) => Some(*id),
            Slot::Var(v) => bindings[*v],
            Slot::Absent => unreachable!("absent patterns filtered before matching"),
        }
    };
    let s = lookup(&pattern.slots[0], bindings);
    let p = lookup(&pattern.slots[1], bindings);
    let o = lookup(&pattern.slots[2], bindings);

    // Materialize the candidates for this step, charging one unit per
    // candidate scanned. We collect first because recursion inside the scan
    // callback cannot propagate errors.
    let mut candidates = Vec::new();
    let mut overflow = false;
    ctx.graph.for_each_matching(s, p, o, |t| {
        candidates.push(t);
        if let Some(l) = budget.limit {
            if budget.used + candidates.len() as u64 > l {
                overflow = true;
                return false;
            }
        }
        true
    });
    budget.charge(candidates.len() as u64)?;
    if overflow {
        return Err(EvalError::WorkLimitExceeded { used: budget.used });
    }

    for triple in candidates {
        // Bind the variable slots, checking consistency for repeated vars.
        let mut newly_bound: Vec<usize> = Vec::new();
        let mut ok = true;
        for (i, slot) in pattern.slots.iter().enumerate() {
            if let Slot::Var(v) = slot {
                match bindings[*v] {
                    Some(existing) if existing != triple[i] => {
                        ok = false;
                        break;
                    }
                    Some(_) => {}
                    None => {
                        bindings[*v] = Some(triple[i]);
                        newly_bound.push(*v);
                    }
                }
            }
        }
        if ok {
            // Apply every filter whose variables are all bound and at least
            // one of them was bound at this step (earlier filters already ran).
            let mut pass = true;
            for (fi, fv) in ctx.filter_vars.iter().enumerate() {
                if fv.is_empty() {
                    continue;
                }
                let fires_now = fv.iter().any(|v| newly_bound.contains(v));
                let all_bound = fv.iter().all(|v| bindings[*v].is_some());
                if fires_now
                    && all_bound
                    && !eval_filter(ctx.graph, &ctx.gp.filters[fi], bindings, ctx.vars)
                {
                    pass = false;
                    break;
                }
            }
            if pass {
                recurse(ctx, depth + 1, bindings, out, budget)?;
            }
        }
        for v in newly_bound {
            bindings[v] = None;
        }
        if let Some(limit) = ctx.row_limit {
            if out.len() >= limit {
                return Ok(());
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

/// A computed expression value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Term(Term),
    Num(f64),
    Str(String),
    Bool(bool),
    /// Evaluation error (unbound variable, type error). SPARQL treats these
    /// as errors that make the enclosing FILTER false.
    Error,
}

impl Value {
    fn effective_bool(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Num(n) => *n != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Term(Term::Literal(l)) => {
                if let Some(n) = l.as_f64() {
                    n != 0.0
                } else {
                    match l.value.as_str() {
                        "false" => false,
                        _ => !l.value.is_empty(),
                    }
                }
            }
            Value::Term(_) => false,
            Value::Error => false,
        }
    }

    fn as_string(&self) -> Option<String> {
        match self {
            Value::Str(s) => Some(s.clone()),
            Value::Term(t) => Some(t.lexical().to_string()),
            Value::Num(n) => Some(format_num(*n)),
            Value::Bool(b) => Some(b.to_string()),
            Value::Error => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            Value::Str(s) => s.trim().parse().ok(),
            Value::Term(Term::Literal(l)) => l.as_f64(),
            _ => None,
        }
    }
}

fn format_num(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn eval_filter(graph: &Graph, expr: &Expr, bindings: &[Option<TermId>], vars: &VarTable) -> bool {
    let resolve = |name: &str| -> Option<Term> {
        vars.get(name)
            .and_then(|i| bindings[i])
            .map(|id| graph.term(id).clone())
    };
    filter_passes(expr, &resolve)
}

/// Evaluate a filter expression against bindings supplied by a resolver
/// closure. Used by the federated query processor, which holds owned terms
/// rather than graph-interned ids. Unbound variables are SPARQL errors, which
/// make the filter false.
pub fn filter_passes(expr: &Expr, resolve: &dyn Fn(&str) -> Option<Term>) -> bool {
    eval_expr(expr, resolve).effective_bool()
}

fn eval_expr(expr: &Expr, resolve: &dyn Fn(&str) -> Option<Term>) -> Value {
    match expr {
        Expr::Var(name) => match resolve(name) {
            Some(t) => Value::Term(t),
            None => Value::Error,
        },
        Expr::Const(t) => Value::Term(t.clone()),
        Expr::And(a, b) => Value::Bool(
            eval_expr(a, resolve).effective_bool() && eval_expr(b, resolve).effective_bool(),
        ),
        Expr::Or(a, b) => Value::Bool(
            eval_expr(a, resolve).effective_bool() || eval_expr(b, resolve).effective_bool(),
        ),
        Expr::Not(e) => Value::Bool(!eval_expr(e, resolve).effective_bool()),
        Expr::Cmp(op, a, b) => {
            let va = eval_expr(a, resolve);
            let vb = eval_expr(b, resolve);
            compare(*op, &va, &vb)
        }
        Expr::IsLiteral(e) => match eval_expr(e, resolve) {
            Value::Term(t) => Value::Bool(t.is_literal()),
            Value::Str(_) | Value::Num(_) | Value::Bool(_) => Value::Bool(true),
            Value::Error => Value::Error,
        },
        Expr::IsIri(e) => match eval_expr(e, resolve) {
            Value::Term(t) => Value::Bool(t.is_iri()),
            Value::Error => Value::Error,
            _ => Value::Bool(false),
        },
        Expr::Lang(e) => match eval_expr(e, resolve) {
            Value::Term(Term::Literal(l)) => Value::Str(l.lang.clone().unwrap_or_default()),
            Value::Str(_) => Value::Str(String::new()),
            _ => Value::Error,
        },
        Expr::Str(e) => match eval_expr(e, resolve).as_string() {
            Some(s) => Value::Str(s),
            None => Value::Error,
        },
        Expr::StrLen(e) => match eval_expr(e, resolve).as_string() {
            Some(s) => Value::Num(s.chars().count() as f64),
            None => Value::Error,
        },
        Expr::Contains(a, b) => str_pair(a, b, resolve, |x, y| x.contains(y)),
        Expr::StrStarts(a, b) => str_pair(a, b, resolve, |x, y| x.starts_with(y)),
        Expr::Regex(e, pattern, ci) => {
            let Some(text) = eval_expr(e, resolve).as_string() else {
                return Value::Error;
            };
            Value::Bool(regex_lite_match(&text, pattern, *ci))
        }
        Expr::LCase(e) => match eval_expr(e, resolve).as_string() {
            Some(s) => Value::Str(s.to_lowercase()),
            None => Value::Error,
        },
        Expr::UCase(e) => match eval_expr(e, resolve).as_string() {
            Some(s) => Value::Str(s.to_uppercase()),
            None => Value::Error,
        },
        Expr::Year(e) => match eval_expr(e, resolve) {
            Value::Term(Term::Literal(l)) => match l.year() {
                Some(y) => Value::Num(f64::from(y)),
                None => Value::Error,
            },
            Value::Str(s) => match sapphire_rdf::Literal::simple(s).year() {
                Some(y) => Value::Num(f64::from(y)),
                None => Value::Error,
            },
            _ => Value::Error,
        },
        Expr::Bound(v) => Value::Bool(resolve(v).is_some()),
    }
}

fn str_pair(
    a: &Expr,
    b: &Expr,
    resolve: &dyn Fn(&str) -> Option<Term>,
    f: impl Fn(&str, &str) -> bool,
) -> Value {
    let (Some(x), Some(y)) = (
        eval_expr(a, resolve).as_string(),
        eval_expr(b, resolve).as_string(),
    ) else {
        return Value::Error;
    };
    Value::Bool(f(&x, &y))
}

/// A deliberately small regex engine: supports `^`/`$` anchors around a
/// literal pattern, and the `i` flag. This covers every REGEX use in the
/// paper's workload (keyword containment tests).
fn regex_lite_match(text: &str, pattern: &str, case_insensitive: bool) -> bool {
    let (mut text, mut pat) = (text.to_string(), pattern.to_string());
    if case_insensitive {
        text = text.to_lowercase();
        pat = pat.to_lowercase();
    }
    let anchored_start = pat.starts_with('^');
    let anchored_end = pat.ends_with('$') && !pat.ends_with("\\$");
    let body = pat.trim_start_matches('^').trim_end_matches('$');
    match (anchored_start, anchored_end) {
        (true, true) => text == body,
        (true, false) => text.starts_with(body),
        (false, true) => text.ends_with(body),
        (false, false) => text.contains(body),
    }
}

fn compare(op: CmpOp, a: &Value, b: &Value) -> Value {
    // Equality/inequality on two ground terms is term equality, per SPARQL.
    if matches!(op, CmpOp::Eq | CmpOp::Ne) {
        if let (Value::Term(ta), Value::Term(tb)) = (a, b) {
            // Numeric literals compare by value ("8.0E7" = "80000000").
            let eq = match (
                ta.as_literal().and_then(|l| l.as_f64()),
                tb.as_literal().and_then(|l| l.as_f64()),
            ) {
                (Some(x), Some(y)) => x == y,
                _ => term_eq_relaxed(ta, tb),
            };
            return Value::Bool(if op == CmpOp::Eq { eq } else { !eq });
        }
    }
    // Numeric comparison if both sides are numbers.
    if let (Some(x), Some(y)) = (a.as_num(), b.as_num()) {
        return Value::Bool(apply_cmp(op, x.partial_cmp(&y)));
    }
    // Fall back to string comparison.
    match (a.as_string(), b.as_string()) {
        (Some(x), Some(y)) => Value::Bool(apply_cmp(op, Some(x.cmp(&y)))),
        _ => Value::Error,
    }
}

/// Term equality that ignores the `@lang`/plain distinction when the lexical
/// forms agree — users type `"Kennedy"` but the data holds `"Kennedy"@en`,
/// and public endpoints are routinely queried with `STR()` shims for this.
fn term_eq_relaxed(a: &Term, b: &Term) -> bool {
    if a == b {
        return true;
    }
    match (a, b) {
        (Term::Literal(la), Term::Literal(lb)) => {
            la.value == lb.value
                && (la.lang.is_none() || lb.lang.is_none())
                && la.datatype.is_none()
                && lb.datatype.is_none()
        }
        _ => false,
    }
}

fn apply_cmp(op: CmpOp, ord: Option<Ordering>) -> bool {
    let Some(ord) = ord else { return false };
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

// ---------------------------------------------------------------------------
// Projection, aggregation, ordering
// ---------------------------------------------------------------------------

fn project(
    graph: &Graph,
    query: &SelectQuery,
    vars: &VarTable,
    rows: Vec<Vec<Option<TermId>>>,
) -> Solutions {
    let names: Vec<String> = match &query.projection {
        Projection::Star => vars.names.clone(),
        Projection::Items(items) => items.iter().map(|i| i.name().to_string()).collect(),
    };
    let cols: Vec<Option<usize>> = names.iter().map(|n| vars.get(n)).collect();
    let out_rows = rows
        .into_iter()
        .map(|row| {
            cols.iter()
                .map(|c| c.and_then(|i| row[i]).map(|id| graph.term(id).clone()))
                .collect()
        })
        .collect();
    Solutions {
        vars: names,
        rows: out_rows,
    }
}

fn aggregate(
    graph: &Graph,
    query: &SelectQuery,
    vars: &VarTable,
    rows: Vec<Vec<Option<TermId>>>,
) -> Result<Solutions, EvalError> {
    let Projection::Items(items) = &query.projection else {
        return Err(EvalError::Unsupported("SELECT * with GROUP BY".into()));
    };

    let group_cols: Vec<usize> = query
        .group_by
        .iter()
        .map(|g| {
            vars.get(g)
                .ok_or_else(|| EvalError::Unsupported(format!("GROUP BY unknown variable ?{g}")))
        })
        .collect::<Result<_, _>>()?;

    // Group rows; with no GROUP BY all rows form one group (even when empty,
    // aggregates over the empty input still yield one row, e.g. COUNT() = 0).
    type GroupKey = Vec<Option<TermId>>;
    let mut groups: Vec<(GroupKey, Vec<GroupKey>)> = Vec::new();
    let mut index: HashMap<Vec<Option<TermId>>, usize> = HashMap::new();
    if group_cols.is_empty() {
        groups.push((Vec::new(), rows));
    } else {
        for row in rows {
            let key: Vec<Option<TermId>> = group_cols.iter().map(|&c| row[c]).collect();
            let slot = *index.entry(key.clone()).or_insert_with(|| {
                groups.push((key, Vec::new()));
                groups.len() - 1
            });
            groups[slot].1.push(row);
        }
    }

    let names: Vec<String> = items.iter().map(|i| i.name().to_string()).collect();
    let mut out_rows = Vec::with_capacity(groups.len());
    for (key, members) in &groups {
        let mut row: Vec<Option<Term>> = Vec::with_capacity(items.len());
        for item in items {
            match item {
                SelectItem::Var(v) => {
                    // Must be a grouping variable; take it from the key.
                    let gpos = query.group_by.iter().position(|g| g == v).ok_or_else(|| {
                        EvalError::Unsupported(format!(
                            "projected variable ?{v} is neither aggregated nor grouped"
                        ))
                    })?;
                    row.push(
                        key.get(gpos)
                            .copied()
                            .flatten()
                            .map(|id| graph.term(id).clone()),
                    );
                }
                SelectItem::Agg { agg, .. } => {
                    row.push(Some(eval_aggregate(graph, agg, vars, members)?));
                }
            }
        }
        out_rows.push(row);
    }
    Ok(Solutions {
        vars: names,
        rows: out_rows,
    })
}

fn eval_aggregate(
    graph: &Graph,
    agg: &Aggregate,
    vars: &VarTable,
    rows: &[Vec<Option<TermId>>],
) -> Result<Term, EvalError> {
    use sapphire_rdf::{vocab, Literal};
    let col = |v: &String| -> Result<usize, EvalError> {
        vars.get(v)
            .ok_or_else(|| EvalError::Unsupported(format!("aggregate over unknown variable ?{v}")))
    };
    let term = match agg {
        Aggregate::Count { distinct, var } => {
            let n = match var {
                None => {
                    if *distinct {
                        let mut seen: Vec<&Vec<Option<TermId>>> = rows.iter().collect();
                        seen.sort_unstable();
                        seen.dedup();
                        seen.len()
                    } else {
                        rows.len()
                    }
                }
                Some(v) => {
                    let c = col(v)?;
                    if *distinct {
                        let mut vals: Vec<TermId> = rows.iter().filter_map(|r| r[c]).collect();
                        vals.sort_unstable();
                        vals.dedup();
                        vals.len()
                    } else {
                        rows.iter().filter(|r| r[c].is_some()).count()
                    }
                }
            };
            Term::Literal(Literal::integer(n as i64))
        }
        Aggregate::Sum(v) => {
            let c = col(v)?;
            let sum: f64 = rows
                .iter()
                .filter_map(|r| r[c])
                .filter_map(|id| graph.term(id).as_literal().and_then(|l| l.as_f64()))
                .sum();
            Term::Literal(Literal::typed(format_num(sum), vocab::xsd::DECIMAL))
        }
        Aggregate::Avg(v) => {
            let c = col(v)?;
            let nums: Vec<f64> = rows
                .iter()
                .filter_map(|r| r[c])
                .filter_map(|id| graph.term(id).as_literal().and_then(|l| l.as_f64()))
                .collect();
            let avg = if nums.is_empty() {
                0.0
            } else {
                nums.iter().sum::<f64>() / nums.len() as f64
            };
            Term::Literal(Literal::typed(format!("{avg}"), vocab::xsd::DECIMAL))
        }
        Aggregate::Min(v) | Aggregate::Max(v) => {
            let c = col(v)?;
            let want_max = matches!(agg, Aggregate::Max(_));
            let mut best: Option<Term> = None;
            for id in rows.iter().filter_map(|r| r[c]) {
                let t = graph.term(id).clone();
                best = Some(match best {
                    None => t,
                    Some(b) => {
                        let ord = value_order(&b, &t);
                        if (want_max && ord == Ordering::Less)
                            || (!want_max && ord == Ordering::Greater)
                        {
                            t
                        } else {
                            b
                        }
                    }
                });
            }
            best.ok_or(EvalError::Unsupported("MIN/MAX over empty group".into()))?
        }
    };
    Ok(term)
}

/// Total order on terms for MIN/MAX/ORDER BY: numeric-aware for literals,
/// lexical otherwise, with unbound values first.
fn value_order(a: &Term, b: &Term) -> Ordering {
    let num = |t: &Term| t.as_literal().and_then(|l| l.as_f64());
    match (num(a), num(b)) {
        (Some(x), Some(y)) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
        _ => a.lexical().cmp(b.lexical()),
    }
}

/// Stable sort of unprojected binding rows by the ORDER BY keys.
fn order_binding_rows(
    graph: &Graph,
    vars: &VarTable,
    rows: &mut [Vec<Option<TermId>>],
    keys: &[OrderKey],
) {
    let key_cols: Vec<(Option<usize>, bool)> = keys
        .iter()
        .map(|k| {
            let col = match &k.expr {
                Expr::Var(v) => vars.get(v),
                _ => None,
            };
            (col, k.descending)
        })
        .collect();
    rows.sort_by(|ra, rb| {
        for (col, desc) in &key_cols {
            let ord = match col {
                Some(c) => match (ra[*c], rb[*c]) {
                    (Some(a), Some(b)) => value_order(graph.term(a), graph.term(b)),
                    (None, Some(_)) => Ordering::Less,
                    (Some(_), None) => Ordering::Greater,
                    (None, None) => Ordering::Equal,
                },
                None => Ordering::Equal,
            };
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
}

fn dedup_rows(rows: &mut Vec<Vec<Option<Term>>>) {
    let mut seen: Vec<Vec<Option<Term>>> = Vec::new();
    rows.retain(|row| {
        if seen.contains(row) {
            false
        } else {
            seen.push(row.clone());
            true
        }
    });
}

fn order_rows(solutions: &mut Solutions, keys: &[OrderKey]) {
    // Only variable sort keys refer to projected columns; evaluate each key
    // against the projected row.
    let col_of = |name: &str| solutions.vars.iter().position(|v| v == name);
    let key_cols: Vec<(Option<usize>, bool)> = keys
        .iter()
        .map(|k| {
            let col = match &k.expr {
                Expr::Var(v) => col_of(v),
                _ => None,
            };
            (col, k.descending)
        })
        .collect();
    solutions.rows.sort_by(|ra, rb| {
        for (col, desc) in &key_cols {
            let ord = match col {
                Some(c) => match (&ra[*c], &rb[*c]) {
                    (Some(a), Some(b)) => value_order(a, b),
                    (None, Some(_)) => Ordering::Less,
                    (Some(_), None) => Ordering::Greater,
                    (None, None) => Ordering::Equal,
                },
                None => Ordering::Equal,
            };
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_query, parse_select};

    fn city_graph() -> Graph {
        let ttl = r#"
@prefix dbo: <http://dbpedia.org/ontology/> .
@prefix res: <http://dbpedia.org/resource/> .
res:New_York a dbo:City ; dbo:name "New York"@en ; dbo:population 8400000 ; dbo:country res:USA .
res:Sydney a dbo:City ; dbo:name "Sydney"@en ; dbo:population 5300000 ; dbo:country res:Australia .
res:Canberra a dbo:City ; dbo:name "Canberra"@en ; dbo:population 430000 ; dbo:country res:Australia .
res:USA a dbo:Country ; dbo:name "United States"@en .
res:Australia a dbo:Country ; dbo:name "Australia"@en ; dbo:capital res:Canberra .
"#;
        sapphire_rdf::turtle::parse(ttl).unwrap()
    }

    fn run(graph: &Graph, q: &str) -> Solutions {
        let query = parse_select(q).unwrap();
        evaluate_select(graph, &query, &mut WorkBudget::unlimited()).unwrap()
    }

    #[test]
    fn simple_bgp() {
        let g = city_graph();
        let s = run(&g, "SELECT ?c WHERE { ?c a dbo:City }");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn join_across_patterns() {
        let g = city_graph();
        let s = run(
            &g,
            r#"SELECT ?name WHERE { ?c a dbo:City ; dbo:country res:Australia ; dbo:name ?name }"#,
        );
        let mut names: Vec<String> = s.values("name").map(|t| t.lexical().to_string()).collect();
        names.sort();
        assert_eq!(names, vec!["Canberra", "Sydney"]);
    }

    #[test]
    fn filter_numeric() {
        let g = city_graph();
        let s = run(
            &g,
            "SELECT ?c WHERE { ?c dbo:population ?p . FILTER(?p > 1000000) }",
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn filter_lang_and_strlen() {
        let g = city_graph();
        let s = run(
            &g,
            "SELECT ?o WHERE { ?s dbo:name ?o . FILTER(isliteral(?o) && lang(?o) = 'en' && strlen(str(?o)) < 8) }",
        );
        // "Sydney" (6) qualifies; "New York" is 8; "Canberra" is 8; "Australia" 9; "United States" 13.
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0][0].as_ref().unwrap().lexical(), "Sydney");
    }

    #[test]
    fn count_aggregate() {
        let g = city_graph();
        let s = run(&g, "SELECT (COUNT(?c) AS ?n) WHERE { ?c a dbo:City }");
        assert_eq!(s.sole_value().unwrap().lexical(), "3");
    }

    #[test]
    fn count_empty_is_zero() {
        let g = city_graph();
        let s = run(&g, "SELECT (COUNT(?c) AS ?n) WHERE { ?c a dbo:Person }");
        assert_eq!(s.sole_value().unwrap().lexical(), "0");
    }

    #[test]
    fn group_by_with_order() {
        let g = city_graph();
        let s = run(
            &g,
            "SELECT ?country (COUNT(?c) AS ?n) WHERE { ?c a dbo:City ; dbo:country ?country } GROUP BY ?country ORDER BY DESC(?n)",
        );
        assert_eq!(s.len(), 2);
        assert_eq!(
            s.rows[0][0].as_ref().unwrap().lexical(),
            "http://dbpedia.org/resource/Australia"
        );
        assert_eq!(s.rows[0][1].as_ref().unwrap().lexical(), "2");
    }

    #[test]
    fn order_limit_offset() {
        let g = city_graph();
        let s = run(
            &g,
            "SELECT ?c ?p WHERE { ?c dbo:population ?p } ORDER BY DESC(?p) LIMIT 1",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(
            s.get(0, "c").unwrap().lexical(),
            "http://dbpedia.org/resource/New_York"
        );

        let s = run(
            &g,
            "SELECT ?c ?p WHERE { ?c dbo:population ?p } ORDER BY DESC(?p) LIMIT 1 OFFSET 1",
        );
        assert_eq!(
            s.get(0, "c").unwrap().lexical(),
            "http://dbpedia.org/resource/Sydney"
        );
    }

    #[test]
    fn distinct() {
        let g = city_graph();
        let s = run(
            &g,
            "SELECT DISTINCT ?country WHERE { ?c a dbo:City ; dbo:country ?country }",
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn ask_queries() {
        let g = city_graph();
        let q = parse_query("ASK { res:Sydney a dbo:City }").unwrap();
        assert_eq!(
            evaluate(&g, &q, &mut WorkBudget::unlimited())
                .unwrap()
                .boolean(),
            Some(true)
        );
        let q = parse_query("ASK { res:Sydney a dbo:Country }").unwrap();
        assert_eq!(
            evaluate(&g, &q, &mut WorkBudget::unlimited())
                .unwrap()
                .boolean(),
            Some(false)
        );
    }

    #[test]
    fn work_budget_triggers_timeout() {
        let g = city_graph();
        let query = parse_select("SELECT ?s ?p ?o WHERE { ?s ?p ?o }").unwrap();
        let mut tight = WorkBudget::limited(3);
        let err = evaluate_select(&g, &query, &mut tight).unwrap_err();
        assert!(matches!(err, EvalError::WorkLimitExceeded { .. }));
        // The same query under a generous budget succeeds.
        let mut roomy = WorkBudget::limited(1_000_000);
        assert!(evaluate_select(&g, &query, &mut roomy).is_ok());
    }

    #[test]
    fn limit_pushdown_reduces_work() {
        let g = city_graph();
        let q_all = parse_select("SELECT ?s WHERE { ?s ?p ?o }").unwrap();
        let q_lim = parse_select("SELECT ?s WHERE { ?s ?p ?o } LIMIT 1").unwrap();
        let mut b_all = WorkBudget::unlimited();
        let mut b_lim = WorkBudget::unlimited();
        evaluate_select(&g, &q_all, &mut b_all).unwrap();
        evaluate_select(&g, &q_lim, &mut b_lim).unwrap();
        assert!(b_lim.used() < b_all.used());
    }

    #[test]
    fn ground_term_absent_from_graph_yields_empty() {
        let g = city_graph();
        let s = run(&g, "SELECT ?o WHERE { res:Atlantis dbo:name ?o }");
        assert!(s.is_empty());
    }

    #[test]
    fn repeated_variable_in_pattern() {
        let mut g = city_graph();
        g.insert(
            Term::iri("http://x/loop"),
            Term::iri("http://x/self"),
            Term::iri("http://x/loop"),
        );
        let s = run(&g, "SELECT ?x WHERE { ?x <http://x/self> ?x }");
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0][0].as_ref().unwrap().lexical(), "http://x/loop");
    }

    #[test]
    fn relaxed_literal_equality_matches_lang_tagged() {
        let g = city_graph();
        let s = run(
            &g,
            r#"SELECT ?c WHERE { ?c dbo:name ?n . FILTER(?n = "Sydney") }"#,
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn regex_lite() {
        let g = city_graph();
        let s = run(
            &g,
            r#"SELECT ?c WHERE { ?c dbo:name ?n . FILTER(regex(str(?n), "york", "i")) }"#,
        );
        assert_eq!(s.len(), 1);
        let s = run(
            &g,
            r#"SELECT ?c WHERE { ?c dbo:name ?n . FILTER(regex(str(?n), "^Syd")) }"#,
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn projection_of_unbound_var_is_none() {
        let g = city_graph();
        let s = run(&g, "SELECT ?ghost WHERE { ?c a dbo:City }");
        assert_eq!(s.len(), 3);
        assert!(s.rows.iter().all(|r| r[0].is_none()));
    }

    #[test]
    fn bare_count_gets_auto_alias() {
        let g = city_graph();
        let s = run(&g, "SELECT count(?c) WHERE { ?c a dbo:City }");
        assert_eq!(s.vars.len(), 1);
        assert_eq!(s.rows[0][0].as_ref().unwrap().lexical(), "3");
    }

    #[test]
    fn min_max_aggregates() {
        let g = city_graph();
        let s = run(&g, "SELECT (MAX(?p) AS ?m) WHERE { ?c dbo:population ?p }");
        assert_eq!(s.sole_value().unwrap().lexical(), "8400000");
        let s = run(&g, "SELECT (MIN(?p) AS ?m) WHERE { ?c dbo:population ?p }");
        assert_eq!(s.sole_value().unwrap().lexical(), "430000");
    }

    #[test]
    fn order_by_unprojected_variable() {
        // Regression: SPARQL sorts before projecting, so ORDER BY may use a
        // variable that SELECT drops.
        let g = city_graph();
        let s = run(
            &g,
            "SELECT ?c WHERE { ?c a dbo:City ; dbo:population ?p } ORDER BY DESC(?p) LIMIT 1",
        );
        assert_eq!(s.vars, vec!["c"]);
        assert_eq!(
            s.get(0, "c").unwrap().lexical(),
            "http://dbpedia.org/resource/New_York"
        );
    }

    #[test]
    fn sum_and_avg() {
        let g = city_graph();
        let s = run(
            &g,
            "SELECT (SUM(?p) AS ?total) WHERE { ?c dbo:population ?p }",
        );
        assert_eq!(s.sole_value().unwrap().lexical(), "14130000");
        let s = run(
            &g,
            "SELECT (AVG(?p) AS ?mean) WHERE { ?c dbo:population ?p }",
        );
        assert_eq!(s.sole_value().unwrap().lexical(), "4710000");
    }
}
