//! Observability-vs-oracle contracts: instrumentation must never perturb
//! answers.
//!
//! Two invariants pin the `sapphire-obs` layer:
//!
//! 1. **The tracing oracle.** The same Appendix-B workload, driven through
//!    the evented front-end with every request traced (`sampling = 1`,
//!    stage timers + span collection + flight-recorder pushes all live on
//!    the hot path), must produce per-session transcripts byte-identical to
//!    an untraced `SapphireServer` driven directly. Observation changes
//!    timing only, never bytes.
//!
//! 2. **The flight-recorder exemplar invariant.** Under concurrent pushes
//!    from 8 threads, each per-stage slowest-N list must hold *exactly* the
//!    N largest keys ever offered — the comparison runs under the list's
//!    mutex, so no racing push can sneak a smaller key in or drop a larger
//!    one — and the ring's accounting must balance (`recorded == retained +
//!    evicted`).

use std::sync::{Arc, Mutex};

use sapphire_core::session::Modifiers;
use sapphire_core::{InitMode, PredictiveUserModel, SapphireConfig};
use sapphire_datagen::workload::appendix_b;
use sapphire_datagen::{generate, DatasetConfig};
use sapphire_endpoint::EndpointLimits;
use sapphire_obs::{FlightRecorder, Obs, SpanRecord, Stage, TraceRecord};
use sapphire_server::frontend::{FrontRequest, FrontResponse};
use sapphire_server::{
    Frontend, FrontendConfig, SapphireServer, ServerConfig, ServerError, SessionId,
};
use sapphire_text::Lexicon;

fn pum() -> Arc<PredictiveUserModel> {
    Arc::new(
        PredictiveUserModel::initialize_local(
            "trace-oracle",
            generate(DatasetConfig::tiny(42)),
            EndpointLimits::warehouse(),
            Lexicon::dbpedia_default(),
            SapphireConfig {
                processes: 2,
                ..SapphireConfig::default()
            },
            InitMode::Federated,
        )
        .unwrap(),
    )
}

/// Roomy posture: rejections are timing-dependent and would fail the byte
/// comparison for the wrong reason.
fn roomy_config() -> ServerConfig {
    ServerConfig {
        max_in_flight: 8,
        max_queue_depth: 1024,
        queue_wait: std::time::Duration::from_secs(30),
        ..ServerConfig::for_tests()
    }
}

/// The Appendix-B per-session script, as `serve_load` types it.
fn session_script(offset: usize) -> Vec<FrontRequest> {
    let questions = appendix_b();
    let mut script = Vec::new();
    for qi in 0..questions.len() {
        let q = &questions[(qi + offset) % questions.len()];
        for (row, input) in q.script.rows.iter().enumerate() {
            let keyword = input.object.trim_start_matches('?');
            for end in 1..=keyword.chars().count().min(4) {
                script.push(FrontRequest::Complete {
                    typed: keyword.chars().take(end).collect(),
                });
            }
            script.push(FrontRequest::SetRow {
                idx: row,
                input: input.clone(),
            });
        }
        script.push(FrontRequest::SetModifiers {
            modifiers: Modifiers {
                distinct: false,
                order_by: q.script.order_by.clone(),
                limit: q.script.limit,
                count: q.script.count,
                filters: q.script.filters.clone(),
            },
        });
        script.push(FrontRequest::Run);
        script.push(FrontRequest::ApplyAlternative { index: 0 });
    }
    script
}

/// Canonical rendering: everything answer-determined, nothing
/// timing-determined (same contract as the root `frontend.rs` oracle).
fn render(result: &Result<FrontResponse, ServerError>) -> String {
    match result {
        Ok(FrontResponse::Completion(c)) => format!(
            "C|{:?}|{}|{}",
            c.suggestions, c.tree_hit, c.residual_candidates
        ),
        Ok(FrontResponse::Run(out)) => format!(
            "R|{:?}|{:?}|{:?}|{}|{}",
            out.answers,
            out.suggestions.alternatives,
            out.suggestions.relaxations,
            out.executed,
            out.attempts
        ),
        Ok(FrontResponse::Table(t)) => format!("T|{t:?}"),
        Ok(FrontResponse::Query(q)) => format!("Q|{q:?}"),
        Ok(FrontResponse::Ack) => "A".to_string(),
        Ok(FrontResponse::Closed) => "X".to_string(),
        Err(e) => format!("E|{e}"),
    }
}

/// Drive one session's script through the thread-per-request surface.
fn direct_transcript(
    server: &SapphireServer,
    tenant: &str,
    script: &[FrontRequest],
) -> Vec<String> {
    let id = server.open_session(tenant).unwrap();
    let mut transcript = Vec::new();
    for request in script {
        let rendered = match request {
            FrontRequest::Complete { typed } => {
                render(&server.complete(id, typed).map(FrontResponse::Completion))
            }
            FrontRequest::Run => render(&server.run(id).map(FrontResponse::Run)),
            FrontRequest::SetRow { idx, input } => render(
                &server
                    .set_row(id, *idx, input.clone())
                    .map(|()| FrontResponse::Ack),
            ),
            FrontRequest::SetModifiers { modifiers } => render(
                &server
                    .set_modifiers(id, modifiers.clone())
                    .map(|()| FrontResponse::Ack),
            ),
            FrontRequest::ApplyAlternative { index } => render(
                &server
                    .apply_alternative(id, *index)
                    .map(FrontResponse::Table),
            ),
            FrontRequest::Query { .. } | FrontRequest::Close => unreachable!("not scripted"),
        };
        transcript.push(rendered);
    }
    server.close_session(id);
    transcript
}

fn clone_request(r: &FrontRequest) -> FrontRequest {
    match r {
        FrontRequest::Complete { typed } => FrontRequest::Complete {
            typed: typed.clone(),
        },
        FrontRequest::Run => FrontRequest::Run,
        FrontRequest::SetRow { idx, input } => FrontRequest::SetRow {
            idx: *idx,
            input: input.clone(),
        },
        FrontRequest::SetModifiers { modifiers } => FrontRequest::SetModifiers {
            modifiers: modifiers.clone(),
        },
        FrontRequest::ApplyAlternative { index } => {
            FrontRequest::ApplyAlternative { index: *index }
        }
        FrontRequest::Query { query } => FrontRequest::Query {
            query: query.clone(),
        },
        FrontRequest::Close => FrontRequest::Close,
    }
}

/// The tracing oracle: fully-sampled tracing (`sampling = 1`) through the
/// evented front-end vs an untraced server driven directly — byte-identical
/// per-session transcripts, and the recorder must actually have seen every
/// submitted request (tracing was *on*, not silently skipped).
#[test]
fn full_sampling_is_byte_identical_to_the_untraced_oracle() {
    const SESSIONS: usize = 4;
    let pum = pum();
    // Untraced oracle: default Obs, sampling off (0), direct calls.
    let oracle = SapphireServer::new(pum.clone(), roomy_config());
    // Traced side: every request opens a root trace, every stage timer
    // appends spans, every completion pushes into the flight recorder.
    let obs = Arc::new(Obs::new());
    obs.set_sampling(1);
    let fe = Frontend::new(
        Arc::new(SapphireServer::with_obs(pum, roomy_config(), obs.clone())),
        FrontendConfig {
            workers: 4,
            session_queue_depth: 100_000,
            shed_ready_threshold: None,
        },
    );

    let scripts: Vec<Vec<FrontRequest>> = (0..SESSIONS).map(session_script).collect();
    let expected: Vec<Vec<String>> = scripts
        .iter()
        .enumerate()
        .map(|(u, script)| direct_transcript(&oracle, &format!("user-{u}"), script))
        .collect();

    let ids: Vec<SessionId> = (0..SESSIONS)
        .map(|u| fe.open_session(&format!("user-{u}")).unwrap())
        .collect();
    let transcripts: Vec<Arc<Mutex<Vec<String>>>> = (0..SESSIONS)
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();
    let longest = scripts.iter().map(Vec::len).max().unwrap();
    let mut submitted = 0u64;
    for step in 0..longest {
        for (u, script) in scripts.iter().enumerate() {
            let Some(request) = script.get(step) else {
                continue;
            };
            let transcript = transcripts[u].clone();
            fe.submit(
                ids[u],
                clone_request(request),
                Box::new(move |result| transcript.lock().unwrap().push(render(&result))),
            )
            .expect("roomy queue accepts the whole script");
            submitted += 1;
        }
    }
    let metrics = fe.shutdown();
    assert_eq!(metrics.completed, metrics.submitted, "drained completely");

    for (u, expected) in expected.iter().enumerate() {
        let got = transcripts[u].lock().unwrap();
        for (step, (g, e)) in got.iter().zip(expected.iter()).enumerate() {
            assert_eq!(
                g, e,
                "session user-{u} step {step}: traced transcript diverged from the untraced oracle"
            );
        }
        assert_eq!(got.len(), expected.len(), "session user-{u}: length");
    }

    // The comparison only means something if tracing was really live.
    assert_eq!(
        obs.recorder().recorded(),
        submitted,
        "sampling=1 records every submitted request"
    );
    let qsm_exemplars = obs.recorder().slowest_for(Stage::QsmScan);
    assert!(
        !qsm_exemplars.is_empty(),
        "run requests left qsm_scan exemplars behind"
    );
    assert!(
        obs.recorder()
            .slowest(1)
            .first()
            .is_some_and(|r| !r.spans.is_empty()),
        "the slowest trace carries stage spans, not just a total"
    );
    let e2e = obs.stage_snapshot(Stage::EndToEnd);
    assert_eq!(e2e.count(), submitted, "every request timed end-to-end");
}

fn record(id: u64, us: u64) -> TraceRecord {
    TraceRecord {
        id,
        tenant: "t".to_string(),
        kind: "run",
        tier: String::new(),
        total_us: us,
        spans: vec![SpanRecord {
            name: Stage::QsmScan.name(),
            start_us: 0,
            dur_us: us,
            parent: None,
            tag: String::new(),
        }],
    }
}

/// Deterministic pseudo-shuffle of the push keys (Knuth multiplicative
/// hash), so threads interleave large and small keys.
fn key_for(id: u64) -> u64 {
    (id.wrapping_mul(2_654_435_761)) % 100_000 + 1
}

/// 8 threads hammer one recorder; afterwards the per-stage slowest-N list
/// holds exactly the N largest keys ever offered (as a multiset — ties at
/// the floor may keep either record), and the ring accounting balances.
#[test]
fn flight_recorder_slowest_exemplars_are_exact_under_8_threads() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 500;
    const KEEP: usize = 8;
    let recorder = FlightRecorder::new(256, KEEP);
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let recorder = &recorder;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let id = t * PER_THREAD + i;
                    recorder.push(record(id, key_for(id)));
                }
            });
        }
    });
    let total = THREADS * PER_THREAD;
    assert_eq!(recorder.recorded(), total);
    assert_eq!(
        recorder.evicted() + recorder.recent().len() as u64,
        total,
        "every push either retained in the ring or counted evicted"
    );

    let mut keys: Vec<u64> = (0..total).map(key_for).collect();
    keys.sort_unstable();
    let expected = &keys[keys.len() - KEEP..];

    let stage_top: Vec<u64> = recorder
        .slowest_for(Stage::QsmScan)
        .iter()
        .map(|r| r.stage_us(Stage::QsmScan))
        .collect();
    assert_eq!(stage_top, expected, "per-stage slowest-N is exact");

    let mut total_top: Vec<u64> = recorder.slowest(KEEP).iter().map(|r| r.total_us).collect();
    total_top.reverse(); // slowest() returns slowest-first
    assert_eq!(total_top, expected, "end-to-end slowest-N is exact");
}
