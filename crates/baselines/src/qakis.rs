//! QAKiS \[7\] — relational-pattern question answering.
//!
//! The original extracts from Wikipedia "different ways of expressing
//! relations in natural language" and matches question fragments against
//! them to build a SPARQL query. Our reimplementation harvests the
//! relation-pattern store from the dataset's own predicate surface forms plus
//! the verbalization lexicon (the closest offline analogue), then follows the
//! same answer pipeline: spot the entity mention, match the remaining words
//! against a relation pattern, emit a single-relation SPARQL query.
//!
//! Like the original, it is strong on factoids ("time zone of Salt Lake
//! City") and has no mechanism for multi-hop joins, filters, aggregates, or
//! superlatives — the questions where the paper shows Sapphire pulling ahead.

use std::collections::HashMap;

use sapphire_endpoint::{Endpoint, FederatedProcessor};
use sapphire_sparql::Solutions;
use sapphire_text::{jaro_winkler_ci, keywords, normalize, surface_form, Lexicon};

use crate::entity_index::EntityIndex;
use sapphire_datagen::userstudy::NlQaSystem;

/// The QAKiS reimplementation.
pub struct QaKis {
    fed: FederatedProcessor,
    entities: EntityIndex,
    /// Relation pattern (normalized phrase) → predicate IRIs.
    patterns: HashMap<String, Vec<String>>,
}

const STOPWORDS: &[&str] = &[
    "what", "which", "who", "whom", "whose", "where", "when", "how", "many", "much", "is", "are",
    "was", "were", "the", "a", "an", "of", "in", "on", "at", "by", "to", "for", "does", "do",
    "did", "s", "it", "that", "and",
];

impl QaKis {
    /// Build the pattern store from an endpoint's vocabulary.
    pub fn build(endpoint: std::sync::Arc<dyn Endpoint>, lexicon: &Lexicon) -> Self {
        let entities = EntityIndex::build(endpoint.as_ref());
        let mut patterns: HashMap<String, Vec<String>> = HashMap::new();
        // Harvest predicates with Q1 (the same query Sapphire uses).
        let preds = endpoint
            .select("SELECT DISTINCT ?p (COUNT(*) AS ?frequency) WHERE { ?s ?p ?o } GROUP BY ?p ORDER BY DESC(?frequency)")
            .map(|s| s.values("p").map(|t| t.lexical().to_string()).collect::<Vec<_>>())
            .unwrap_or_default();
        for iri in preds {
            let surface = surface_form(&iri);
            for verbalization in lexicon.get_lexica(&surface) {
                patterns.entry(verbalization).or_default().push(iri.clone());
            }
        }
        QaKis {
            fed: FederatedProcessor::single(endpoint),
            entities,
            patterns,
        }
    }

    /// Match the non-entity words of a question against the pattern store.
    fn match_relation(&self, residue: &[String]) -> Option<&str> {
        if residue.is_empty() {
            return None;
        }
        let phrase = residue.join(" ");
        // Exact phrase, then sub-phrases, then fuzzy.
        if let Some(p) = self.patterns.get(&phrase) {
            return p.first().map(String::as_str);
        }
        for window in (1..residue.len()).rev() {
            for start in 0..=residue.len() - window {
                let sub = residue[start..start + window].join(" ");
                if let Some(p) = self.patterns.get(&sub) {
                    return p.first().map(String::as_str);
                }
            }
        }
        // Eager fallback — the source of QAKiS's characteristic wrong
        // answers: any word overlap between the residue and a pattern is
        // taken as a relation match, best overlap first (ties broken by JW).
        // Natural language is "inherently ambiguous" (§2), and QAKiS guesses.
        let mut best: Option<(f64, &str)> = None;
        for (pat, preds) in &self.patterns {
            let pat_words: Vec<&str> = pat.split(' ').collect();
            let overlap = residue
                .iter()
                .filter(|w| pat_words.contains(&w.as_str()))
                .count();
            if overlap == 0 {
                continue;
            }
            let score = overlap as f64 + jaro_winkler_ci(&phrase, pat);
            if best.is_none_or(|(b, _)| score > b) {
                best = preds.first().map(|p| (score, p.as_str()));
            }
        }
        best.map(|(_, p)| p)
    }
}

impl NlQaSystem for QaKis {
    fn name(&self) -> &str {
        "QAKiS"
    }

    fn answer(&self, question: &str) -> Solutions {
        // 1. Spot the entity mention.
        let Some((mention, entities)) = self.entities.longest_mention(question) else {
            return Solutions::default();
        };
        let Some(entity) = entities.first() else {
            return Solutions::default();
        };

        // 2. The residue (minus stopwords and the mention) names the relation.
        let mention_words: Vec<String> = keywords(&mention);
        let residue: Vec<String> = keywords(&normalize(question))
            .into_iter()
            .filter(|w| !STOPWORDS.contains(&w.as_str()) && !mention_words.contains(w))
            .collect();
        if let Some(predicate) = self.match_relation(&residue) {
            // 3. Single-relation query, forward then inverse.
            let fwd = format!("SELECT ?o WHERE {{ <{entity}> <{predicate}> ?o }}");
            if let Ok(s) = self.fed.select(&fwd) {
                if !s.is_empty() {
                    return s;
                }
            }
            let inv = format!("SELECT ?s WHERE {{ ?s <{predicate}> <{entity}> }}");
            if let Ok(s) = self.fed.select(&inv) {
                if !s.is_empty() {
                    return s;
                }
            }
        }
        // 4. No (working) relation match: answer with *some* facts about the
        // recognized entity rather than staying silent — real QAKiS processed
        // 80% of QALD-5 while answering only 35% correctly, and this guessy
        // behaviour is where the paper's "low precision of NL systems"
        // observation comes from.
        let guess = format!("SELECT ?o WHERE {{ <{entity}> ?p ?o . FILTER(!isIRI(?o)) }} LIMIT 3");
        if let Ok(s) = self.fed.select(&guess) {
            if !s.is_empty() {
                return s;
            }
        }
        Solutions::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapphire_datagen::{generate, DatasetConfig};
    use sapphire_endpoint::{EndpointLimits, LocalEndpoint};
    use std::sync::Arc;

    fn qakis() -> QaKis {
        let ep: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
            "dbpedia",
            generate(DatasetConfig::tiny(42)),
            EndpointLimits::warehouse(),
        ));
        QaKis::build(ep, &Lexicon::dbpedia_default())
    }

    #[test]
    fn answers_factoid_questions() {
        let q = qakis();
        let s = q.answer("What is the time zone of Salt Lake City?");
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows[0][0].as_ref().unwrap().lexical(), "UTC-07:00");
    }

    #[test]
    fn answers_via_lexicon_verbalization() {
        let q = qakis();
        // "wife" is not a predicate; the lexicon maps it to spouse.
        let s = q.answer("Who is the wife of Tom Hanks?");
        assert_eq!(s.len(), 1);
        assert!(s.rows[0][0]
            .as_ref()
            .unwrap()
            .lexical()
            .ends_with("Rita_Wilson"));
    }

    #[test]
    fn inverse_direction() {
        let q = qakis();
        // "Who created Wikipedia?" — creator is forward from Wikipedia.
        let s = q.answer("Who created Wikipedia?");
        assert!(!s.is_empty());
    }

    #[test]
    fn fails_on_multi_hop() {
        let q = qakis();
        // Needs spouse → parent chain: out of QAKiS's league.
        let s = q.answer("Who are the parents of the wife of Juan Carlos I?");
        // Either no answer or a wrong single-hop answer — never the gold parents.
        let has_gold = s
            .rows
            .iter()
            .flatten()
            .flatten()
            .any(|t| t.lexical().contains("Paul_of_Greece"));
        assert!(!has_gold);
    }

    #[test]
    fn no_entity_no_answer() {
        let q = qakis();
        assert!(q.answer("What is the meaning of life?").is_empty());
    }
}
