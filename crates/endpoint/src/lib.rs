//! # sapphire-endpoint
//!
//! Endpoint simulation substrate for the Sapphire reproduction
//! (*Sapphire: Querying RDF Data Made Simple*, El-Roby et al., VLDB 2016).
//!
//! The paper's Sapphire server sits between the user and remote SPARQL
//! endpoints, reached through the FedX federated query processor. Two
//! behaviours of real endpoints shape Sapphire's design and are reproduced
//! deterministically here:
//!
//! 1. **Timeouts** — endpoints kill long-running queries; Sapphire's
//!    initialization descends the class hierarchy and paginates to stay under
//!    them (§5.1). [`LocalEndpoint`] enforces a per-query *work budget*
//!    instead of a wall clock so the init experiment is reproducible.
//! 2. **Admission control** — endpoints "reject queries from the start if
//!    their estimated execution time is above a threshold"; reproduced with a
//!    cardinality-based cost estimate.
//!
//! [`FederatedProcessor`] substitutes for FedX: ASK-probe source selection,
//! whole-query routing to covering endpoints, and nested-loop bound joins for
//! genuinely federated patterns.
//!
//! ```
//! use std::sync::Arc;
//! use sapphire_endpoint::{Endpoint, EndpointLimits, FederatedProcessor, LocalEndpoint};
//!
//! let g = sapphire_rdf::turtle::parse(r#"res:Ada a dbo:Scientist ."#).unwrap();
//! let ep = Arc::new(LocalEndpoint::new("dbpedia", g, EndpointLimits::public_endpoint(100_000)));
//! let fed = FederatedProcessor::single(ep);
//! let rows = fed.select("SELECT ?s WHERE { ?s a dbo:Scientist }").unwrap();
//! assert_eq!(rows.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod backoff;
pub mod endpoint;
pub mod federation;
pub mod service;

pub use backoff::{Backoff, Jitter};
pub use endpoint::{Endpoint, EndpointError, EndpointLimits, EndpointStats, LocalEndpoint};
pub use federation::{FederatedProcessor, FederationError};
pub use service::{query_fingerprint, QueryService, ServiceEndpoint, ServiceError};
