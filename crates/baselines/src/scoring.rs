//! QALD-style scoring (§7.2, Table 1).
//!
//! Measures: `#pro` (questions processed with answers found), `#ri` (fully
//! correct), `#par` (partially correct), recall `R = #ri/#total`, partial
//! recall `R* = (#ri+#par)/#total`, precision `P = #ri/#pro`, partial
//! precision `P* = (#ri+#par)/#pro`, and the corresponding F1 scores.

use sapphire_datagen::workload::Grade;

/// Aggregated score of one system over the question set.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemScore {
    /// System name.
    pub name: String,
    /// Questions processed and answered (non-empty result shown).
    pub processed: usize,
    /// Fully correct answers.
    pub right: usize,
    /// Partially correct answers.
    pub partial: usize,
    /// Total questions in the set.
    pub total: usize,
    /// True if the row is quoted from the paper rather than measured (the
    /// QALD-5 participants we did not reimplement).
    pub quoted: bool,
}

impl SystemScore {
    /// An empty measured score.
    pub fn new(name: impl Into<String>, total: usize) -> Self {
        SystemScore {
            name: name.into(),
            processed: 0,
            right: 0,
            partial: 0,
            total,
            quoted: false,
        }
    }

    /// Record one graded, processed question.
    pub fn record(&mut self, answered: bool, grade: Grade) {
        if answered {
            self.processed += 1;
        }
        match grade {
            Grade::Correct => self.right += 1,
            Grade::Partial => self.partial += 1,
            Grade::Wrong => {}
        }
    }

    /// `%` column: fraction of questions processed.
    pub fn pct_processed(&self) -> f64 {
        self.processed as f64 / self.total.max(1) as f64
    }

    /// Recall `R`.
    pub fn recall(&self) -> f64 {
        self.right as f64 / self.total.max(1) as f64
    }

    /// Partial recall `R*`.
    pub fn partial_recall(&self) -> f64 {
        (self.right + self.partial) as f64 / self.total.max(1) as f64
    }

    /// Precision `P`.
    pub fn precision(&self) -> f64 {
        if self.processed == 0 {
            return 0.0;
        }
        self.right as f64 / self.processed as f64
    }

    /// Partial precision `P*`.
    pub fn partial_precision(&self) -> f64 {
        if self.processed == 0 {
            return 0.0;
        }
        (self.right + self.partial) as f64 / self.processed as f64
    }

    /// F1 over (P, R).
    pub fn f1(&self) -> f64 {
        f1(self.precision(), self.recall())
    }

    /// F1* over (P*, R*).
    pub fn f1_star(&self) -> f64 {
        f1(self.partial_precision(), self.partial_recall())
    }

    /// One formatted Table 1 row.
    pub fn row(&self) -> String {
        format!(
            "{:<12} {:>4} {:>5.0}% {:>4} {:>4} {:>5.2} {:>5.2} {:>5.2} {:>5.2} {:>5.2} {:>5.2}{}",
            self.name,
            self.processed,
            100.0 * self.pct_processed(),
            self.right,
            self.partial,
            self.recall(),
            self.partial_recall(),
            self.precision(),
            self.partial_precision(),
            self.f1(),
            self.f1_star(),
            if self.quoted {
                "  (quoted from paper)"
            } else {
                ""
            },
        )
    }
}

fn f1(p: f64, r: f64) -> f64 {
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// The QALD-5 participants the paper itself quotes from \[10\] rather than
/// running; we quote the same counts (out of 50 questions).
pub fn quoted_rows() -> Vec<SystemScore> {
    let rows = [
        ("Xser", 42, 26, 7),
        ("APEQ", 26, 8, 5),
        ("QAnswer", 37, 9, 4),
        ("SemGraphQA", 31, 7, 3),
        ("YodaQA", 33, 8, 2),
    ];
    rows.into_iter()
        .map(|(name, processed, right, partial)| SystemScore {
            name: name.to_string(),
            processed,
            right,
            partial,
            total: 50,
            quoted: true,
        })
        .collect()
}

/// The paper's own Table 1 values for the measured systems, for
/// paper-vs-measured comparison in EXPERIMENTS.md.
pub fn paper_measured_rows() -> Vec<SystemScore> {
    let rows = [
        ("QAKiS", 40, 14, 9),
        ("KBQA", 8, 8, 0),
        ("S4", 26, 16, 5),
        ("SPARQLByE", 7, 4, 0),
        ("Sapphire", 43, 43, 0),
    ];
    rows.into_iter()
        .map(|(name, processed, right, partial)| SystemScore {
            name: name.to_string(),
            processed,
            right,
            partial,
            total: 50,
            quoted: true,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_match_paper_formulas() {
        // Sapphire's paper row: 43 processed, 43 right, 0 partial, 50 total.
        let mut s = SystemScore::new("Sapphire", 50);
        for _ in 0..43 {
            s.record(true, Grade::Correct);
        }
        assert!((s.recall() - 0.86).abs() < 1e-9);
        assert!((s.precision() - 1.0).abs() < 1e-9);
        assert!((s.f1() - 0.92).abs() < 0.006);
        assert_eq!(s.recall(), s.partial_recall());
    }

    #[test]
    fn qakis_paper_row_reproduces() {
        // 40 processed, 14 right, 9 partial → R=0.28, R*=0.46, P=0.35, P*=0.58.
        let mut s = SystemScore::new("QAKiS", 50);
        let mut right = 14;
        let mut partial = 9;
        for _ in 0..40 {
            let g = if right > 0 {
                right -= 1;
                Grade::Correct
            } else if partial > 0 {
                partial -= 1;
                Grade::Partial
            } else {
                Grade::Wrong
            };
            s.record(true, g);
        }
        assert!((s.recall() - 0.28).abs() < 1e-9);
        assert!((s.partial_recall() - 0.46).abs() < 1e-9);
        assert!((s.precision() - 0.35).abs() < 1e-9);
        assert!((s.partial_precision() - 0.575).abs() < 1e-9);
    }

    #[test]
    fn zero_processed_is_zero_precision() {
        let s = SystemScore::new("null", 50);
        assert_eq!(s.precision(), 0.0);
        assert_eq!(s.f1(), 0.0);
    }

    #[test]
    fn quoted_rows_cover_the_five_uncloned_systems() {
        let names: Vec<String> = quoted_rows().into_iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec!["Xser", "APEQ", "QAnswer", "SemGraphQA", "YodaQA"]
        );
    }

    #[test]
    fn row_formatting_contains_key_fields() {
        let mut s = SystemScore::new("Test", 50);
        s.record(true, Grade::Correct);
        let row = s.row();
        assert!(row.contains("Test"));
        assert!(row.contains("0.02"));
    }
}
