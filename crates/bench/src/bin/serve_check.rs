//! CI benchmark-regression gate for the serving tier.
//!
//! Runs the `serve_load` workload (via [`sapphire_bench::serve`], the same
//! code the `serve_load` binary runs) and **fails the build** — exit code 1
//! — instead of asking a human to eyeball the JSON, enforcing:
//!
//! * `rejected_total == 0` — the fixed-seed workload fits the default gate;
//!   any shedding is a regression in admission or a stall in the hot path.
//! * `sessions_leaked == 0` — every load-generator session closed.
//! * both caches' *effective* hit ratios ≥ 0.90 — the paper's >90%
//!   hit-ratio claim, kept true under the serving tier. Effective = cache
//!   hits plus single-flight followers (served from a concurrent identical
//!   request's scan), over all lookups: the fraction of requests that cost
//!   no model scan, which unlike the raw ratio does not depend on how
//!   requests overlapped on a noisy runner. (The check runs two rounds:
//!   the Appendix-B list has ~12% unique queries per round, so a single
//!   round *by construction* cannot clear the floor even with a perfect
//!   cache — one round fills, the second must hit.)
//! * `leader_runs + bypass_runs ≤ 2 × burst_rounds` in the duplicate-burst
//!   phase — a burst of identical cold requests must cost ~one model scan
//!   per request class per round, not one per user (bypass scans count, so
//!   a broken waiter cap cannot pass on leader count alone).
//! * throughput ≥ 50% of the committed `BENCH_serve.json` baseline — loose
//!   enough for noisy shared CI runners, tight enough to catch a serializing
//!   lock or an accidental O(n) on the hot path.
//! * `qsm.p99_us` ≤ 2× the committed baseline — the QSM tail gate. The tail
//!   is dominated by Steiner expansion round trips; the shared
//!   `NeighborhoodCache` is what keeps it down, so a regression there (or a
//!   new serialization on the relax path) trips this before anyone eyeballs
//!   a latency chart. Same 2× posture as the throughput floor.
//! * `qsm_relax.degraded_runs == 0` — this is the default no-shed posture
//!   (`qsm_shed_budget` off), so *no* run may come back at a reduced budget
//!   tier; a nonzero count means degraded output leaked into a deployment
//!   that never opted in.
//! * threading model — the front-end fleet stays within a fixed
//!   thread/RSS budget, the closed-loop hot phase creates **zero** new
//!   threads (steady-state serving runs entirely on warm pools: front-end
//!   workers plus the shared scatter/scan executor), and the executor's
//!   task accounting balances (`tasks_run + inline_runs ==
//!   spawns_avoided`, zero panics) after the drain.
//! * overload smoke (a bounded open-loop sweep past saturation on a 2x2
//!   cluster; see [`sapphire_bench::overload`]) — graceful degradation
//!   holds: past-saturation goodput ≥ 50% of the sweep's peak, zero
//!   untyped failures, zero tier-keyed cache cross-contamination, and the
//!   offered-load sweep itself is monotone.
//! * wire smoke (the cluster workload over real loopback sockets with one
//!   replica crashed mid-run; see [`sapphire_bench::wire`]) — zero
//!   surviving rejections after bounded retry under replica loss, zero
//!   divergences from the in-process oracle, and the transport counters
//!   prove the crash was real (`wire_io_errors ≥ 1`, the dead replica
//!   refuses a direct probe).
//! * snapshot smoke (shard **processes** brought up from freshly written
//!   columnar snapshots at `tiny`; see [`sapphire_bench::wire`]) — every
//!   child actually loaded its snapshot (zero generate fallbacks), the
//!   snapshot-fed fleet is byte-identical to the generate-from-scratch
//!   oracle (zero mismatches), and the slowest snapshot load beat the
//!   parent's generate+partition time — the whole point of the format.
//!
//! Usage: `cargo run --release -p sapphire-bench --bin serve_check
//!         [--rounds 2] [--baseline BENCH_serve.json]`
//!
//! The committed baseline is read *before* the run and never rewritten here;
//! regenerating it after an intentional perf change is `serve_load`'s job.

use sapphire_bench::cluster::{self, ClusterLoadOptions};
use sapphire_bench::overload::{self, OverloadOptions};
use sapphire_bench::serve::{self, arg_string, arg_usize, json_f64, ServeLoadOptions};
use sapphire_bench::wire::{self, WireLoadOptions};

struct Gate {
    failures: u32,
}

impl Gate {
    fn check(&mut self, name: &str, pass: bool, detail: String) {
        if pass {
            eprintln!("PASS {name}: {detail}");
        } else {
            self.failures += 1;
            eprintln!("FAIL {name}: {detail}");
        }
    }
}

fn main() {
    let baseline_path = arg_string("--baseline").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "FAIL baseline: cannot read {baseline_path}: {e}\n\
                 (regenerate with `cargo run --release -p sapphire-bench --bin serve_load` \
                 and commit the result)"
            );
            std::process::exit(1);
        }
    };
    let baseline_rps = match json_f64(&baseline, None, "total_throughput_rps") {
        Some(v) if v > 0.0 => v,
        _ => {
            eprintln!("FAIL baseline: {baseline_path} has no total_throughput_rps");
            std::process::exit(1);
        }
    };

    let opts = ServeLoadOptions {
        rounds: arg_usize("--rounds", 2),
        // A relaxed queue deadline: the zero-rejection gate must catch real
        // admission regressions, not a noisy CI runner descheduling one
        // thread past the serving posture's 100ms for a moment.
        queue_wait_ms: 1_000,
        ..ServeLoadOptions::default()
    };
    let report = serve::run(&opts);
    println!("{report}");

    let num = |section: Option<&str>, key: &str| -> f64 {
        match json_f64(&report, section, key) {
            Some(v) => v,
            None => {
                eprintln!("FAIL report: missing field {key:?} (section {section:?})");
                std::process::exit(1);
            }
        }
    };

    let mut gate = Gate { failures: 0 };
    let rejected = num(None, "rejected_total");
    gate.check(
        "rejected_total",
        rejected == 0.0,
        format!("{rejected} (must be 0)"),
    );
    let leaked = num(None, "sessions_leaked");
    gate.check(
        "sessions_leaked",
        leaked == 0.0,
        format!("{leaked} (must be 0)"),
    );
    // The >90% floor gates the *effective* ratio — requests served without
    // a model scan, i.e. response-cache hits plus single-flight followers.
    // A follower logs a genuine cache miss (nothing was cached yet) but
    // costs no scan; counting it against the floor would make the gate
    // wobble with request overlap (scheduler noise), not with regressions.
    let completion_ratio = num(Some("completion_cache"), "effective_hit_ratio");
    gate.check(
        "completion_cache.effective_hit_ratio",
        completion_ratio >= 0.90,
        format!("{completion_ratio:.3} (floor 0.90)"),
    );
    let run_ratio = num(Some("run_cache"), "effective_hit_ratio");
    gate.check(
        "run_cache.effective_hit_ratio",
        run_ratio >= 0.90,
        format!("{run_ratio:.3} (floor 0.90)"),
    );
    // Single-flight contract: a burst of identical cold requests costs one
    // scan per request class per round (QCM + QSM), give or take nothing.
    // Bypass scans count too — a regression that made every duplicate
    // bypass (e.g. a broken waiter cap) must not pass on leader count alone.
    let burst_rounds = num(Some("config"), "burst_rounds");
    let burst_scans =
        num(Some("duplicate_burst"), "leader_runs") + num(Some("duplicate_burst"), "bypass_runs");
    gate.check(
        "duplicate_burst scans",
        burst_scans <= 2.0 * burst_rounds,
        format!(
            "{burst_scans} scans for {burst_rounds} burst rounds (cap {})",
            2.0 * burst_rounds
        ),
    );
    let rps = num(None, "total_throughput_rps");
    let floor = baseline_rps * 0.5;
    gate.check(
        "total_throughput_rps",
        rps >= floor,
        format!("{rps:.1} vs baseline {baseline_rps:.1} (floor {floor:.1})"),
    );
    // QSM tail gate: p99 within 2× of the committed baseline. (The baseline
    // itself is the post-NeighborhoodCache number; regenerate it with
    // serve_load after any intentional relax-path change.)
    let baseline_qsm_p99 = match json_f64(&baseline, Some("qsm"), "p99_us") {
        Some(v) if v > 0.0 => v,
        _ => {
            eprintln!(
                "FAIL baseline: {baseline_path} has no qsm.p99_us \
                 (regenerate with serve_load and commit the result)"
            );
            std::process::exit(1);
        }
    };
    let qsm_p99 = num(Some("qsm"), "p99_us");
    let p99_cap = baseline_qsm_p99 * 2.0;
    gate.check(
        "qsm.p99_us",
        qsm_p99 <= p99_cap,
        format!("{qsm_p99:.0}us vs baseline {baseline_qsm_p99:.0}us (cap {p99_cap:.0}us)"),
    );
    // Default posture never sheds: zero degraded-budget runs, full stop.
    let degraded_runs = num(Some("qsm_relax"), "degraded_runs");
    gate.check(
        "qsm_relax.degraded_runs",
        degraded_runs == 0.0,
        format!("{degraded_runs} (must be 0 with qsm_shed_budget off)"),
    );
    // Pressure drained: the load/occupancy stats section must end at zero —
    // a nonzero final queue would mean requests outlived the workload.
    let final_queued = num(Some("stats"), "final_queued");
    gate.check(
        "stats.final_queued",
        final_queued == 0.0,
        format!("{final_queued} (must be 0)"),
    );

    // --- Observability gates: the shared `"stages"` section and tracing.
    //
    // Coverage: at least 8 named stages recorded observations, spanning the
    // front-end (frontend_queue), admission (admission_wait), server
    // (cache_lookup/qcm_scan/qsm_scan/steiner_relax/coalesce_wait), and
    // cluster (shard_rtt/edge_merge) tiers — a stage that silently stopped
    // recording is an instrumentation regression, not a tuning knob.
    const STAGES: [&str; 11] = [
        "frontend_queue",
        "admission_wait",
        "coalesce_wait",
        "cache_lookup",
        "qcm_scan",
        "qsm_scan",
        "steiner_relax",
        "shard_rtt",
        "edge_merge",
        "exec_queue",
        "end_to_end",
    ];
    let recorded: Vec<&str> = STAGES
        .iter()
        .copied()
        .filter(|s| json_f64(&report, Some(s), "count").is_some_and(|c| c >= 1.0))
        .collect();
    gate.check(
        "stages coverage",
        recorded.len() >= 8,
        format!("{} stages recorded: {recorded:?} (floor 8)", recorded.len()),
    );
    // Self-consistency: every stage nests inside some recorded end-to-end
    // request and percentiles report bucket ceilings clamped to the exact
    // max, so no stage's p99 can exceed the end-to-end max. A violation
    // means a stage timer leaked outside request scope (or a histogram
    // merged the wrong shard).
    let e2e_max = num(Some("end_to_end"), "max_us");
    for &stage in &recorded {
        // exec_queue also times the warm-up residual-bin scan tasks, which
        // run during model initialization — outside any request — so it is
        // exempt from the nests-inside-end_to_end invariant.
        if stage == "end_to_end" || stage == "exec_queue" {
            continue;
        }
        let p99 = num(Some(stage), "p99_us");
        gate.check(
            &format!("stages.{stage}.p99_us"),
            p99 <= e2e_max,
            format!("{p99:.0}us vs end_to_end max {e2e_max:.0}us"),
        );
    }
    // At the default sampling rate the flight-recorder ring must never
    // overflow — a dropped trace at rest means the recorder shrank or
    // something traces when it should not.
    let dropped = num(Some("trace"), "dropped");
    gate.check(
        "trace.dropped",
        dropped == 0.0,
        format!("{dropped} (must be 0 at default sampling)"),
    );
    // Tracing overhead: the same cache-hit hot loop, untraced vs sampled at
    // 1/64 in alternating chunks (both sides of the pair come from this
    // run, so runner speed cancels out). Sampled must keep ≥ 90%.
    let hot_untraced = num(Some("trace"), "hot_rps_untraced");
    let hot_sampled = num(Some("trace"), "hot_rps_sampled");
    gate.check(
        "trace sampling overhead",
        hot_sampled >= 0.9 * hot_untraced,
        format!(
            "{hot_sampled:.0} rps sampled (1/64) vs {hot_untraced:.0} rps untraced \
             (floor 90%, ratio {:.3})",
            hot_sampled / hot_untraced.max(1.0)
        ),
    );

    // --- Executor gate: the shared scatter/scan pool actually absorbed
    // the work that per-request thread spawns used to carry, and its
    // accounting is consistent — every task submitted (`spawns_avoided`)
    // was run exactly once, either by a worker (`tasks_run`) or inline by
    // a caller helping out (`inline_runs`). An imbalance after the full
    // drain would mean lost or duplicated tasks; zero panics is the
    // catch_unwind contract holding.
    let exec_spawns_avoided = num(Some("exec"), "spawns_avoided");
    gate.check(
        "exec.spawns_avoided",
        exec_spawns_avoided >= 1.0,
        format!("{exec_spawns_avoided} thread spawns avoided (must be >= 1)"),
    );
    let exec_tasks = num(Some("exec"), "tasks_run") + num(Some("exec"), "inline_runs");
    gate.check(
        "exec task accounting",
        exec_tasks == exec_spawns_avoided,
        format!(
            "{:.0} worker + {:.0} inline runs vs {exec_spawns_avoided} submitted \
             (must balance after drain)",
            num(Some("exec"), "tasks_run"),
            num(Some("exec"), "inline_runs"),
        ),
    );
    let exec_panicked = num(Some("exec"), "panicked");
    gate.check(
        "exec.panicked",
        exec_panicked == 0.0,
        format!("{exec_panicked} (must be 0)"),
    );

    // --- Medium smoke gate: the bigger-rung scatter baseline ran, both
    // arms (shared executor and the spawn-per-request reference) completed
    // every cold request, and every request really fanned out to all 4
    // shards. Latencies are reported, not gated — a shared CI runner's
    // scheduler is too noisy to enforce a ratio between the arms.
    let smoke_requests = num(Some("medium_smoke"), "requests_per_arm");
    gate.check(
        "medium_smoke ran",
        smoke_requests >= 1.0,
        format!("{smoke_requests} requests per arm (must be >= 1)"),
    );
    if smoke_requests >= 1.0 {
        for arm in ["executor", "spawn_reference"] {
            let completed = num(Some(arm), "completed");
            gate.check(
                &format!("medium_smoke.{arm} completed"),
                completed == smoke_requests && num(Some(arm), "invalid") == 0.0,
                format!("{completed}/{smoke_requests} cold scatters, 0 invalid"),
            );
        }
        for key in ["executor_fanout_total", "reference_fanout_total"] {
            let fanout = num(Some("medium_smoke"), key);
            gate.check(
                &format!("medium_smoke.{key}"),
                fanout == smoke_requests * 4.0,
                format!(
                    "{fanout} (must be requests x 4 shards = {})",
                    smoke_requests * 4.0
                ),
            );
        }
    }

    // --- Front-end gate: thousands of idle sessions on a small pool.
    //
    // The report's "frontend" section ran 2,000+ open think-time sessions
    // on ≤ 8 worker threads over the same model. Enforced contracts: zero
    // rejections at think-time load, every session closed and every queue
    // drained, the process held a *fixed* thread/RSS budget (the
    // thread-per-session failure mode is exactly a thread count scaling
    // with sessions), and the closed-loop hot phase keeps at least half the
    // committed thread-per-request throughput.
    let f = |key: &str| num(Some("frontend"), key);
    gate.check(
        "frontend.sessions/workers",
        f("sessions") >= 2000.0 && f("workers") <= 8.0,
        format!("{} sessions on {} workers", f("sessions"), f("workers")),
    );
    gate.check(
        "frontend.rejected_total",
        f("rejected_total") == 0.0,
        format!("{} (must be 0)", f("rejected_total")),
    );
    gate.check(
        "frontend.sessions_leaked",
        f("sessions_leaked") == 0.0,
        format!("{} (must be 0)", f("sessions_leaked")),
    );
    gate.check(
        "frontend.final_backlog",
        f("final_backlog") == 0.0,
        format!("{} (must be 0)", f("final_backlog")),
    );
    let threads_peak = f("threads_peak");
    gate.check(
        "frontend.threads_peak",
        threads_peak <= 48.0,
        format!("{threads_peak} (budget 48; 0 = /proc unavailable)"),
    );
    // Steady-state serving must not create threads: the hot loop runs
    // after every pool (workers, reactor, shared executor) is warm, so the
    // process thread count sampled before and after it must match exactly.
    // This is the gate that keeps spawn-per-request from creeping back in.
    let hot_before = f("hot_threads_before");
    let hot_after = f("hot_threads_after");
    gate.check(
        "frontend.hot loop creates zero threads",
        hot_before == hot_after && (hot_before > 0.0 || cfg!(not(target_os = "linux"))),
        format!("{hot_before} threads before hot loop, {hot_after} after (must be equal)"),
    );
    let rss_peak = f("rss_peak_kb");
    gate.check(
        "frontend.rss_peak_kb",
        rss_peak <= 2_097_152.0,
        format!("{rss_peak} (budget 2 GiB; 0 = /proc unavailable)"),
    );
    let hot_rps = f("hot_throughput_rps");
    let hot_floor = baseline_rps * 0.5;
    gate.check(
        "frontend.hot_throughput_rps",
        hot_rps >= hot_floor,
        format!(
            "{hot_rps:.1} vs thread-per-request baseline {baseline_rps:.1} (floor {hot_floor:.1})"
        ),
    );

    // --- Cluster smoke gate: 2 shards x 2 replicas over the same workload.
    //
    // Enforces the sharded tier's three contracts: every request survives
    // routing (typed rejections are retried/failed over, so zero reach the
    // client), merges are deterministic (a cold second edge over the same
    // shards reproduces every byte), and the scatter overhead stays within
    // 60% of the committed single-server throughput.
    eprintln!("\n(cluster smoke gate: 2 shards x 2 replicas…)");
    let cluster_report = cluster::run(&ClusterLoadOptions::default());
    println!("{cluster_report}");
    let cnum = |section: Option<&str>, key: &str| -> f64 {
        match json_f64(&cluster_report, section, key) {
            Some(v) => v,
            None => {
                eprintln!("FAIL cluster report: missing field {key:?} (section {section:?})");
                std::process::exit(1);
            }
        }
    };
    let cluster_rejected = cnum(None, "rejected_total");
    gate.check(
        "cluster rejected_total",
        cluster_rejected == 0.0,
        format!("{cluster_rejected} rejections after bounded retry (must be 0)"),
    );
    let mismatches = cnum(None, "merge_mismatches");
    gate.check(
        "cluster merge_mismatches",
        mismatches == 0.0,
        format!("{mismatches} non-deterministic merges (must be 0)"),
    );
    let lost = cnum(Some("routing"), "rejected_after_retry");
    gate.check(
        "cluster rejected_after_retry",
        lost == 0.0,
        format!("{lost} requests exhausted the retry budget (must be 0)"),
    );
    let cluster_rps = cnum(None, "total_throughput_rps");
    let cluster_floor = baseline_rps * 0.4;
    gate.check(
        "cluster total_throughput_rps",
        cluster_rps >= cluster_floor,
        format!(
            "{cluster_rps:.1} vs single-server baseline {baseline_rps:.1} (floor {cluster_floor:.1})"
        ),
    );

    // --- Overload smoke gate: a bounded open-loop sweep past saturation
    // (2x2 cluster, short steps). Enforces graceful degradation: goodput at
    // the deepest offered load holds >= 50% of the sweep's peak, every
    // shed request fails *typed* (zero untyped failures), and tier-keyed
    // caches never leak a degraded payload into a tier-0 lookup.
    eprintln!("\n(overload smoke gate: open-loop sweep, 2 shards x 2 replicas…)");
    let overload_report = overload::run(&OverloadOptions::smoke());
    println!("{overload_report}");
    let onum = |key: &str| -> f64 {
        match json_f64(&overload_report, Some("overload"), key) {
            Some(v) => v,
            None => {
                eprintln!("FAIL overload report: missing field {key:?}");
                std::process::exit(1);
            }
        }
    };
    let floor_ratio = onum("goodput_floor_ratio");
    gate.check(
        "overload goodput_floor_ratio",
        floor_ratio >= 0.5,
        format!(
            "past-saturation goodput is {:.0}% of peak ({:.1} vs {:.1} rps; floor 50%)",
            floor_ratio * 100.0,
            onum("past_saturation_goodput_rps"),
            onum("peak_goodput_rps"),
        ),
    );
    let untyped = onum("untyped_failures");
    gate.check(
        "overload untyped_failures",
        untyped == 0.0,
        format!("{untyped} failures without a typed rejection (must be 0)"),
    );
    let tier_mix = onum("tier_mix_violations");
    gate.check(
        "overload tier_mix_violations",
        tier_mix == 0.0,
        format!(
            "{tier_mix} degraded payloads leaked into tier-0 lookups \
             (sample {}, must be 0)",
            onum("tier_mix_sample"),
        ),
    );
    let monotone = onum("monotone_offered");
    gate.check(
        "overload monotone_offered",
        monotone == 1.0,
        format!("offered-load sweep monotone flag = {monotone} (must be 1)"),
    );

    // --- Wire smoke gate: the cluster workload over real loopback sockets
    // (2 shards x 2 replicas behind WireServer/WireClient), with one replica
    // crashed mid-run. Enforces the transport's three contracts: the
    // router's bounded retry + failover absorbs the loss (zero requests
    // surface an error), the socket path reproduces the in-process oracle's
    // bytes, and the crash is real and *visible* — the dead replica refuses
    // a direct probe and the transport counters record the IO errors.
    eprintln!(
        "\n(wire smoke gate: 2 shards x 2 replicas over sockets, one replica killed mid-run…)"
    );
    let wire_report = wire::run(&WireLoadOptions::smoke());
    println!("{wire_report}");
    let wnum = |section: Option<&str>, key: &str| -> f64 {
        match json_f64(&wire_report, section, key) {
            Some(v) => v,
            None => {
                eprintln!("FAIL wire report: missing field {key:?} (section {section:?})");
                std::process::exit(1);
            }
        }
    };
    let wire_rejected = wnum(None, "rejected_total");
    gate.check(
        "wire rejected_total",
        wire_rejected == 0.0,
        format!("{wire_rejected} errors survived bounded retry under replica loss (must be 0)"),
    );
    let wire_mismatches = wnum(None, "merge_mismatches");
    gate.check(
        "wire merge_mismatches",
        wire_mismatches == 0.0,
        format!("{wire_mismatches} divergences from the in-process oracle (must be 0)"),
    );
    let killed = wnum(Some("transport"), "replica_killed");
    let probe_failed = wnum(Some("transport"), "dead_probe_failed");
    gate.check(
        "wire replica kill drill",
        killed == 1.0 && probe_failed == 1.0,
        format!(
            "replica_killed={killed} dead_probe_failed={probe_failed} (both must be 1: \
             the crash happened and the dead replica refuses direct calls)"
        ),
    );
    let wire_io_errors = wnum(Some("transport"), "wire_io_errors");
    gate.check(
        "wire io_errors observed",
        wire_io_errors >= 1.0,
        format!("{wire_io_errors} transport errors counted (must be >= 1 after a crash)"),
    );
    let wire_lost = wnum(Some("routing"), "rejected_after_retry");
    gate.check(
        "wire rejected_after_retry",
        wire_lost == 0.0,
        format!("{wire_lost} requests exhausted the retry budget (must be 0)"),
    );

    // --- Snapshot smoke gate: real `wire_shard` OS processes brought up
    // from per-shard columnar snapshots written moments earlier. Enforces
    // the snapshot format's contracts: every child loads its snapshot
    // (zero fallbacks to regenerate — a fallback means the bytes were
    // rejected), the snapshot-fed fleet answers byte-identically to the
    // in-process oracle built by generating from scratch, and the slowest
    // child's snapshot load is strictly faster than the parent's
    // generate+partition cost (the regenerate path every child would
    // otherwise pay).
    eprintln!("\n(snapshot smoke gate: shard processes from columnar snapshots at tiny…)");
    let snap_opts = WireLoadOptions::snapshot_smoke();
    let snap_report = wire::run(&snap_opts);
    println!("{snap_report}");
    let snum = |section: Option<&str>, key: &str| -> f64 {
        match json_f64(&snap_report, section, key) {
            Some(v) => v,
            None => {
                eprintln!("FAIL snapshot report: missing field {key:?} (section {section:?})");
                std::process::exit(1);
            }
        }
    };
    let snap_children = (snap_opts.shards * snap_opts.replicas) as f64;
    let snap_loads = snum(Some("bringup"), "snapshot_loads");
    let snap_fallbacks = snum(Some("bringup"), "generate_fallbacks");
    gate.check(
        "snapshot loads",
        snap_loads == snap_children && snap_fallbacks == 0.0,
        format!(
            "{snap_loads} of {snap_children} children loaded snapshots, \
             {snap_fallbacks} fell back to generate (must be all / 0)"
        ),
    );
    let snap_mismatches = snum(None, "merge_mismatches");
    gate.check(
        "snapshot merge_mismatches",
        snap_mismatches == 0.0,
        format!("{snap_mismatches} divergences from the generate-path oracle (must be 0)"),
    );
    let snap_rejected = snum(None, "rejected_total");
    gate.check(
        "snapshot rejected_total",
        snap_rejected == 0.0,
        format!("{snap_rejected} errors surfaced to clients (must be 0)"),
    );
    let regenerate_us =
        snum(Some("bringup"), "parent_generate_us") + snum(Some("bringup"), "parent_partition_us");
    let max_load_us = snum(Some("bringup"), "max_child_data_us");
    gate.check(
        "snapshot bringup faster than regenerate",
        max_load_us < regenerate_us,
        format!(
            "slowest child snapshot load {max_load_us:.0}µs vs parent \
             generate+partition {regenerate_us:.0}µs (must be strictly faster)"
        ),
    );

    if gate.failures > 0 {
        eprintln!("serve_check: {} gate(s) FAILED", gate.failures);
        std::process::exit(1);
    }
    eprintln!("serve_check: all gates passed");
}
