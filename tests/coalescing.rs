//! Cross-crate contracts of single-flight coalescing and fair FIFO
//! admission, exercised through the public `sapphire-server` API only.
//!
//! The unit tests in `crates/server` pin the mechanisms (leader election,
//! waiter caps, strict handoff order); these tests pin the *service-level*
//! promises built on them:
//!
//! * a burst of identical cold requests costs exactly one model scan,
//!   whatever the thread interleaving;
//! * every request in such a burst lands in exactly one metrics bucket
//!   (leader, coalesced follower, or response-cache hit) — nothing is lost
//!   or double-counted;
//! * federated hops through `ServiceEndpoint` coalesce at the downstream
//!   server by query fingerprint;
//! * under a saturated gate, freed slots are handed to queued waiters
//!   (observable as `fifo_handoffs`) and rejections stay typed.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use sapphire_core::prelude::*;
use sapphire_core::InitMode;
use sapphire_endpoint::{Endpoint, ServiceEndpoint};
use sapphire_server::{SapphireServer, ServerConfig, ServerError};

const DATA: &str = r#"
res:JFK a dbo:Person ; dbo:surname "Kennedy"@en ; dbo:name "John F. Kennedy"@en .
res:RFK a dbo:Person ; dbo:surname "Kennedy"@en ; dbo:name "Robert F. Kennedy"@en .
res:Jack a dbo:Person ; dbo:surname "Kerry"@en ; dbo:name "John Kerry"@en .
"#;

fn pum() -> Arc<PredictiveUserModel> {
    let ep: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
        "dbpedia",
        sapphire_rdf::turtle::parse(DATA).unwrap(),
        EndpointLimits::warehouse(),
    ));
    Arc::new(
        PredictiveUserModel::initialize(
            vec![ep],
            Lexicon::dbpedia_default(),
            SapphireConfig::for_tests(),
            InitMode::Federated,
        )
        .unwrap(),
    )
}

fn wide_open(threads: usize) -> ServerConfig {
    ServerConfig {
        max_in_flight: threads,
        max_queue_depth: threads,
        ..ServerConfig::for_tests()
    }
}

#[test]
fn cold_completion_burst_costs_one_scan_across_sessions() {
    const THREADS: usize = 16;
    let server = Arc::new(SapphireServer::new(pum(), wide_open(THREADS)));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let server = server.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let session = server.open_session(&format!("tenant-{i}")).unwrap();
                barrier.wait();
                // Mixed spellings of one request: normalization must
                // coalesce them too, not just byte-identical strings.
                // (Whitespace only — case is semantic: the tree stage
                // matches case-sensitively, so "kenn" is another request.)
                let typed = if i % 2 == 0 { "Kenn" } else { " Kenn " };
                server.complete(session, typed).unwrap()
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    for r in &results[1..] {
        assert_eq!(r.suggestions, results[0].suggestions);
    }
    let m = server.metrics();
    assert_eq!(m.coalesce_leader_runs, 1, "one scan for the whole burst");
    assert_eq!(
        m.coalesce_leader_runs + m.coalesced_hits + m.completion_cache.hits,
        THREADS as u64,
        "leader + followers + cache hits account for every request"
    );
    assert_eq!(m.rejected_overloaded + m.rejected_queue_timeout, 0);
}

#[test]
fn cold_run_burst_costs_one_scan_and_commits_per_session() {
    const THREADS: usize = 12;
    let server = Arc::new(SapphireServer::new(pum(), wide_open(THREADS)));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let server = server.clone();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                let session = server.open_session(&format!("tenant-{i}")).unwrap();
                // A typo'd surname: the one scan must also produce the QSM
                // "did you mean" payload every session then commits locally.
                server
                    .set_row(session, 0, TripleInput::new("?p", "surname", "Kennedys"))
                    .unwrap();
                barrier.wait();
                let out = server.run(session).unwrap();
                (session, out)
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let m = server.metrics();
    assert_eq!(m.coalesce_leader_runs, 1, "one scan for the whole burst");
    let idx = results[0]
        .1
        .suggestions
        .alternatives
        .iter()
        .position(|a| a.replacement == "Kennedy")
        .expect("the shared scan carries the Kennedy suggestion");
    for (session, out) in &results {
        assert_eq!(out.attempts, 1, "attempts counted per session");
        assert_eq!(
            out.suggestions.alternatives.len(),
            results[0].1.suggestions.alternatives.len()
        );
        // The shared payload was committed to *this* session: accepting the
        // alternative works independently everywhere.
        let table = server.apply_alternative(*session, idx).unwrap();
        assert_eq!(table.total_rows(), 2);
    }
}

#[test]
fn federated_hops_coalesce_by_query_fingerprint() {
    const THREADS: usize = 8;
    let server = Arc::new(SapphireServer::new(pum(), wide_open(THREADS)));
    // Two independent adapters over one downstream server — clones of a
    // ServiceEndpoint as a multi-worker edge tier would hold them.
    let edge_a = Arc::new(ServiceEndpoint::new(server.clone(), "edge"));
    let edge_b = Arc::new(edge_a.as_ref().clone());
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let ep = if i % 2 == 0 {
                edge_a.clone()
            } else {
                edge_b.clone()
            };
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                barrier.wait();
                ep.select(r#"SELECT ?p WHERE { ?p dbo:surname "Kennedy"@en }"#)
                    .unwrap()
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap().len(), 2);
    }
    let m = server.metrics();
    assert_eq!(m.service_requests, THREADS as u64);
    // The service surface has no response cache, so every request either
    // led one federation execution or coalesced onto one — and the ledger
    // must balance exactly.
    assert_eq!(
        m.coalesce_leader_runs + m.coalesced_hits,
        THREADS as u64,
        "every federated request is a leader or a follower"
    );
    assert!(m.coalesce_leader_runs >= 1);
}

#[test]
fn saturated_gate_hands_slots_to_queued_waiters_with_typed_rejections() {
    const THREADS: usize = 12;
    // One slot and a short queue: the burst must wait its turn or be turned
    // away — typed, counted, and with FIFO handoffs observable. At tiny
    // scale a scan takes microseconds, so a single burst can *occasionally*
    // drain without ever forming a queue; repeat the burst until contention
    // actually materializes (in practice the first or second attempt), then
    // assert on what the gate did with it.
    let config = ServerConfig {
        max_in_flight: 1,
        max_queue_depth: 4,
        queue_wait: Duration::from_millis(200),
        ..ServerConfig::for_tests()
    };
    let server = Arc::new(SapphireServer::new(pum(), config));
    let (mut served, mut rejected) = (0u64, 0u64);
    for attempt in 0..50 {
        let barrier = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|i| {
                let server = server.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    let session = server.open_session(&format!("tenant-{i}")).unwrap();
                    barrier.wait();
                    let mut served = 0u64;
                    let mut rejected = 0u64;
                    for k in 0..20 {
                        // Distinct terms per thread and attempt: admission
                        // pressure without coalescing or the response cache
                        // soaking up the contention.
                        match server.complete(session, &format!("a{attempt}t{i}k{k}")) {
                            Ok(_) => served += 1,
                            Err(e) => {
                                assert!(
                                    matches!(
                                        e,
                                        ServerError::Overloaded { .. }
                                            | ServerError::QueueTimeout { .. }
                                    ),
                                    "only typed back-pressure, got {e:?}"
                                );
                                rejected += 1;
                            }
                        }
                    }
                    server.close_session(session);
                    (served, rejected)
                })
            })
            .collect();
        for h in handles {
            let (s, r) = h.join().unwrap();
            served += s;
            rejected += r;
        }
        if server.metrics().fifo_handoffs > 0 {
            break;
        }
    }
    let m = server.metrics();
    assert_eq!(served + rejected, m.completion_requests);
    assert_eq!(rejected, m.rejected_overloaded + m.rejected_queue_timeout);
    assert!(
        m.fifo_handoffs > 0,
        "a saturated gate must hand freed slots to queued waiters"
    );
    let (in_flight, queued) = server.admission_load();
    assert_eq!((in_flight, queued), (0, 0), "gate drains clean");
}
