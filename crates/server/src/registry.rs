//! The sharded session registry.
//!
//! Sessions hold only *state* — triple-box text, modifiers, the attempt
//! counter, and the last run's suggestions. The predictive model itself is
//! shared and immutable, so a million sessions cost a million small structs,
//! not a million model copies. The registry is sharded: lookups take one
//! shard's read lock briefly to clone an `Arc`, then operate on the
//! session's own mutex, so traffic on different sessions never contends on
//! a global lock. Same-session requests take the entry mutex only to read or
//! commit state — never across the admission wait or model work — so a
//! queued run cannot stall other requests on its session; runs snapshot the
//! entry (with its [`generation`](SessionEntry::generation)) and commit
//! afterwards, skipping the suggestions commit if the snapshot was
//! superseded while they executed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use sapphire_core::qsm::QsmOutput;
use sapphire_core::session::{Modifiers, TripleInput};

use crate::error::ServerError;

/// Opaque session handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Mutable state of one interactive session.
#[derive(Debug, Default)]
pub struct SessionEntry {
    /// Owning tenant (billing identity for budgets).
    pub tenant: String,
    /// Triple-pattern rows, as typed so far.
    pub triples: Vec<TripleInput>,
    /// Query modifiers.
    pub modifiers: Modifiers,
    /// Times "Run" was pressed.
    pub attempts: u32,
    /// Bumped on every edit of `triples`/`modifiers`. A run snapshots this
    /// with the rows it builds from and only commits its suggestions if the
    /// session is unchanged when it finishes — runs release the entry lock
    /// while executing, so a slow run must not overwrite the suggestions of
    /// a newer session state with ones derived from rows the user has since
    /// replaced.
    pub generation: u64,
    /// Suggestions from the most recent run, kept (shared, not copied) so a
    /// follow-up request can accept one ("did you mean") without re-deriving
    /// it.
    pub last_suggestions: Option<Arc<QsmOutput>>,
}

/// Sharded map of [`SessionId`] → [`SessionEntry`].
#[derive(Debug)]
pub struct SessionRegistry {
    shards: Vec<RwLock<HashMap<u64, Arc<Mutex<SessionEntry>>>>>,
    next_id: AtomicU64,
    open: AtomicUsize,
    max_sessions: usize,
}

impl SessionRegistry {
    /// A registry with `shards` shards holding at most `max_sessions` total.
    pub fn new(shards: usize, max_sessions: usize) -> Self {
        let shards = shards.clamp(1, 1024);
        SessionRegistry {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            next_id: AtomicU64::new(1),
            open: AtomicUsize::new(0),
            max_sessions: max_sessions.max(1),
        }
    }

    fn shard(&self, id: u64) -> &RwLock<HashMap<u64, Arc<Mutex<SessionEntry>>>> {
        &self.shards[(id as usize) % self.shards.len()]
    }

    /// Open a session for `tenant`.
    pub fn open(&self, tenant: &str) -> Result<SessionId, ServerError> {
        // Optimistic reservation: bump, and roll back if over the cap.
        let open = self.open.fetch_add(1, Ordering::SeqCst) + 1;
        if open > self.max_sessions {
            self.open.fetch_sub(1, Ordering::SeqCst);
            return Err(ServerError::SessionLimit {
                open: open - 1,
                limit: self.max_sessions,
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let entry = SessionEntry {
            tenant: tenant.to_string(),
            triples: vec![TripleInput::default()],
            ..SessionEntry::default()
        };
        self.shard(id)
            .write()
            .unwrap()
            .insert(id, Arc::new(Mutex::new(entry)));
        Ok(SessionId(id))
    }

    /// Fetch a session's state handle.
    pub fn get(&self, id: SessionId) -> Result<Arc<Mutex<SessionEntry>>, ServerError> {
        self.shard(id.0)
            .read()
            .unwrap()
            .get(&id.0)
            .cloned()
            .ok_or(ServerError::UnknownSession(id))
    }

    /// Close a session; returns true if it existed.
    pub fn close(&self, id: SessionId) -> bool {
        let removed = self.shard(id.0).write().unwrap().remove(&id.0).is_some();
        if removed {
            self.open.fetch_sub(1, Ordering::SeqCst);
        }
        removed
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.open.load(Ordering::SeqCst)
    }

    /// True if no sessions are open.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards (for observability).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_get_close_roundtrip() {
        let reg = SessionRegistry::new(4, 100);
        let id = reg.open("alice").unwrap();
        let entry = reg.get(id).unwrap();
        assert_eq!(entry.lock().unwrap().tenant, "alice");
        assert_eq!(reg.len(), 1);
        assert!(reg.close(id));
        assert!(!reg.close(id), "double close is a no-op");
        assert!(matches!(reg.get(id), Err(ServerError::UnknownSession(_))));
        assert!(reg.is_empty());
    }

    #[test]
    fn session_ids_are_unique_across_threads() {
        let reg = Arc::new(SessionRegistry::new(8, 10_000));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                (0..100)
                    .map(|_| reg.open("t").unwrap().0)
                    .collect::<Vec<u64>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "no id handed out twice");
        assert_eq!(reg.len(), total);
    }

    #[test]
    fn session_limit_is_typed_and_recoverable() {
        let reg = SessionRegistry::new(2, 2);
        let a = reg.open("t").unwrap();
        let _b = reg.open("t").unwrap();
        let err = reg.open("t").unwrap_err();
        assert!(matches!(
            err,
            ServerError::SessionLimit { open: 2, limit: 2 }
        ));
        reg.close(a);
        assert!(reg.open("t").is_ok(), "capacity frees on close");
    }
}
