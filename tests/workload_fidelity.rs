//! The evaluation workload must stay faithful to the paper's setup: gold
//! queries answerable, scripts executable through the real session, and the
//! baselines exhibiting their characteristic capability classes.

use sapphire_baselines::ComparisonHarness;
use sapphire_core::session::Session;
use sapphire_core::SapphireConfig;
use sapphire_datagen::workload::{appendix_b, gold_answers, grade, Difficulty, Grade};
use sapphire_datagen::DatasetConfig;

fn harness() -> ComparisonHarness {
    ComparisonHarness::build(
        DatasetConfig::tiny(42),
        SapphireConfig {
            processes: 2,
            suffix_tree_capacity: 2_000,
            ..SapphireConfig::for_tests()
        },
    )
}

#[test]
fn every_ideal_script_reaches_gold_through_sapphire() {
    let h = harness();
    let mut failures = Vec::new();
    for q in appendix_b() {
        let gold = gold_answers(&q, h.endpoint.as_ref());
        let mut session = Session::new(&h.pum);
        for (i, row) in q.script.rows.iter().enumerate() {
            session.set_row(i, row.clone());
        }
        session.modifiers.distinct = true;
        session.modifiers.order_by = q.script.order_by.clone();
        session.modifiers.limit = q.script.limit;
        session.modifiers.count = q.script.count;
        session.modifiers.filters = q.script.filters.clone();
        match session.run() {
            Ok(result) => {
                let g = grade(result.answers.solutions(), &gold);
                if g != Grade::Correct {
                    failures.push(format!("{}: graded {:?}", q.id, g));
                }
            }
            Err(e) => failures.push(format!("{}: session error {e}", q.id)),
        }
    }
    assert!(failures.is_empty(), "scripts failing: {failures:#?}");
}

#[test]
fn difficulty_classes_separate_qakis_performance() {
    let h = harness();
    let questions = appendix_b();
    let mut correct_by_difficulty = std::collections::HashMap::new();
    let mut total_by_difficulty = std::collections::HashMap::new();
    for q in &questions {
        let gold = gold_answers(q, h.endpoint.as_ref());
        let mut best = Grade::Wrong;
        for p in q.paraphrases.iter().take(3) {
            let g = grade(
                &sapphire_datagen::userstudy::NlQaSystem::answer(&h.qakis, p),
                &gold,
            );
            if matches!(
                (g, best),
                (Grade::Correct, _) | (Grade::Partial, Grade::Wrong)
            ) {
                best = g;
            }
        }
        *total_by_difficulty.entry(q.difficulty).or_insert(0usize) += 1;
        if best == Grade::Correct {
            *correct_by_difficulty.entry(q.difficulty).or_insert(0usize) += 1;
        }
    }
    let rate = |d: Difficulty| {
        *correct_by_difficulty.get(&d).unwrap_or(&0) as f64
            / *total_by_difficulty.get(&d).unwrap_or(&1) as f64
    };
    // Figure 8's driver: QAKiS handles easy questions decently and collapses
    // on the difficult category.
    assert!(
        rate(Difficulty::Easy) >= 0.5,
        "easy {}",
        rate(Difficulty::Easy)
    );
    assert!(
        rate(Difficulty::Difficult) <= 0.35,
        "difficult {}",
        rate(Difficulty::Difficult)
    );
    assert!(rate(Difficulty::Easy) > rate(Difficulty::Difficult));
}

#[test]
fn gold_answer_sets_are_stable_across_harness_rebuilds() {
    let h1 = harness();
    let h2 = harness();
    for q in appendix_b() {
        assert_eq!(
            gold_answers(&q, h1.endpoint.as_ref()),
            gold_answers(&q, h2.endpoint.as_ref()),
            "nondeterministic gold for {}",
            q.id
        );
    }
}

#[test]
fn flattened_scripts_break_direct_execution_where_expected() {
    let h = harness();
    // D3 is the Figure 6 question: flattening must make the direct query
    // return nothing, setting up the relaxation.
    let d3 = appendix_b().into_iter().find(|q| q.id == "D3").unwrap();
    let flat = sapphire_datagen::userstudy::flatten(&d3.script).unwrap();
    let mut session = Session::new(&h.pum);
    for (i, row) in flat.rows.iter().enumerate() {
        session.set_row(i, row.clone());
    }
    let result = session.run().unwrap();
    assert_eq!(result.answers.total_rows(), 0);
    // …and the QSM must rescue it.
    let gold = gold_answers(&d3, h.endpoint.as_ref());
    let rescued = result
        .suggestions
        .relaxations
        .iter()
        .any(|r| grade(&r.answers, &gold) == Grade::Correct);
    assert!(rescued, "relaxation rescues the flattened D3");
}
