//! The Query Completion Module (§6.1, Figure 5).
//!
//! Invoked on every keystroke: given the string `t` typed so far, return `k`
//! cached strings containing `t`. Suffix-tree matches return first (they are
//! `O(|t| + z)`); if fewer than `k`, the remainder comes from a parallel
//! sequential scan of the residual bins restricted to literal lengths
//! `|t| ..= |t| + γ`, preferring the shortest results.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cache::{CacheMatch, CachedData, MatchSource};
use crate::config::SapphireConfig;

/// One auto-complete suggestion.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Suggested text (predicate surface form or literal value).
    pub text: String,
    /// Predicate IRI when the suggestion is a predicate.
    pub predicate_iri: Option<String>,
    /// Which index produced it.
    pub source: MatchSource,
}

/// Result of one QCM invocation, with the latency breakdown the §7.3.1
/// experiment reports.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletionResult {
    /// Up to `k` suggestions; suffix-tree matches first.
    pub suggestions: Vec<Completion>,
    /// True if the suffix tree produced at least one match (the "hit ratio"
    /// numerator).
    pub tree_hit: bool,
    /// Time spent in the suffix tree.
    pub tree_time: Duration,
    /// Time spent scanning residual bins (zero if the tree filled `k`).
    pub bins_time: Duration,
    /// Number of residual literals inside the searched length band — i.e.
    /// what survived the bin length filter.
    pub residual_candidates: usize,
}

impl CompletionResult {
    /// Total QCM latency.
    pub fn total_time(&self) -> Duration {
        self.tree_time + self.bins_time
    }
}

/// The Query Completion Module.
pub struct QueryCompletion {
    cache: Arc<CachedData>,
    config: SapphireConfig,
}

impl QueryCompletion {
    /// Build a QCM over a cache.
    pub fn new(cache: Arc<CachedData>, config: SapphireConfig) -> Self {
        QueryCompletion { cache, config }
    }

    /// The underlying cache.
    pub fn cache(&self) -> &CachedData {
        &self.cache
    }

    /// Complete the term `t` typed so far.
    ///
    /// Variables (strings starting with `?`) get no suggestions, per §6.1.
    pub fn complete(&self, t: &str) -> CompletionResult {
        self.complete_top(t, self.config.k)
    }

    /// Complete with an explicit result budget `k` instead of the configured
    /// one — the scatter-gather over-fetch hook. A cluster edge asks each
    /// shard for a deeper (or unbounded, `usize::MAX`) list than users ever
    /// see, because the global top-k selection is only exact when the edge
    /// merge sees every shard-local match; the shard's own significance
    /// ranking is computed from shard-local in-degrees and cannot drive the
    /// global cut.
    pub fn complete_top(&self, t: &str, k: usize) -> CompletionResult {
        let mut result = CompletionResult {
            suggestions: Vec::new(),
            tree_hit: false,
            tree_time: Duration::ZERO,
            bins_time: Duration::ZERO,
            residual_candidates: 0,
        };
        let t = t.trim();
        if t.is_empty() || t.starts_with('?') || k == 0 {
            return result;
        }

        // Stage 1: suffix tree. Matches "are returned to the user as soon as
        // they are found".
        let tree_start = Instant::now();
        let tree_matches: Vec<CacheMatch> = self.cache.tree_lookup(t, k);
        result.tree_time = tree_start.elapsed();
        result.tree_hit = !tree_matches.is_empty();
        result
            .suggestions
            .extend(tree_matches.into_iter().map(|m| Completion {
                text: m.text,
                predicate_iri: m.predicate_iri,
                source: MatchSource::SuffixTree,
            }));
        if result.suggestions.len() >= k {
            result.suggestions.truncate(k);
            return result;
        }

        // Stage 2: parallel residual-bin scan over lengths |t| ..= |t| + γ.
        let bins_start = Instant::now();
        let len = t.chars().count();
        result.residual_candidates = self
            .cache
            .bins
            .count_in_range(len..len + self.config.gamma + 1);
        let mut ids = self
            .cache
            .residual_lookup(t, self.config.gamma, self.config.processes);
        // "The shortest result literals are returned as part of the k
        // auto-complete suggestions." Compare in place — cloning every
        // literal for the sort dominated QCM latency on large match sets.
        ids.sort_unstable_by(|&a, &b| {
            let (la, lb) = (self.cache.bins.literal(a), self.cache.bins.literal(b));
            la.chars()
                .count()
                .cmp(&lb.chars().count())
                .then_with(|| la.cmp(lb))
        });
        for id in ids.into_iter().take(k - result.suggestions.len()) {
            result.suggestions.push(Completion {
                text: self.cache.bins.literal(id).to_string(),
                predicate_iri: None,
                source: MatchSource::ResidualBins,
            });
        }
        result.bins_time = bins_start.elapsed();
        result
    }

    /// The fraction of residual literals the length filter eliminates for a
    /// given term length (reported as ≈46% on average in §7.3.1).
    pub fn filter_elimination_ratio(&self, term_len: usize) -> f64 {
        let total = self.cache.bins.len();
        if total == 0 {
            return 0.0;
        }
        let surviving = self
            .cache
            .bins
            .count_in_range(term_len..term_len + self.config.gamma + 1);
        1.0 - surviving as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedData;

    fn qcm(tree_capacity: usize) -> QueryCompletion {
        let config = SapphireConfig {
            suffix_tree_capacity: tree_capacity,
            processes: 2,
            ..SapphireConfig::for_tests()
        };
        let predicates = vec![
            ("http://dbpedia.org/ontology/almaMater".to_string(), 10),
            ("http://dbpedia.org/ontology/birthPlace".to_string(), 20),
            ("http://dbpedia.org/ontology/surname".to_string(), 30),
        ];
        let literals = vec![
            ("New York".to_string(), 100),
            ("Kennedy".to_string(), 90),
            ("Kennedys Creek".to_string(), 0),
            ("Kenneth Branagh".to_string(), 0),
            ("Newcastle".to_string(), 0),
            ("Jacqueline Kennedy Onassis".to_string(), 0),
        ];
        QueryCompletion::new(
            Arc::new(CachedData::from_raw(predicates, literals, &config)),
            config,
        )
    }

    #[test]
    fn variables_get_no_suggestions() {
        let q = qcm(2);
        assert!(q.complete("?uri").suggestions.is_empty());
        assert!(q.complete("").suggestions.is_empty());
        assert!(q.complete("   ").suggestions.is_empty());
    }

    #[test]
    fn tree_matches_come_first() {
        let q = qcm(2); // tree: "New York", "Kennedy" + predicates
        let r = q.complete("Kenn");
        assert!(r.tree_hit);
        assert_eq!(r.suggestions[0].text, "Kennedy");
        assert_eq!(r.suggestions[0].source, MatchSource::SuffixTree);
        // Residuals follow: "Kennedys Creek", "Kenneth Branagh" (within γ=10
        // of length 4: lengths 4..=14).
        let residuals: Vec<&str> = r
            .suggestions
            .iter()
            .filter(|s| s.source == MatchSource::ResidualBins)
            .map(|s| s.text.as_str())
            .collect();
        assert_eq!(
            residuals,
            vec!["Kennedys Creek"],
            "length-15 Kenneth Branagh is outside γ"
        );
    }

    #[test]
    fn predicate_completions_carry_iri() {
        let q = qcm(2);
        let r = q.complete("mater");
        let pred = r
            .suggestions
            .iter()
            .find(|s| s.predicate_iri.is_some())
            .unwrap();
        assert_eq!(pred.text, "alma mater");
        assert_eq!(
            pred.predicate_iri.as_deref(),
            Some("http://dbpedia.org/ontology/almaMater")
        );
    }

    #[test]
    fn shortest_residuals_preferred() {
        let q = qcm(0); // everything residual
        let r = q.complete("New");
        assert!(!r.tree_hit);
        let texts: Vec<&str> = r.suggestions.iter().map(|s| s.text.as_str()).collect();
        assert_eq!(texts, vec!["New York", "Newcastle"]);
    }

    #[test]
    fn k_caps_suggestions() {
        let config = SapphireConfig {
            k: 2,
            processes: 2,
            suffix_tree_capacity: 0,
            ..SapphireConfig::for_tests()
        };
        let literals: Vec<(String, u64)> = (0..20).map(|i| (format!("keyword {i}"), 0)).collect();
        let q = QueryCompletion::new(
            Arc::new(CachedData::from_raw(vec![], literals, &config)),
            config,
        );
        assert_eq!(q.complete("keyword").suggestions.len(), 2);
    }

    #[test]
    fn filter_elimination_ratio_counts_band() {
        let q = qcm(0);
        // All 6 literals residual; term of length 26 + γ=10 covers only the
        // longest literal.
        let ratio = q.filter_elimination_ratio(26);
        assert!(ratio > 0.8, "{ratio}");
        // A short term keeps most literals.
        let ratio = q.filter_elimination_ratio(7);
        assert!(ratio < 0.9);
    }

    #[test]
    fn no_matches_yields_empty_with_timing() {
        let q = qcm(2);
        let r = q.complete("zzzzz");
        assert!(r.suggestions.is_empty());
        assert!(!r.tree_hit);
        assert!(r.total_time() >= r.tree_time);
    }
}
