//! Regenerates **Table 1**: comparing systems on the 50-question QALD-style
//! set (§7.2). Quoted rows (Xser, APEQ, QAnswer, SemGraphQA, YodaQA) are the
//! paper's values for systems the paper itself did not run; measured rows are
//! produced live by this binary.
//!
//! Usage: `cargo run -p sapphire-bench --bin table1 --release [--scale tiny|small|medium]`

use sapphire_baselines::{paper_measured_rows, quoted_rows, ComparisonHarness};
use sapphire_bench::{experiment_config, heading, scale_from_args};

fn main() {
    let dataset = scale_from_args();
    println!(
        "{}",
        heading("Table 1 — Comparing systems using questions from QALD-5")
    );
    println!("(synthetic DBpedia substitute; see DESIGN.md. Building harness…)");
    let harness = ComparisonHarness::build(dataset, experiment_config());
    let measured = harness.run();

    println!(
        "\n{:<12} {:>4} {:>6} {:>4} {:>4} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}",
        "system", "#pro", "%", "#ri", "#par", "R", "R*", "P", "P*", "F1", "F1*"
    );
    println!("{}", "-".repeat(78));
    for row in quoted_rows() {
        println!("{}", row.row());
    }
    for row in &measured {
        println!("{}", row.row());
    }

    println!("\n--- paper's measured rows (for comparison) ---");
    for row in paper_measured_rows() {
        println!("{}", row.row());
    }

    // The shape assertions the reproduction is graded on.
    let get = |name: &str| measured.iter().find(|r| r.name == name).unwrap();
    let sapphire = get("Sapphire");
    println!("\nshape checks:");
    println!(
        "  Sapphire best recall among measured systems: {}",
        measured
            .iter()
            .all(|r| r.name == "Sapphire" || sapphire.recall() > r.recall())
    );
    println!(
        "  Sapphire best F1 among measured systems:     {}",
        measured
            .iter()
            .all(|r| r.name == "Sapphire" || sapphire.f1() > r.f1())
    );
    println!(
        "  KBQA precision = 1.0 (factoid-only):         {}",
        get("KBQA").precision() >= 0.99
    );
    println!(
        "  S4 second-best measured recall:              {}",
        measured
            .iter()
            .all(|r| ["S4", "Sapphire"].contains(&r.name.as_str())
                || get("S4").recall() >= r.recall())
    );
    println!(
        "  SPARQLByE answers fewest questions:          {}",
        measured
            .iter()
            .all(|r| r.name == "SPARQLByE" || get("SPARQLByE").processed <= r.processed)
    );
}
