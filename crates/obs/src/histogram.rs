//! A lock-free, sharded, log-bucketed latency histogram.
//!
//! Recording is one relaxed atomic increment plus one atomic max on a
//! thread-striped shard — cheap enough to leave on unconditionally in the
//! serving hot loop. The 64 buckets are "pow-2-ish": exact for values below
//! 8µs, then two sub-buckets per octave (≤ ~41% relative bucket width) up to
//! ~27 minutes, with a final catch-all. Percentile readout returns the upper
//! edge of the containing bucket clamped to the exact observed max, so a
//! reported p99 never exceeds the true maximum and never undershoots the
//! true p99 by more than one bucket.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Total bucket count. Chosen so one shard is a handful of cache lines.
pub const BUCKETS: usize = 64;

/// Shards per histogram: enough to keep concurrent recorders off each
/// other's cache lines without making snapshots expensive.
const SHARDS: usize = 8;

/// Map a value (microseconds by convention, but any u64 works) to its
/// bucket: identity below 8, then two sub-buckets per power of two.
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < 8 {
        return v as usize;
    }
    let octave = 63 - v.leading_zeros() as u64; // >= 3
    let sub = (v >> (octave - 1)) & 1; // the bit just below the leading one
    let idx = 8 + (octave - 3) * 2 + sub;
    idx.min(BUCKETS as u64 - 1) as usize
}

/// Lowest value that lands in bucket `i` (inverse of [`bucket_index`]).
pub(crate) fn bucket_floor(i: usize) -> u64 {
    if i < 8 {
        return i as u64;
    }
    let rel = (i - 8) as u32;
    let octave = rel / 2 + 3;
    let sub = (rel % 2) as u64;
    (1u64 << octave) | (sub << (octave - 1))
}

/// Highest value that lands in bucket `i` (saturating for the catch-all).
fn bucket_ceil(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        bucket_floor(i + 1) - 1
    }
}

struct Shard {
    counts: [AtomicU64; BUCKETS],
    max: AtomicU64,
    sum: AtomicU64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            max: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Striped recorder threads onto shards round-robin, once per thread.
static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

/// The live, concurrently-writable histogram.
pub struct Histogram {
    shards: Box<[Shard]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
        }
    }

    /// Record one observation. Wait-free: two relaxed atomics on a
    /// thread-striped shard.
    #[inline]
    pub fn record(&self, v: u64) {
        let shard = &self.shards[STRIPE.with(|s| *s)];
        shard.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        shard.max.fetch_max(v, Ordering::Relaxed);
        shard.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Collapse all shards into one immutable snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::empty();
        for shard in self.shards.iter() {
            for (i, c) in shard.counts.iter().enumerate() {
                snap.counts[i] += c.load(Ordering::Relaxed);
            }
            snap.max = snap.max.max(shard.max.load(Ordering::Relaxed));
            snap.sum += shard.sum.load(Ordering::Relaxed);
        }
        snap
    }
}

/// An immutable point-in-time view of a [`Histogram`]; snapshots from
/// different histograms (e.g. per-shard replicas) merge losslessly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    counts: [u64; BUCKETS],
    /// Exact largest recorded value.
    pub max: u64,
    /// Exact sum of recorded values (mean = sum / count).
    pub sum: u64,
}

impl Snapshot {
    pub fn empty() -> Snapshot {
        Snapshot {
            counts: [0; BUCKETS],
            max: 0,
            sum: 0,
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fold another snapshot in (bucket-wise sum; max of maxes).
    pub fn merge(&mut self, other: &Snapshot) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.max = self.max.max(other.max);
        self.sum += other.sum;
    }

    /// The observations recorded *between* `earlier` and `self`, as a new
    /// snapshot: bucket-wise saturating difference, `sum` subtracted exactly.
    /// Both snapshots must come from the same histogram with `earlier` taken
    /// first; anything else yields a meaningless (but safe) result. `max` is
    /// carried over from `self` — bucket counts cannot recover the interval's
    /// true maximum, so the diff's `max` is an upper bound, which keeps
    /// [`percentile`](Self::percentile) conservative in the same direction as
    /// the whole-histogram readout. This is how an interval readout (e.g. one
    /// step of an offered-load sweep) is taken from an always-on histogram.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = Snapshot::empty();
        for (i, (now, then)) in self.counts.iter().zip(earlier.counts.iter()).enumerate() {
            out.counts[i] = now.saturating_sub(*then);
        }
        out.max = self.max;
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }

    /// The value at percentile `p` (0–100): the upper edge of the bucket
    /// holding the p-th observation, clamped to the exact observed max.
    /// Zero when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_ceil(i).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_round_trip_and_are_monotone() {
        let mut prev = 0usize;
        for v in [
            0u64,
            1,
            7,
            8,
            11,
            12,
            15,
            16,
            100,
            1_000,
            65_536,
            1_000_000,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i >= prev || v < 8, "bucket order broke at {v}");
            prev = prev.max(i);
            assert!(bucket_floor(i) <= v, "floor({i}) > {v}");
            assert!(bucket_ceil(i) >= v, "ceil({i}) < {v}");
        }
        // Every bucket's floor maps back to itself.
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_floor(i)), i);
        }
    }

    #[test]
    fn percentile_tracks_the_distribution_within_one_bucket() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 500_500);
        let p50 = s.percentile(50.0);
        // 500 lives in the [384..511] bucket; its ceiling is 511.
        assert!((500..=511).contains(&p50), "p50 = {p50}");
        let p99 = s.percentile(99.0);
        assert!((990..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(s.percentile(100.0), 1000);
    }

    #[test]
    fn empty_snapshot_reads_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.percentile(99.0), 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn merge_is_bucketwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record(v);
            b.record(v + 10_000);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 200);
        assert_eq!(m.max, 10_099);
        assert!(m.percentile(25.0) <= 127);
        assert!(m.percentile(75.0) >= 10_000);
    }

    #[test]
    fn diff_isolates_the_interval() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let before = h.snapshot();
        for _ in 0..900 {
            h.record(50_000);
        }
        let interval = h.snapshot().diff(&before);
        assert_eq!(interval.count(), 900);
        assert_eq!(interval.sum, 900 * 50_000);
        // Every interval observation was 50_000, so even p1 sits in its
        // bucket — the pre-interval 1..=100 values are fully subtracted out.
        assert!(interval.percentile(1.0) >= 50_000, "old counts leaked in");
        assert_eq!(interval.percentile(100.0), 50_000);
        // Diffing a snapshot against itself is empty.
        let now = h.snapshot();
        assert_eq!(now.diff(&now).count(), 0);
        assert_eq!(now.diff(&now).sum, 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for t in 0..8 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + (i % 997));
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count(), 80_000);
    }
}
