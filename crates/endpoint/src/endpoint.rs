//! The endpoint abstraction and the simulated local endpoint.
//!
//! Public SPARQL endpoints "impose a timeout limit on queries to avoid
//! overloading their computing resources, or reject queries from the start if
//! their estimated execution time is above a threshold" (§5.1). Those two
//! behaviours *drive* Sapphire's initialization algorithm, so the simulation
//! must reproduce them deterministically: [`LocalEndpoint`] enforces a work
//! budget per query (timeout) and an optional up-front cost-estimate gate
//! (rejection), and counts everything for the init-cost experiment.

use std::sync::Mutex;

use sapphire_rdf::{vocab, Graph, Literal, Term};
use sapphire_sparql::ast::{Aggregate, Expr, Projection, SelectItem, TermPattern};
use sapphire_sparql::eval::{evaluate, EvalError, WorkBudget};
use sapphire_sparql::{parse_query, Query, QueryResult, SelectQuery, Solutions};

/// Endpoint failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EndpointError {
    /// The query exceeded the endpoint's per-query resource budget — the
    /// simulated timeout.
    Timeout {
        /// Work units consumed before the endpoint gave up.
        work_used: u64,
    },
    /// The endpoint refused to run the query because its estimated cost
    /// exceeded the admission threshold.
    Rejected {
        /// The endpoint's cost estimate.
        estimated_cost: u64,
    },
    /// A shared query service turned the request away at admission control —
    /// the service-level analogue of [`EndpointError::Rejected`], raised on
    /// queue overflow rather than per-query cost.
    Overloaded {
        /// Requests already in flight when this one arrived (`0` when the
        /// rejecting service no longer knows, e.g. a queue-deadline miss).
        in_flight: usize,
    },
    /// The endpoint could not be reached, or the connection died mid-call
    /// (connect refused, connection reset, read deadline, short read). The
    /// *transport* failed, not the query: a sibling replica — or the same
    /// endpoint after a reconnect — may well answer, so this is retryable
    /// back-pressure for the [`Backoff`](crate::Backoff)/failover machinery,
    /// unlike the deterministic `Parse`/`Eval`/`Timeout` failures.
    Unreachable {
        /// Short machine-stable reason: `"connect"`, `"reset"`, `"timeout"`,
        /// `"short read"`, `"closed"`.
        reason: String,
    },
    /// The query did not parse.
    Parse(String),
    /// The query parsed but could not be evaluated.
    Eval(String),
}

impl std::fmt::Display for EndpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EndpointError::Timeout { work_used } => {
                write!(f, "query timed out after {work_used} work units")
            }
            EndpointError::Rejected { estimated_cost } => {
                write!(f, "query rejected (estimated cost {estimated_cost})")
            }
            EndpointError::Overloaded { in_flight } => {
                write!(f, "service overloaded ({in_flight} requests in flight)")
            }
            EndpointError::Unreachable { reason } => {
                write!(f, "endpoint unreachable ({reason})")
            }
            EndpointError::Parse(m) => write!(f, "parse error: {m}"),
            EndpointError::Eval(m) => write!(f, "evaluation error: {m}"),
        }
    }
}

impl std::error::Error for EndpointError {}

/// Anything that can answer SPARQL queries.
pub trait Endpoint: Send + Sync {
    /// The endpoint's registered name (e.g. `"dbpedia"`).
    fn name(&self) -> &str;

    /// Execute an already-parsed query.
    fn execute_parsed(&self, query: &Query) -> Result<QueryResult, EndpointError>;

    /// Parse and execute a query string.
    fn execute(&self, query: &str) -> Result<QueryResult, EndpointError> {
        let parsed = parse_query(query).map_err(|e| EndpointError::Parse(e.to_string()))?;
        self.execute_parsed(&parsed)
    }

    /// Execute a SELECT and return its solutions.
    fn select(&self, query: &str) -> Result<Solutions, EndpointError> {
        match self.execute(query)? {
            QueryResult::Solutions(s) => Ok(s),
            QueryResult::Boolean(_) => Err(EndpointError::Eval("expected SELECT, got ASK".into())),
        }
    }
}

/// Resource limits of a [`LocalEndpoint`].
#[derive(Debug, Clone, Copy)]
pub struct EndpointLimits {
    /// Per-query work budget; `None` means the warehousing architecture with
    /// no timeouts (Appendix A, Q9/Q10).
    pub timeout_work: Option<u64>,
    /// Reject queries whose *estimated* cost exceeds this, without running
    /// them at all.
    pub reject_above: Option<u64>,
    /// Hard cap on returned rows (endpoints cap result sizes too).
    pub max_results: Option<usize>,
}

impl EndpointLimits {
    /// Limits imitating a guarded public endpoint.
    pub fn public_endpoint(timeout_work: u64) -> Self {
        EndpointLimits {
            timeout_work: Some(timeout_work),
            reject_above: Some(timeout_work.saturating_mul(64)),
            max_results: Some(10_000),
        }
    }

    /// No limits — the warehousing architecture.
    pub fn warehouse() -> Self {
        EndpointLimits {
            timeout_work: None,
            reject_above: None,
            max_results: None,
        }
    }
}

/// Cumulative endpoint-side statistics, the raw material of the paper's
/// initialization-cost report (§5.2: "~800 SPARQL queries … ~200 timed out").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Queries admitted and run (successfully or not).
    pub queries: u64,
    /// Queries that hit the work budget.
    pub timeouts: u64,
    /// Queries rejected up front by the cost estimate.
    pub rejected: u64,
    /// Total work units consumed.
    pub total_work: u64,
}

/// An in-process SPARQL endpoint over a [`Graph`] with deterministic
/// resource-limit simulation.
pub struct LocalEndpoint {
    name: String,
    graph: Graph,
    limits: EndpointLimits,
    stats: Mutex<EndpointStats>,
}

impl LocalEndpoint {
    /// Wrap a graph as an endpoint.
    pub fn new(name: impl Into<String>, graph: Graph, limits: EndpointLimits) -> Self {
        LocalEndpoint {
            name: name.into(),
            graph,
            limits,
            stats: Mutex::new(EndpointStats::default()),
        }
    }

    /// The underlying graph (the simulation owns it; remote endpoints would
    /// not expose this, and Sapphire's code never uses it).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The endpoint's limits.
    pub fn limits(&self) -> EndpointLimits {
        self.limits
    }

    /// Snapshot of the statistics counters.
    pub fn stats(&self) -> EndpointStats {
        *self.stats.lock().unwrap()
    }

    /// Reset the statistics counters.
    pub fn reset_stats(&self) {
        *self.stats.lock().unwrap() = EndpointStats::default();
    }

    /// The endpoint's up-front cost estimate for a query: the sum of index
    /// cardinalities of its triple patterns with only ground terms bound —
    /// a crude planner estimate, which is exactly what public endpoints use
    /// for admission control.
    pub fn estimate_cost(&self, query: &Query) -> u64 {
        let pattern = match query {
            Query::Select(s) => &s.pattern,
            Query::Ask(gp) => gp,
        };
        pattern
            .triples
            .iter()
            .map(|tp| {
                let id = |p: &sapphire_sparql::TermPattern| {
                    p.as_term().and_then(|t| self.graph.term_id(t))
                };
                // A ground term absent from the graph ⇒ zero matches.
                let any_absent = tp
                    .positions()
                    .iter()
                    .any(|p| p.as_term().is_some() && id(p).is_none());
                if any_absent {
                    0
                } else {
                    self.graph
                        .cardinality(id(&tp.subject), id(&tp.predicate), id(&tp.object))
                        as u64
                }
            })
            .sum()
    }
}

impl LocalEndpoint {
    /// Recognize the Q1/Q3/Q4 statistics shapes:
    /// `SELECT ?g (COUNT(…) AS ?f) WHERE { one pattern } GROUP BY ?g`
    /// where the pattern is `?s ?p ?o` (grouped by `?p`, optionally filtered
    /// to literal objects) or `?s a ?o` (grouped by `?o`).
    fn try_statistics_answer(&self, query: &Query) -> Option<(Solutions, u64)> {
        let Query::Select(select) = query else {
            return None;
        };
        let stats = self.match_statistics_shape(select)?;
        let (group_var, count_alias, counts) = stats;
        let mut rows: Vec<Vec<Option<Term>>> = counts
            .into_iter()
            .map(|(id, n)| {
                vec![
                    Some(self.graph.term(id).clone()),
                    Some(Term::Literal(Literal::integer(n as i64))),
                ]
            })
            .collect();
        if let Some(limit) = select.limit {
            rows.truncate(limit);
        }
        let work = rows.len() as u64 + 1;
        Some((
            Solutions {
                vars: vec![group_var, count_alias],
                rows,
            },
            work,
        ))
    }

    #[allow(clippy::type_complexity)]
    fn match_statistics_shape(
        &self,
        select: &SelectQuery,
    ) -> Option<(String, String, Vec<(sapphire_rdf::TermId, usize)>)> {
        if select.pattern.triples.len() != 1 || select.group_by.len() != 1 {
            return None;
        }
        let tp = &select.pattern.triples[0];
        let group = &select.group_by[0];
        // Projection: the group var + one COUNT aggregate.
        let Projection::Items(items) = &select.projection else {
            return None;
        };
        if items.len() != 2 {
            return None;
        }
        let (g_item, c_item) = (&items[0], &items[1]);
        let SelectItem::Var(gv) = g_item else {
            return None;
        };
        let SelectItem::Agg {
            agg: Aggregate::Count { .. },
            alias,
        } = c_item
        else {
            return None;
        };
        if gv != group {
            return None;
        }
        let (TermPattern::Var(sv), TermPattern::Var(ov)) = (&tp.subject, &tp.object) else {
            return None;
        };
        match &tp.predicate {
            // ?s ?p ?o GROUP BY ?p — predicate frequencies (Q1/Q4).
            TermPattern::Var(pv) if pv == group && sv != ov => {
                let literal_only = match select.pattern.filters.as_slice() {
                    [] => false,
                    [Expr::IsLiteral(inner)] => matches!(&**inner, Expr::Var(v) if v == ov),
                    _ => return None,
                };
                Some((
                    group.clone(),
                    alias.clone(),
                    self.graph.predicate_counts(literal_only),
                ))
            }
            // ?s a ?o GROUP BY ?o — type frequencies (Q3).
            TermPattern::Term(Term::Iri(p)) if p == vocab::rdf::TYPE && ov == group => {
                if !select.pattern.filters.is_empty() {
                    return None;
                }
                Some((group.clone(), alias.clone(), self.graph.type_counts()))
            }
            _ => None,
        }
    }
}

impl Endpoint for LocalEndpoint {
    fn name(&self) -> &str {
        &self.name
    }

    fn execute_parsed(&self, query: &Query) -> Result<QueryResult, EndpointError> {
        // Statistics fast path: real endpoints answer predicate/type
        // frequency aggregates (the paper's Q1/Q3/Q4 — "short queries that
        // are not expected to time out", §5.1) from internal statistics
        // rather than scanning. Charge work proportional to the result size.
        if let Some((solutions, work)) = self.try_statistics_answer(query) {
            let mut stats = self.stats.lock().unwrap();
            stats.queries += 1;
            stats.total_work += work;
            return Ok(QueryResult::Solutions(solutions));
        }
        if let Some(threshold) = self.limits.reject_above {
            let estimated = self.estimate_cost(query);
            if estimated > threshold {
                self.stats.lock().unwrap().rejected += 1;
                return Err(EndpointError::Rejected {
                    estimated_cost: estimated,
                });
            }
        }
        let mut budget = match self.limits.timeout_work {
            Some(w) => WorkBudget::limited(w),
            None => WorkBudget::unlimited(),
        };
        let result = evaluate(&self.graph, query, &mut budget);
        let mut stats = self.stats.lock().unwrap();
        stats.queries += 1;
        stats.total_work += budget.used();
        match result {
            Ok(mut r) => {
                if let (Some(cap), QueryResult::Solutions(s)) = (self.limits.max_results, &mut r) {
                    s.rows.truncate(cap);
                }
                Ok(r)
            }
            Err(EvalError::WorkLimitExceeded { used }) => {
                stats.timeouts += 1;
                Err(EndpointError::Timeout { work_used: used })
            }
            Err(e) => Err(EndpointError::Eval(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapphire_rdf::Term;

    fn graph(n: usize) -> Graph {
        let mut g = Graph::new();
        for i in 0..n {
            g.insert(
                Term::iri(format!("http://x/s{i}")),
                Term::iri("http://x/p"),
                Term::en(format!("value {i}")),
            );
        }
        g
    }

    #[test]
    fn basic_select() {
        let ep = LocalEndpoint::new("test", graph(5), EndpointLimits::warehouse());
        let s = ep.select("SELECT ?s WHERE { ?s <http://x/p> ?o }").unwrap();
        assert_eq!(s.len(), 5);
        assert_eq!(ep.stats().queries, 1);
        assert_eq!(ep.stats().timeouts, 0);
    }

    #[test]
    fn timeout_is_counted() {
        let limits = EndpointLimits {
            timeout_work: Some(3),
            reject_above: None,
            max_results: None,
        };
        let ep = LocalEndpoint::new("tight", graph(100), limits);
        let err = ep.select("SELECT ?s WHERE { ?s ?p ?o }").unwrap_err();
        assert!(matches!(err, EndpointError::Timeout { .. }));
        assert_eq!(ep.stats().timeouts, 1);
        assert_eq!(ep.stats().queries, 1);
    }

    #[test]
    fn rejection_precedes_execution() {
        let limits = EndpointLimits {
            timeout_work: Some(1_000),
            reject_above: Some(10),
            max_results: None,
        };
        let ep = LocalEndpoint::new("strict", graph(100), limits);
        let err = ep.select("SELECT ?s WHERE { ?s ?p ?o }").unwrap_err();
        assert!(matches!(err, EndpointError::Rejected { .. }));
        let stats = ep.stats();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.queries, 0, "rejected queries never run");
    }

    #[test]
    fn selective_query_passes_admission() {
        let limits = EndpointLimits {
            timeout_work: Some(1_000),
            reject_above: Some(10),
            max_results: None,
        };
        let ep = LocalEndpoint::new("strict", graph(100), limits);
        let s = ep
            .select("SELECT ?o WHERE { <http://x/s3> <http://x/p> ?o }")
            .unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn absent_ground_term_estimates_zero() {
        let ep = LocalEndpoint::new("t", graph(10), EndpointLimits::warehouse());
        let q = parse_query("SELECT ?o WHERE { <http://x/missing> ?p ?o }").unwrap();
        assert_eq!(ep.estimate_cost(&q), 0);
    }

    #[test]
    fn max_results_caps_rows() {
        let limits = EndpointLimits {
            timeout_work: None,
            reject_above: None,
            max_results: Some(3),
        };
        let ep = LocalEndpoint::new("capped", graph(10), limits);
        let s = ep.select("SELECT ?s WHERE { ?s ?p ?o }").unwrap();
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn parse_errors_reported() {
        let ep = LocalEndpoint::new("t", graph(1), EndpointLimits::warehouse());
        assert!(matches!(
            ep.execute("NOT SPARQL"),
            Err(EndpointError::Parse(_))
        ));
    }

    #[test]
    fn ask_through_endpoint() {
        let ep = LocalEndpoint::new("t", graph(3), EndpointLimits::warehouse());
        let r = ep.execute("ASK { <http://x/s0> <http://x/p> ?o }").unwrap();
        assert_eq!(r.boolean(), Some(true));
    }
}
