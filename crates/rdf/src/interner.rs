//! Term interning: maps [`Term`]s to dense `u32` ids.
//!
//! Graphs at DBpedia-like scale repeat the same IRIs and literals millions of
//! times; interning keeps each triple at 12 bytes and makes joins integer
//! comparisons (a standard trick in RDF stores, and the perf-book's "compact
//! representation for common values" guidance).

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use crate::term::Term;

/// A dense identifier for an interned [`Term`]. Valid only with the
/// [`Interner`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A fast, low-quality hasher in the spirit of `FxHash` (we avoid an extra
/// dependency). Term keys are strings, so we use the FNV-1a mixing loop which
/// benchmarks well for short keys.
#[derive(Default, Clone)]
pub struct FnvHasher(u64);

impl std::hash::Hasher for FnvHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        const PRIME: u64 = 0x100000001b3;
        let mut hash = if self.0 == 0 {
            0xcbf29ce484222325
        } else {
            self.0
        };
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
        self.0 = hash;
    }
}

/// Hash map keyed with the FNV hasher.
pub type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// A bidirectional [`Term`] ↔ [`TermId`] table.
#[derive(Default, Debug)]
pub struct Interner {
    terms: Vec<Term>,
    ids: FnvMap<Term, TermId>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a term, returning its id (existing or fresh).
    pub fn intern(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.ids.get(&term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("interner overflow: > 2^32 terms"));
        self.terms.push(term.clone());
        self.ids.insert(term, id);
        id
    }

    /// Rebuild an interner from a term table whose position *is* the id —
    /// the snapshot loader's constructor. Ids come out identical to the
    /// interner that produced the table. Returns `None` if the table
    /// overflows the `u32` id space or contains a duplicate term (possible
    /// only for hand-crafted input; tables written in [`iter`](Self::iter)
    /// order are always valid).
    pub fn from_terms_checked(terms: Vec<Term>) -> Option<Self> {
        u32::try_from(terms.len()).ok()?;
        let mut ids: FnvMap<Term, TermId> = FnvMap::default();
        ids.reserve(terms.len());
        for (i, term) in terms.iter().enumerate() {
            if ids.insert(term.clone(), TermId(i as u32)).is_some() {
                return None;
            }
        }
        Some(Interner { terms, ids })
    }

    /// Look up the id of an already-interned term without inserting.
    pub fn get(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Resolve an id back to its term.
    ///
    /// # Panics
    /// Panics if the id did not come from this interner.
    pub fn resolve(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate over `(id, term)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern(Term::iri("http://x/a"));
        let b = i.intern(Term::iri("http://x/b"));
        let a2 = i.intern(Term::iri("http://x/a"));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut i = Interner::new();
        let t = Term::en("New York");
        let id = i.intern(t.clone());
        assert_eq!(i.resolve(id), &t);
        assert_eq!(i.get(&t), Some(id));
        assert_eq!(i.get(&Term::en("Boston")), None);
    }

    #[test]
    fn distinct_literal_shapes_get_distinct_ids() {
        let mut i = Interner::new();
        let plain = i.intern(Term::literal("x"));
        let tagged = i.intern(Term::en("x"));
        let iri = i.intern(Term::iri("x"));
        assert_ne!(plain, tagged);
        assert_ne!(plain, iri);
        assert_eq!(i.len(), 3);
    }

    #[test]
    fn iter_preserves_order() {
        let mut i = Interner::new();
        i.intern(Term::iri("a"));
        i.intern(Term::iri("b"));
        let collected: Vec<_> = i.iter().map(|(id, _)| id.0).collect();
        assert_eq!(collected, vec![0, 1]);
    }
}
