//! QSM end-to-end benchmarks (§7.3.2): suggestion latency for the Figure 2
//! literal-typo query and the Figure 6 structure-mismatch query.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use sapphire_bench::{harvest_literals, harvest_predicates};
use sapphire_core::{CachedData, QuerySuggestion, SapphireConfig};
use sapphire_datagen::{generate, DatasetConfig};
use sapphire_endpoint::{Endpoint, EndpointLimits, FederatedProcessor, LocalEndpoint};
use sapphire_sparql::parse_select;
use sapphire_text::Lexicon;

fn bench_qsm(c: &mut Criterion) {
    let graph = generate(DatasetConfig::tiny(42));
    let literals = harvest_literals(&graph, "en", 80);
    let predicates = harvest_predicates(&graph);
    let config = SapphireConfig {
        processes: 4,
        ..SapphireConfig::default()
    };
    let cache = Arc::new(CachedData::from_raw(predicates, literals, &config));
    let endpoint: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
        "dbpedia",
        graph,
        EndpointLimits::warehouse(),
    ));
    let fed = FederatedProcessor::single(endpoint);
    let qsm = QuerySuggestion::new(cache, Lexicon::dbpedia_default(), config);

    let typo_query = parse_select(r#"SELECT ?p WHERE { ?p dbo:surname "Kennedys"@en }"#).unwrap();
    let structure_query = parse_select(
        r#"SELECT ?b WHERE { ?b dbo:writer "Jack Kerouac"@en . ?b dbo:publisher "Viking Press"@en }"#,
    )
    .unwrap();

    let mut group = c.benchmark_group("qsm_suggest");
    group.sample_size(10);
    group.bench_function("literal_typo_fig2", |b| {
        b.iter(|| black_box(qsm.suggest(black_box(&typo_query), &fed)))
    });
    group.bench_function("structure_mismatch_fig6", |b| {
        b.iter(|| black_box(qsm.suggest(black_box(&structure_query), &fed)))
    });
    group.finish();
}

criterion_group!(benches, bench_qsm);
criterion_main!(benches);
