//! Suffix-tree micro-benchmarks: construction cost, lookup latency vs corpus
//! size (the paper's O(|t|+z) claim — §5.2 reports ≈0.25 ms per lookup
//! "regardless of the number of literals that are indexed"), and the
//! comparison against a naive linear scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sapphire_bench::harvest_literals;
use sapphire_datagen::{generate, DatasetConfig};
use sapphire_suffix::SuffixTree;
use std::hint::black_box;

fn corpus(n: usize) -> Vec<String> {
    let graph = generate(DatasetConfig::small(42));
    harvest_literals(&graph, "en", 80)
        .into_iter()
        .take(n)
        .map(|(l, _)| l)
        .collect()
}

fn bench_lookup_vs_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("suffix_tree_lookup_vs_size");
    group.sample_size(20);
    for size in [1_000usize, 4_000, 16_000] {
        let strings = corpus(size);
        if strings.len() < size {
            continue;
        }
        let tree = SuffixTree::build(strings);
        group.bench_with_input(BenchmarkId::from_parameter(size), &tree, |b, tree| {
            b.iter(|| {
                // The paper's k = 10 lookups.
                black_box(tree.find_containing(black_box("Ken"), 10));
                black_box(tree.find_containing(black_box("ing"), 10));
                black_box(tree.find_containing(black_box("zzz"), 10));
            })
        });
    }
    group.finish();
}

fn bench_tree_vs_linear_scan(c: &mut Criterion) {
    let strings = corpus(8_000);
    let tree = SuffixTree::build(strings.clone());
    let mut group = c.benchmark_group("substring_search");
    group.sample_size(20);
    group.bench_function("suffix_tree", |b| {
        b.iter(|| black_box(tree.find_containing(black_box("Spring"), 10)))
    });
    group.bench_function("linear_scan", |b| {
        b.iter(|| {
            let hits: Vec<&String> = strings
                .iter()
                .filter(|s| s.contains(black_box("Spring")))
                .take(10)
                .collect();
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_construction(c: &mut Criterion) {
    let strings = corpus(4_000);
    let mut group = c.benchmark_group("suffix_tree_build");
    group.sample_size(10);
    group.bench_function("build_4k_strings", |b| {
        b.iter(|| black_box(SuffixTree::build(strings.iter().cloned())))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lookup_vs_size,
    bench_tree_vs_linear_scan,
    bench_construction
);
criterion_main!(benches);
