//! RDF terms: IRIs, literals, and blank nodes.

use std::fmt;

/// An RDF literal: a lexical form plus an optional language tag or datatype IRI.
///
/// Per RDF 1.1 a literal has exactly one of three shapes: a plain string, a
/// language-tagged string, or a datatyped value. We keep the lexical form as
/// the source of truth and interpret datatypes lazily (see [`Literal::as_f64`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// The lexical form, e.g. `"New York"` or `"42"`.
    pub value: String,
    /// Language tag (lowercased), e.g. `en`. Mutually exclusive with `datatype`.
    pub lang: Option<String>,
    /// Datatype IRI, e.g. `http://www.w3.org/2001/XMLSchema#integer`.
    pub datatype: Option<String>,
}

impl Literal {
    /// A plain (untyped, untagged) string literal.
    pub fn simple(value: impl Into<String>) -> Self {
        Literal {
            value: value.into(),
            lang: None,
            datatype: None,
        }
    }

    /// A language-tagged string literal. The tag is lowercased.
    pub fn lang_tagged(value: impl Into<String>, lang: impl Into<String>) -> Self {
        Literal {
            value: value.into(),
            lang: Some(lang.into().to_ascii_lowercase()),
            datatype: None,
        }
    }

    /// A datatyped literal.
    pub fn typed(value: impl Into<String>, datatype: impl Into<String>) -> Self {
        Literal {
            value: value.into(),
            lang: None,
            datatype: Some(datatype.into()),
        }
    }

    /// An `xsd:integer` literal.
    pub fn integer(v: i64) -> Self {
        Literal::typed(v.to_string(), crate::vocab::xsd::INTEGER)
    }

    /// An `xsd:double` literal.
    pub fn double(v: f64) -> Self {
        Literal::typed(v.to_string(), crate::vocab::xsd::DOUBLE)
    }

    /// An `xsd:date` literal from an ISO `YYYY-MM-DD` string.
    pub fn date(v: impl Into<String>) -> Self {
        Literal::typed(v.into(), crate::vocab::xsd::DATE)
    }

    /// Attempt a numeric interpretation of the lexical form.
    ///
    /// Any literal whose lexical form parses as a number is treated as numeric,
    /// mirroring the forgiving behaviour of public SPARQL endpoints.
    pub fn as_f64(&self) -> Option<f64> {
        self.value.trim().parse::<f64>().ok()
    }

    /// True if the datatype is one of the XSD numeric types.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self.datatype.as_deref(),
            Some(crate::vocab::xsd::INTEGER)
                | Some(crate::vocab::xsd::DECIMAL)
                | Some(crate::vocab::xsd::DOUBLE)
                | Some(crate::vocab::xsd::FLOAT)
        )
    }

    /// The year component of an `xsd:date`/`xsd:dateTime`-shaped lexical form.
    pub fn year(&self) -> Option<i32> {
        let s = self.value.trim();
        let (head, rest) = if let Some(stripped) = s.strip_prefix('-') {
            (true, stripped)
        } else {
            (false, s)
        };
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if digits.is_empty() || !matches!(rest.as_bytes().get(digits.len()), None | Some(b'-')) {
            return None;
        }
        let y: i32 = digits.parse().ok()?;
        Some(if head { -y } else { y })
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", escape_literal(&self.value))?;
        if let Some(lang) = &self.lang {
            write!(f, "@{lang}")?;
        } else if let Some(dt) = &self.datatype {
            write!(f, "^^<{dt}>")?;
        }
        Ok(())
    }
}

/// An RDF term: the value space of subjects, predicates, and objects.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI reference, stored without the surrounding angle brackets.
    Iri(String),
    /// A literal (only valid in object position).
    Literal(Literal),
    /// A blank node with a local label.
    Blank(String),
}

impl Term {
    /// Construct an IRI term.
    pub fn iri(value: impl Into<String>) -> Self {
        Term::Iri(value.into())
    }

    /// Construct a plain literal term.
    pub fn literal(value: impl Into<String>) -> Self {
        Term::Literal(Literal::simple(value))
    }

    /// Construct an English-tagged literal term (the language Sapphire caches).
    pub fn en(value: impl Into<String>) -> Self {
        Term::Literal(Literal::lang_tagged(value, "en"))
    }

    /// Construct a blank node term.
    pub fn blank(label: impl Into<String>) -> Self {
        Term::Blank(label.into())
    }

    /// True if this term is a literal.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// True if this term is an IRI.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// The IRI string, if this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(s) => Some(s),
            _ => None,
        }
    }

    /// The literal, if this term is one.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// The "effective string" of a term: IRI text, literal lexical form, or
    /// blank label. This is what SPARQL's `STR()` returns.
    pub fn lexical(&self) -> &str {
        match self {
            Term::Iri(s) => s,
            Term::Literal(l) => &l.value,
            Term::Blank(b) => b,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => write!(f, "<{iri}>"),
            Term::Literal(lit) => write!(f, "{lit}"),
            Term::Blank(label) => write!(f, "_:{label}"),
        }
    }
}

/// Escape a literal's lexical form for N-Triples/Turtle output.
pub fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

/// Unescape an N-Triples/Turtle quoted string body.
pub fn unescape_literal(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let cp =
                    u32::from_str_radix(&hex, 16).map_err(|_| format!("bad \\u escape: {hex}"))?;
                out.push(char::from_u32(cp).ok_or_else(|| format!("bad codepoint: {cp}"))?);
            }
            Some(other) => return Err(format!("unknown escape: \\{other}")),
            None => return Err("dangling backslash".to_string()),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_constructors() {
        let l = Literal::simple("New York");
        assert_eq!(l.value, "New York");
        assert!(l.lang.is_none() && l.datatype.is_none());

        let l = Literal::lang_tagged("New York", "EN");
        assert_eq!(l.lang.as_deref(), Some("en"));

        let l = Literal::integer(42);
        assert_eq!(l.as_f64(), Some(42.0));
        assert!(l.is_numeric());
    }

    #[test]
    fn literal_year_extraction() {
        assert_eq!(Literal::date("1945-05-08").year(), Some(1945));
        assert_eq!(Literal::date("1945").year(), Some(1945));
        assert_eq!(Literal::simple("not a date").year(), None);
        assert_eq!(Literal::date("-0044-03-15").year(), Some(-44));
        assert_eq!(Literal::simple("1945x").year(), None);
    }

    #[test]
    fn term_display_roundtrips_shapes() {
        assert_eq!(Term::iri("http://x/a").to_string(), "<http://x/a>");
        assert_eq!(Term::literal("hi").to_string(), "\"hi\"");
        assert_eq!(Term::en("hi").to_string(), "\"hi\"@en");
        assert_eq!(
            Term::Literal(Literal::integer(7)).to_string(),
            "\"7\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
        assert_eq!(Term::blank("b0").to_string(), "_:b0");
    }

    #[test]
    fn escape_roundtrip() {
        let cases = [
            "plain",
            "with \"quotes\"",
            "back\\slash",
            "new\nline",
            "tab\there",
        ];
        for c in cases {
            assert_eq!(unescape_literal(&escape_literal(c)).unwrap(), c);
        }
    }

    #[test]
    fn unescape_rejects_bad_input() {
        assert!(unescape_literal("dangling\\").is_err());
        assert!(unescape_literal("bad \\q escape").is_err());
        assert!(unescape_literal("\\uZZZZ").is_err());
    }

    #[test]
    fn term_lexical() {
        assert_eq!(Term::iri("http://x/a").lexical(), "http://x/a");
        assert_eq!(Term::en("hello").lexical(), "hello");
        assert_eq!(Term::blank("n1").lexical(), "n1");
    }
}
