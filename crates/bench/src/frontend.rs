//! The `frontend_load` harness: thousands of open, mostly-idle sessions on
//! a small fixed worker pool.
//!
//! `serve_load` measures the serving tier at full boil — every simulated
//! user is always either requesting or about to. The interactive workload
//! the paper describes is the opposite: sessions are *open* for minutes and
//! *active* for milliseconds, dominated by think time. A thread-per-request
//! tier pays one parked stack per waiting request; the evented
//! [`Frontend`] pays one queue entry. This
//! harness makes that difference a number:
//!
//! 1. **Think-time phase** — `sessions` (default 2,000) open sessions each
//!    replay the Appendix-B scripts one request at a time, with
//!    exponentially distributed think times (mean `think_ms`) between
//!    requests — a Poisson request process per session, seeded
//!    deterministically per session. The whole fleet runs on `workers`
//!    (default 8) front-end threads; the report carries the sampled
//!    process thread-count and RSS peaks so "no thread per session" is
//!    verifiable, and any rejection fails the CI gate.
//! 2. **Hot phase** — a subset of sessions turns think time off and drives
//!    closed-loop through the same front-end (each response immediately
//!    submits the next request), measuring the event loop's throughput
//!    ceiling against the committed thread-per-request baseline.
//!
//! Standalone: `cargo run --release -p sapphire-bench --bin serve_load --
//! --frontend [--sessions 2000] [--workers 8] [--think 100] [--hold 1500]`.
//! `serve_load`'s default single-server run also embeds this phase as the
//! `"frontend"` report section (over the same shared model), which the
//! `serve_check` CI gate enforces.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, Weak};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sapphire_core::prelude::*;
use sapphire_core::session::Modifiers;
use sapphire_core::{InitMode, PredictiveUserModel};
use sapphire_datagen::generate;
use sapphire_datagen::workload::{appendix_b, Question};
use sapphire_server::frontend::{FrontRequest, FrontResponse};
use sapphire_server::{Frontend, FrontendConfig, SapphireServer, ServerConfig, ServerError};

use crate::serve::ClassStats;
use crate::{dataset_for, experiment_config};

/// Everything the front-end phase can be asked to do.
#[derive(Debug, Clone)]
pub struct FrontendPhaseOptions {
    /// Open sessions held through the think-time phase.
    pub sessions: usize,
    /// Front-end worker threads (the whole serving thread budget).
    pub workers: usize,
    /// Mean think time between one session's requests, in milliseconds.
    pub think_ms: u64,
    /// Think-time phase duration, in milliseconds.
    pub hold_ms: u64,
    /// Closed-loop sessions in the hot phase.
    pub hot_sessions: usize,
    /// Requests per closed-loop session in the hot phase.
    pub hot_rounds: usize,
    /// Admission queue deadline in milliseconds (`0` = 1000ms — relaxed
    /// like the CI gate's, so a scheduler stall cannot fake a rejection).
    pub queue_wait_ms: u64,
}

impl Default for FrontendPhaseOptions {
    fn default() -> Self {
        FrontendPhaseOptions {
            sessions: 2_000,
            workers: 8,
            think_ms: 100,
            hold_ms: 1_500,
            hot_sessions: 64,
            hot_rounds: 200,
            queue_wait_ms: 0,
        }
    }
}

// --- Process self-observation ----------------------------------------------

/// `(threads, vm_rss_kb)` from `/proc/self/status`; zeros when unavailable
/// (non-Linux) — the gate treats zero as "not measurable here".
fn proc_status() -> (u64, u64) {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return (0, 0);
    };
    let field = |name: &str| -> u64 {
        status
            .lines()
            .find(|l| l.starts_with(name))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    (field("Threads:"), field("VmRSS:"))
}

// --- Per-session scripted request stream ------------------------------------

enum Step {
    Keystroke,
    SetRow,
    Modifiers,
    Run,
}

/// Generates one session's Appendix-B request stream lazily (2,000
/// materialized scripts would be pure RSS noise in a harness whose gate is
/// an RSS budget).
struct ScriptCursor {
    questions: Arc<Vec<Question>>,
    offset: usize,
    question: usize,
    row: usize,
    typed: usize,
    step: Step,
}

impl ScriptCursor {
    fn new(questions: Arc<Vec<Question>>, offset: usize) -> Self {
        ScriptCursor {
            questions,
            offset,
            question: 0,
            row: 0,
            typed: 0,
            step: Step::Keystroke,
        }
    }

    fn next(&mut self) -> FrontRequest {
        let q = &self.questions[(self.question + self.offset) % self.questions.len()];
        match self.step {
            Step::Keystroke => {
                let input = &q.script.rows[self.row];
                let keyword = input.object.trim_start_matches('?');
                let len = keyword.chars().count().clamp(1, 6);
                self.typed += 1;
                let prefix: String = keyword.chars().take(self.typed).collect();
                if self.typed >= len {
                    self.step = Step::SetRow;
                }
                FrontRequest::Complete { typed: prefix }
            }
            Step::SetRow => {
                let input = q.script.rows[self.row].clone();
                let row = self.row;
                self.typed = 0;
                if self.row + 1 < q.script.rows.len() {
                    self.row += 1;
                    self.step = Step::Keystroke;
                } else {
                    self.step = Step::Modifiers;
                }
                FrontRequest::SetRow { idx: row, input }
            }
            Step::Modifiers => {
                let modifiers = Modifiers {
                    distinct: false,
                    order_by: q.script.order_by.clone(),
                    limit: q.script.limit,
                    count: q.script.count,
                    filters: q.script.filters.clone(),
                };
                self.step = Step::Run;
                FrontRequest::SetModifiers { modifiers }
            }
            Step::Run => {
                self.question += 1;
                self.row = 0;
                self.typed = 0;
                self.step = Step::Keystroke;
                FrontRequest::Run
            }
        }
    }
}

/// Exponential think time with mean `mean_ms` (a Poisson request process
/// per session), deterministic per session seed.
fn think_time(rng: &mut StdRng, mean_ms: u64) -> Duration {
    let u: f64 = rng.gen::<f64>().min(1.0 - 1e-12);
    Duration::from_secs_f64((mean_ms as f64 / 1000.0) * -(1.0 - u).ln())
}

/// One completed request, reported back to the driver.
struct Done {
    session: usize,
    /// 0 = QCM, 1 = QSM, 2 = instant (row/modifier edits).
    class: u8,
    latency_us: u64,
    outcome: Result<(), ServerError>,
}

fn submit_scripted(
    fe: &Frontend,
    id: sapphire_server::SessionId,
    session: usize,
    cursor: &mut ScriptCursor,
    tx: &mpsc::Sender<Done>,
) {
    let request = cursor.next();
    let class = match &request {
        FrontRequest::Complete { .. } => 0,
        FrontRequest::Run => 1,
        _ => 2,
    };
    let tx = tx.clone();
    let t = Instant::now();
    fe.submit(
        id,
        request,
        Box::new(move |result| {
            // The driver holds the receiver for the whole phase; dropping a
            // response silently would stall the accounting into a visible
            // hang, so fail loudly instead.
            tx.send(Done {
                session,
                class,
                latency_us: t.elapsed().as_micros() as u64,
                outcome: result.map(|_| ()),
            })
            .expect("driver outlives responses");
        }),
    )
    .expect("think-time submissions are never rejected (backlog ≤ 1 per session)");
}

// --- Hot phase: closed-loop through callbacks --------------------------------

struct HotState {
    fe: Weak<Frontend>,
    id: sapphire_server::SessionId,
    session: usize,
    terms: Arc<Vec<String>>,
    remaining: AtomicUsize,
    latencies: Mutex<Vec<u64>>,
    errors: AtomicUsize,
    done: mpsc::Sender<usize>,
}

/// Submit this hot session's next request; each response re-enters here, so
/// the session drives itself closed-loop without any parked driver thread.
fn hot_next(state: &Arc<HotState>) {
    let Some(fe) = state.fe.upgrade() else {
        let _ = state.done.send(state.session);
        return;
    };
    let Ok(prev) = state
        .remaining
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
    else {
        let _ = state.done.send(state.session);
        return;
    };
    let term = state.terms[(state.session + prev) % state.terms.len()].clone();
    let t = Instant::now();
    let chain = state.clone();
    let _ = fe.submit(
        state.id,
        FrontRequest::Complete { typed: term },
        Box::new(move |result| {
            match result {
                Ok(_) => chain
                    .latencies
                    .lock()
                    .unwrap()
                    .push(t.elapsed().as_micros() as u64),
                Err(_) => {
                    chain.errors.fetch_add(1, Ordering::SeqCst);
                }
            }
            hot_next(&chain);
        }),
    );
}

// --- The phase itself -------------------------------------------------------

/// Run the front-end phase over an already-initialized shared model and
/// return its JSON report section (one `{...}` object). `obs` aggregates
/// this phase's stage histograms and traces into a caller-shared handle
/// (`None` gives the phase its own).
pub fn phase(
    pum: Arc<PredictiveUserModel>,
    opts: &FrontendPhaseOptions,
    obs: Option<Arc<sapphire_obs::Obs>>,
) -> String {
    let queue_wait_ms = if opts.queue_wait_ms > 0 {
        opts.queue_wait_ms
    } else {
        1_000
    };
    let workers = opts.workers.max(1);
    let server_config = ServerConfig {
        // The pool is the concurrency: at most one admitted call per
        // worker, so `max_in_flight == workers` means evented admission
        // grants immediately and the *reactor* queue is where sessions
        // wait — the architecture under test.
        max_in_flight: workers,
        max_queue_depth: workers * 4,
        queue_wait: Duration::from_millis(queue_wait_ms),
        max_sessions: opts.sessions + opts.hot_sessions + 16,
        ..ServerConfig::default()
    };
    let server = Arc::new(match obs {
        Some(obs) => SapphireServer::with_obs(pum, server_config, obs),
        None => SapphireServer::new(pum, server_config),
    });
    let fe = Arc::new(Frontend::new(
        server.clone(),
        FrontendConfig {
            workers,
            session_queue_depth: 64,
            shed_ready_threshold: None,
        },
    ));

    // Sampler: thread-count + RSS peaks over the whole phase, 5ms cadence.
    let sampler_stop = Arc::new(AtomicBool::new(false));
    let peaks = Arc::new((AtomicU64::new(0), AtomicU64::new(0)));
    let sampler = {
        let stop = sampler_stop.clone();
        let peaks = peaks.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let (threads, rss) = proc_status();
                peaks.0.fetch_max(threads, Ordering::Relaxed);
                peaks.1.fetch_max(rss, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    };

    // --- Think-time phase ------------------------------------------------
    eprintln!(
        "(frontend_load: {} sessions on {} workers, mean think {}ms, hold {}ms…)",
        opts.sessions, workers, opts.think_ms, opts.hold_ms
    );
    let ids: Vec<_> = (0..opts.sessions)
        .map(|i| {
            fe.open_session(&format!("fe-user-{i}"))
                .expect("session registry sized for the fleet")
        })
        .collect();
    let questions = Arc::new(appendix_b());
    let mut cursors: Vec<ScriptCursor> = (0..opts.sessions)
        .map(|i| ScriptCursor::new(questions.clone(), i))
        .collect();
    let mut rngs: Vec<StdRng> = (0..opts.sessions)
        .map(|i| StdRng::seed_from_u64(0xFE00 + i as u64))
        .collect();
    let (done_tx, done_rx) = mpsc::channel::<Done>();

    let started = Instant::now();
    let deadline = started + Duration::from_millis(opts.hold_ms);
    // Stagger first requests across one think interval so the fleet starts
    // as a Poisson process, not a thundering herd.
    let mut due: BinaryHeap<Reverse<(Instant, usize)>> = (0..opts.sessions)
        .map(|i| Reverse((started + think_time(&mut rngs[i], opts.think_ms), i)))
        .collect();
    let (mut qcm, mut qsm) = (ClassStats::default(), ClassStats::default());
    let mut instant_requests = 0u64;
    let mut instant_failures = 0u64;
    let mut outstanding = 0usize;
    loop {
        let now = Instant::now();
        let draining = now >= deadline;
        if draining {
            due.clear();
            if outstanding == 0 {
                break;
            }
        } else {
            while let Some(&Reverse((at, session))) = due.peek() {
                if at > now {
                    break;
                }
                due.pop();
                submit_scripted(&fe, ids[session], session, &mut cursors[session], &done_tx);
                outstanding += 1;
            }
        }
        let wait = due
            .peek()
            .map(|&Reverse((at, _))| at.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(5))
            .clamp(Duration::from_micros(100), Duration::from_millis(5));
        let first = match done_rx.recv_timeout(wait) {
            Ok(done) => Some(done),
            Err(mpsc::RecvTimeoutError::Timeout) => None,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                unreachable!("the driver holds a sender")
            }
        };
        for done in first.into_iter().chain(done_rx.try_iter()) {
            outstanding -= 1;
            match done.class {
                0 => qcm.record_outcome(done.latency_us, &done.outcome),
                1 => qsm.record_outcome(done.latency_us, &done.outcome),
                _ => {
                    instant_requests += 1;
                    instant_failures += u64::from(done.outcome.is_err());
                }
            }
            if Instant::now() < deadline {
                due.push(Reverse((
                    Instant::now() + think_time(&mut rngs[done.session], opts.think_ms),
                    done.session,
                )));
            }
        }
    }
    let think_wall = started.elapsed();
    let think_sampled = (qcm.latencies_us.len() + qsm.latencies_us.len()) as u64;
    let think_requests = think_sampled + instant_requests + qcm.rejected() + qsm.rejected();

    // --- Hot phase: closed loop through the same front-end ----------------
    eprintln!(
        "(frontend_load hot phase: {} closed-loop sessions x {} requests…)",
        opts.hot_sessions, opts.hot_rounds
    );
    let hot_terms: Arc<Vec<String>> = Arc::new(
        questions
            .iter()
            .take(8)
            .map(|q| {
                let keyword = q.script.rows[0].object.trim_start_matches('?');
                keyword.chars().take(4).collect()
            })
            .collect(),
    );
    // Steady-state thread accounting: every pool (front-end workers, the
    // shared executor, reactor) is warm by now — the think phase already
    // drove requests through the whole stack — so the hot loop must not
    // create a single thread. serve_check gates on these two samples
    // being equal.
    let (hot_threads_before, _) = proc_status();
    let (hot_tx, hot_rx) = mpsc::channel::<usize>();
    let hot_started = Instant::now();
    let hot_states: Vec<Arc<HotState>> = (0..opts.hot_sessions)
        .map(|i| {
            Arc::new(HotState {
                fe: Arc::downgrade(&fe),
                id: fe
                    .open_session(&format!("fe-hot-{i}"))
                    .expect("registry sized for the hot fleet"),
                session: i,
                terms: hot_terms.clone(),
                remaining: AtomicUsize::new(opts.hot_rounds),
                latencies: Mutex::new(Vec::new()),
                errors: AtomicUsize::new(0),
                done: hot_tx.clone(),
            })
        })
        .collect();
    for state in &hot_states {
        hot_next(state);
    }
    for _ in 0..opts.hot_sessions {
        hot_rx
            .recv_timeout(Duration::from_secs(120))
            .expect("hot sessions finish");
    }
    let hot_wall = hot_started.elapsed();
    let (hot_threads_after, _) = proc_status();
    let mut hot_latencies: Vec<u64> = Vec::new();
    let mut hot_errors = 0u64;
    for state in &hot_states {
        hot_latencies.extend(state.latencies.lock().unwrap().iter().copied());
        hot_errors += state.errors.load(Ordering::SeqCst) as u64;
    }
    hot_latencies.sort_unstable();
    let hot_requests = hot_latencies.len() as u64;
    let hot_p50 = hot_latencies
        .get(hot_latencies.len() / 2)
        .copied()
        .unwrap_or(0);

    // --- Close everything, drain, and account -----------------------------
    let all_ids: Vec<_> = ids
        .iter()
        .copied()
        .chain(hot_states.iter().map(|s| s.id))
        .collect();
    let closed = Arc::new(AtomicUsize::new(0));
    for id in &all_ids {
        let closed = closed.clone();
        fe.submit(
            *id,
            FrontRequest::Close,
            Box::new(move |r| {
                assert!(matches!(r, Ok(FrontResponse::Closed)));
                closed.fetch_add(1, Ordering::SeqCst);
            }),
        )
        .expect("close submissions accepted");
    }
    let close_deadline = Instant::now() + Duration::from_secs(60);
    while closed.load(Ordering::SeqCst) < all_ids.len() {
        assert!(Instant::now() < close_deadline, "close phase drained");
        std::thread::sleep(Duration::from_millis(1));
    }
    let final_backlog = fe.backlog();
    drop(hot_states);
    let frontend = Arc::try_unwrap(fe)
        .unwrap_or_else(|_| panic!("all front-end handles released"))
        .shutdown();
    sampler_stop.store(true, Ordering::Relaxed);
    sampler.join().expect("sampler never panics");

    let server_metrics = server.metrics();
    // Queue timeouts are NOT added separately: they arrive through the same
    // callbacks as every other outcome and are already inside the class
    // stats (think phase) and `hot_errors` (hot phase) — adding
    // `frontend.queue_timeouts` on top would double-count each one.
    let rejected_total = qcm.rejected() + qsm.rejected() + instant_failures + hot_errors;
    format!(
        "{{\"sessions\": {}, \"workers\": {}, \"think_ms\": {}, \"hold_seconds\": {:.3}, \
         \"submitted\": {}, \"completed\": {}, \"rejected_total\": {rejected_total}, \
         \"queue_timeouts\": {}, \"ticket_waits\": {}, \"immediate_grants\": {}, \
         \"think_requests\": {think_requests}, \"think_throughput_rps\": {:.1}, \
         \"hot_sessions\": {}, \"hot_requests\": {hot_requests}, \"hot_seconds\": {:.3}, \
         \"hot_throughput_rps\": {:.1}, \"hot_p50_us\": {hot_p50}, \
         \"hot_threads_before\": {hot_threads_before}, \
         \"hot_threads_after\": {hot_threads_after}, \
         \"threads_peak\": {}, \"rss_peak_kb\": {}, \"peak_ready\": {}, \
         \"final_backlog\": {final_backlog}, \"sessions_leaked\": {}, \
         \"qcm\": {}, \"qsm\": {}}}",
        opts.sessions,
        workers,
        opts.think_ms,
        think_wall.as_secs_f64(),
        frontend.submitted,
        frontend.completed,
        frontend.queue_timeouts,
        frontend.ticket_waits,
        frontend.immediate_grants,
        think_sampled as f64 / think_wall.as_secs_f64().max(1e-9),
        opts.hot_sessions,
        hot_wall.as_secs_f64(),
        hot_requests as f64 / hot_wall.as_secs_f64().max(1e-9),
        peaks.0.load(Ordering::Relaxed),
        peaks.1.load(Ordering::Relaxed),
        frontend.peak_ready,
        server_metrics.open_sessions,
        qcm.json(think_wall),
        qsm.json(think_wall),
    )
}

/// Standalone `frontend_load` run: build the dataset and shared model, run
/// the phase, and return the full JSON report.
pub fn run(opts: &FrontendPhaseOptions, scale: &str) -> String {
    let dataset = dataset_for(scale);
    eprintln!("(generating dataset + initializing shared model…)");
    let graph = generate(dataset);
    let triple_count = graph.len();
    let ep: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
        "dbpedia",
        graph,
        EndpointLimits::warehouse(),
    ));
    let pum = Arc::new(
        PredictiveUserModel::initialize(
            vec![ep],
            Lexicon::dbpedia_default(),
            experiment_config(),
            InitMode::Federated,
        )
        .expect("initialization"),
    );
    format!(
        "{{\n  \"benchmark\": \"frontend_load\",\n  \"config\": {{\"scale\": \"{scale}\", \
         \"triples\": {triple_count}}},\n  \"frontend\": {}\n}}",
        phase(pum, opts, None)
    )
}
