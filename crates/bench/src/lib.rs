//! # sapphire-bench
//!
//! Experiment harness for the Sapphire reproduction: report binaries that
//! regenerate every table and figure of the paper's evaluation (§7), plus
//! Criterion micro-benchmarks. See DESIGN.md's per-experiment index and
//! EXPERIMENTS.md for paper-vs-measured numbers.

pub mod cluster;
pub mod frontend;
pub mod overload;
pub mod serve;
pub mod wire;

use sapphire_core::SapphireConfig;
use sapphire_datagen::DatasetConfig;
use sapphire_rdf::{Graph, Term};

/// Parse the experiment scale from argv (`--scale tiny|small|medium|large`,
/// default `small`). An unrecognized name aborts the binary.
pub fn scale_from_args() -> DatasetConfig {
    let args: Vec<String> = std::env::args().collect();
    let scale = args
        .iter()
        .position(|a| a == "--scale")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("small")
        .to_string();
    dataset_for(&scale)
}

/// Dataset config by scale name, at the experiments' fixed seed (42).
///
/// # Panics
/// Panics on an unrecognized scale name. The bins deliberately hard-error
/// here: the old behaviour (silently degrading to `small`) produced reports
/// labelled with a scale they never ran.
pub fn dataset_for(scale: &str) -> DatasetConfig {
    DatasetConfig::for_scale(scale, 42).unwrap_or_else(|| {
        panic!(
            "unknown --scale {scale:?}; expected one of: {}",
            DatasetConfig::SCALE_NAMES.join(", ")
        )
    })
}

/// The Sapphire configuration used by the experiments (paper constants, with
/// a worker count matching the host).
pub fn experiment_config() -> SapphireConfig {
    SapphireConfig {
        processes: std::thread::available_parallelism()
            .map(usize::from)
            .unwrap_or(8)
            .min(8),
        ..SapphireConfig::default()
    }
}

/// Harvest all cacheable literals (language- and length-filtered) with their
/// significance scores directly from a graph.
///
/// This bypasses the initialization query pipeline; it is used only by
/// micro-benchmarks that need a large literal corpus without paying init
/// time. The *experiment* binaries (`init_cost`) use the real pipeline.
pub fn harvest_literals(graph: &Graph, language: &str, max_len: usize) -> Vec<(String, u64)> {
    use std::collections::HashMap;
    let mut scores: HashMap<String, u64> = HashMap::new();
    for (s, _p, o) in graph.iter_terms() {
        let Term::Literal(lit) = o else { continue };
        if lit.lang.as_deref() != Some(language) || lit.value.chars().count() >= max_len {
            continue;
        }
        let subject_id = graph.term_id(s).expect("subject interned");
        let significance = graph.in_degree(subject_id) as u64;
        let entry = scores.entry(lit.value.clone()).or_insert(0);
        *entry = (*entry).max(significance);
    }
    let mut out: Vec<(String, u64)> = scores.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Harvest predicate IRIs with literal counts from a graph (same shortcut).
pub fn harvest_predicates(graph: &Graph) -> Vec<(String, u64)> {
    use std::collections::HashMap;
    let mut counts: HashMap<String, u64> = HashMap::new();
    for (_s, p, o) in graph.iter_terms() {
        let c = counts.entry(p.lexical().to_string()).or_insert(0);
        if o.is_literal() {
            *c += 1;
        }
    }
    let mut out: Vec<(String, u64)> = counts.into_iter().collect();
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Render a labelled horizontal ASCII bar (the report binaries' "figures").
pub fn bar(label: &str, value: f64, max: f64, width: usize) -> String {
    let filled = if max > 0.0 {
        ((value / max) * width as f64).round() as usize
    } else {
        0
    };
    format!(
        "{label:<28} {:<width$} {value:>7.1}",
        "#".repeat(filled.min(width)),
        width = width
    )
}

/// A section header for report output.
pub fn heading(title: &str) -> String {
    format!("\n=== {title} ===\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapphire_datagen::generate;

    #[test]
    fn harvest_matches_init_filters() {
        let g = generate(DatasetConfig::tiny(7));
        let lits = harvest_literals(&g, "en", 80);
        assert!(!lits.is_empty());
        assert!(lits.iter().all(|(l, _)| l.chars().count() < 80));
        // Sorted by significance descending.
        for w in lits.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // French noise literals must be excluded.
        assert!(lits.iter().all(|(l, _)| !l.starts_with("Étranger")));
    }

    #[test]
    fn harvest_predicates_counts_literals() {
        let g = generate(DatasetConfig::tiny(7));
        let preds = harvest_predicates(&g);
        let name = preds.iter().find(|(p, _)| p.ends_with("/name")).unwrap();
        assert!(name.1 > 0);
    }

    #[test]
    fn dataset_for_resolves_every_scale() {
        for &name in DatasetConfig::SCALE_NAMES {
            let _ = dataset_for(name);
        }
    }

    #[test]
    #[should_panic(expected = "unknown --scale")]
    fn dataset_for_rejects_unknown_scales() {
        let _ = dataset_for("smal");
    }

    #[test]
    fn bar_rendering() {
        let b = bar("easy", 50.0, 100.0, 20);
        assert!(b.contains("##########"));
        assert!(bar("zero", 0.0, 0.0, 10).contains("0.0"));
    }
}
