//! Protocol-v2 (pipelined connection) properties: the correlation-id frame
//! header, version negotiation against both newer and older peers, and the
//! client's demux totality — out-of-order and orphaned replies must settle
//! every caller (right reply, or a typed error), never hang one.
//!
//! The demux tests drive a real `WireClient` against a hand-rolled raw
//! server so the test controls reply order and correlation ids exactly —
//! a real `WireServer` is free to reply in any order, which is the point
//! of pipelining but useless for pinning the demux edge cases.

use std::io::Read;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::{Gen, CASES};
use sapphire_core::qcm::{Completion, CompletionResult};
use sapphire_core::MatchSource;
use sapphire_server::{RunPayload, ServerError, ShardService};
use sapphire_sparql::{Query, QueryResult, SelectQuery, Solutions};
use sapphire_wire::codec::{
    decode_hello, decode_hello_ok, decode_request, encode_hello_ok, encode_reply, LoadHeader,
    WireReply, WireRequest,
};
use sapphire_wire::frame::{
    self, kind, FrameReader, MAX_FRAME, WIRE_VERSION, WIRE_VERSION_PIPELINED,
};
use sapphire_wire::{WireClient, WireClientConfig, WireServer, WireServerConfig};

// ---------------------------------------------------------- frame header --

#[test]
fn correlation_ids_round_trip_through_the_v2_header() {
    let mut g = Gen::new("wire::v2::corr_round_trip");
    for case in 0..CASES {
        g.start_case(case);
        let corr = g.bits();
        let payload: Vec<u8> = (0..g.below(64)).map(|_| g.below(256) as u8).collect();
        let mut buf = Vec::new();
        frame::write_frame_corr(&mut buf, kind::REPLY, corr, &payload).unwrap();
        let mut reader = FrameReader::new();
        reader.set_version(WIRE_VERSION_PIPELINED);
        let (k, got_corr, got_payload) = reader
            .read_frame_corr(&mut &buf[..], MAX_FRAME)
            .expect("v2 frame decodes");
        assert_eq!(k, kind::REPLY, "case {case}");
        assert_eq!(got_corr, corr, "case {case}");
        assert_eq!(got_payload, payload, "case {case}");
    }
}

#[test]
fn truncated_v2_frames_fail_typed_at_every_cut() {
    let mut buf = Vec::new();
    frame::write_frame_corr(&mut buf, kind::REQUEST, 0xAB54_A98C_EB1F_0AD2, &[9u8; 16]).unwrap();
    for cut in 0..buf.len() {
        let mut reader = FrameReader::new();
        reader.set_version(WIRE_VERSION_PIPELINED);
        let err = reader
            .read_frame_corr(&mut &buf[..cut], MAX_FRAME)
            .expect_err("truncated v2 frame decoded");
        match err {
            frame::WireError::Closed => assert_eq!(cut, 0),
            frame::WireError::ShortRead => assert!(cut > 0),
            other => panic!("cut {cut}: unexpected {other:?}"),
        }
    }
}

// ------------------------------------------------------------ negotiation --

#[test]
fn hello_ok_round_trips_and_keeps_the_v1_shape_for_v1_peers() {
    let mut g = Gen::new("wire::v2::hello_ok");
    for case in 0..CASES {
        g.start_case(case);
        let name: String = (0..g.below(12))
            .map(|_| (b'a' + g.below(26) as u8) as char)
            .collect();
        let k = g.below(1 << 16) as usize;
        let max_frame = g.below(u32::MAX as u64) as u32;
        let chosen = 1 + g.below(2) as u32; // 1 or 2
        let bytes = encode_hello_ok(&name, k, max_frame, chosen);
        let (got_name, got_k, got_max, got_chosen) =
            decode_hello_ok(&bytes).expect("hello_ok decodes");
        assert_eq!(got_name, name, "case {case}");
        assert_eq!(got_k, k, "case {case}");
        assert_eq!(got_max, max_frame, "case {case}");
        assert_eq!(got_chosen, chosen, "case {case}");
        // The v1 shape is exactly the legacy payload: a chosen version of 1
        // must add no trailing bytes (an old client's decoder rejects any).
        if chosen == 1 {
            assert_eq!(
                bytes,
                encode_hello_ok(&name, k, max_frame, 1),
                "case {case}: v1 shape is stable"
            );
            assert_eq!(
                bytes.len() + 4,
                encode_hello_ok(&name, k, max_frame, 2).len()
            );
        }
    }
}

/// A trivial shard for negotiation-matrix runs over real sockets.
struct EchoService;

impl ShardService for EchoService {
    fn shard_name(&self) -> String {
        "echo".to_string()
    }
    fn top_k(&self) -> usize {
        3
    }
    fn complete_top(
        &self,
        _tenant: &str,
        typed: &str,
        _k: usize,
    ) -> Result<CompletionResult, ServerError> {
        Ok(echo_completion(typed))
    }
    fn run_select_tiered(
        &self,
        _tenant: &str,
        _query: &SelectQuery,
        _tier: usize,
        _budget: Option<Duration>,
    ) -> Result<Arc<RunPayload>, ServerError> {
        Err(ServerError::Backend("echo has no model".to_string()))
    }
    fn execute_raw(&self, _tenant: &str, _query: &Query) -> Result<QueryResult, ServerError> {
        Ok(QueryResult::Solutions(Solutions {
            vars: Vec::new(),
            rows: Vec::new(),
        }))
    }
    fn admission_load(&self) -> (usize, usize) {
        (0, 0)
    }
    fn shed_pressure_tier(&self) -> usize {
        0
    }
}

fn echo_completion(typed: &str) -> CompletionResult {
    CompletionResult {
        suggestions: vec![Completion {
            text: typed.to_string(),
            predicate_iri: None,
            source: MatchSource::SuffixTree,
        }],
        tree_hit: true,
        tree_time: Duration::ZERO,
        bins_time: Duration::ZERO,
        residual_candidates: 0,
    }
}

fn expect_echo(client: &WireClient, term: &str) {
    match client.complete_top("t", term, 1) {
        Ok(c) => assert_eq!(c.suggestions[0].text, term),
        Err(e) => panic!("echo call failed: {e:?}"),
    }
}

#[test]
fn version_negotiation_matrix_interoperates_both_ways() {
    for (server_max, client_max, expect) in [
        (WIRE_VERSION_PIPELINED, WIRE_VERSION_PIPELINED, 2u32),
        // Old server (pinned v1) with a new client: negotiated down.
        (WIRE_VERSION, WIRE_VERSION_PIPELINED, 1),
        // Old client (pinned v1) with a new server: legacy shape answered.
        (WIRE_VERSION_PIPELINED, WIRE_VERSION, 1),
        (WIRE_VERSION, WIRE_VERSION, 1),
    ] {
        let server = WireServer::serve(
            Arc::new(EchoService),
            "127.0.0.1:0",
            WireServerConfig {
                max_version: server_max,
                ..WireServerConfig::default()
            },
        )
        .expect("bind");
        let client = WireClient::connect(
            server.local_addr(),
            WireClientConfig {
                max_version: client_max,
                ..WireClientConfig::default()
            },
        )
        .expect("handshake");
        assert_eq!(
            client.protocol_version(),
            expect,
            "server max {server_max} x client max {client_max}"
        );
        expect_echo(&client, "alpha");
        expect_echo(&client, "beta");
        assert_eq!(server.stats().corrupt_frames, 0);
        drop(client);
        server.shutdown();
    }
}

// ------------------------------------------------------------------ demux --

/// Accept one v2 connection, serve `requests` Complete calls with the
/// given reply schedule, then drain the socket until the client hangs up.
fn raw_v2_server(
    listener: TcpListener,
    requests: usize,
    schedule: impl FnOnce(Vec<(u64, String)>) -> Vec<(u64, String)> + Send + 'static,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let (mut s, _) = listener.accept().expect("accept");
        let mut reader = FrameReader::new();
        let (k, hello) = reader.read_frame(&mut s, MAX_FRAME).expect("hello frame");
        assert_eq!(k, kind::HELLO);
        let offered = decode_hello(&hello).expect("hello decodes");
        assert!(offered >= WIRE_VERSION_PIPELINED, "client offers v2");
        frame::write_frame(
            &mut s,
            kind::HELLO_OK,
            &encode_hello_ok("raw", 3, MAX_FRAME, WIRE_VERSION_PIPELINED),
        )
        .expect("hello_ok");
        reader.set_version(WIRE_VERSION_PIPELINED);
        let mut pending = Vec::new();
        while pending.len() < requests {
            let (k, corr, payload) = reader
                .read_frame_corr(&mut s, MAX_FRAME)
                .expect("request frame");
            assert_eq!(k, kind::REQUEST);
            let term = match decode_request(&payload).expect("request decodes") {
                WireRequest::Complete { term, .. } => term,
                other => panic!("expected Complete, got {other:?}"),
            };
            pending.push((corr, term));
        }
        for (corr, term) in schedule(pending) {
            let load = LoadHeader {
                in_flight: 0,
                queued: 0,
                pressure: 0,
            };
            let reply = encode_reply(load, &Ok(WireReply::Completion(echo_completion(&term))));
            frame::write_frame_corr(&mut s, kind::REPLY, corr, &reply).expect("reply");
        }
        // Hold the socket open until the client is done with it, so the
        // teardown never races the assertions.
        let mut sink = [0u8; 64];
        while matches!(s.read(&mut sink), Ok(n) if n > 0) {}
    })
}

#[test]
fn out_of_order_replies_reach_the_right_callers() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let server = raw_v2_server(listener, 2, |mut pending| {
        // Reply strictly in reverse arrival order: the demux must route by
        // correlation id, not arrival order.
        pending.reverse();
        pending
    });
    let client = Arc::new(WireClient::connect(addr, WireClientConfig::default()).expect("dial"));
    let callers: Vec<_> = ["alpha", "omega"]
        .into_iter()
        .map(|term| {
            let client = client.clone();
            std::thread::spawn(move || {
                expect_echo(&client, term);
            })
        })
        .collect();
    for c in callers {
        c.join().expect("caller settles with its own reply");
    }
    assert_eq!(client.transport_stats().corrupt_frames, 0);
    drop(client);
    server.join().unwrap();
}

#[test]
fn orphaned_correlation_ids_fail_typed_and_never_hang() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().unwrap();
    let server = raw_v2_server(listener, 1, |pending| {
        // Answer an id the client never issued. The waiting caller must
        // settle with a typed transport error — not its reply, and not a
        // hang until the 30s call deadline.
        pending
            .into_iter()
            .map(|(corr, term)| (corr + 7919, term))
            .collect()
    });
    let client = WireClient::connect(
        addr,
        WireClientConfig {
            call_timeout: Duration::from_secs(30),
            ..WireClientConfig::default()
        },
    )
    .expect("dial");
    let started = Instant::now();
    match client.complete_top("t", "alpha", 1) {
        Err(ServerError::Unreachable { .. }) => {}
        other => panic!("expected a typed transport failure, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "an orphaned reply must fail the call immediately, not wait out the deadline"
    );
    assert!(
        client.transport_stats().corrupt_frames >= 1,
        "the protocol violation is counted"
    );
    drop(client);
    server.join().unwrap();
}
