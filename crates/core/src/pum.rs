//! The Predictive User Model (§3, §6): the facade tying initialization, the
//! QCM, the QSM, and the federated query processor together.

use std::sync::Arc;

use sapphire_endpoint::{Endpoint, FederatedProcessor, FederationError};
use sapphire_sparql::{parse_select, SelectQuery, Solutions};
use sapphire_text::Lexicon;

use crate::cache::CachedData;
use crate::config::SapphireConfig;
use crate::init::{InitError, InitMode, InitStats, Initializer};
use crate::qcm::{CompletionResult, QueryCompletion};
use crate::qsm::{QsmOutput, QuerySuggestion};

/// Error from building or using the PUM.
#[derive(Debug)]
pub enum PumError {
    /// Initialization failed.
    Init(InitError),
    /// Query parsing failed.
    Parse(String),
    /// Execution failed at every endpoint.
    Execution(FederationError),
}

impl std::fmt::Display for PumError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PumError::Init(e) => write!(f, "initialization failed: {e}"),
            PumError::Parse(m) => write!(f, "query parse error: {m}"),
            PumError::Execution(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for PumError {}

/// The outcome of running a user query: its answers plus the QSM's
/// suggestions (produced "simultaneously" per §3 — here sequentially but with
/// both always present).
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The query's own answers (empty table if execution failed).
    pub answers: Solutions,
    /// True if the query executed successfully.
    pub executed: bool,
    /// QSM suggestions.
    pub suggestions: QsmOutput,
}

/// The Predictive User Model.
pub struct PredictiveUserModel {
    qcm: QueryCompletion,
    qsm: QuerySuggestion,
    fed: FederatedProcessor,
    init_stats: Vec<(String, InitStats)>,
    config: SapphireConfig,
}

impl PredictiveUserModel {
    /// Register endpoints and run §5 initialization on each, merging the
    /// caches (predicates and literals are pooled; the suffix tree is built
    /// over the merged significance ranking).
    pub fn initialize(
        endpoints: Vec<Arc<dyn Endpoint>>,
        lexicon: Lexicon,
        config: SapphireConfig,
        mode: InitMode,
    ) -> Result<Self, PumError> {
        let mut fed = FederatedProcessor::new();
        let mut predicates = Vec::new();
        let mut classes: Vec<crate::cache::CachedClass> = Vec::new();
        let mut literals: Vec<(String, u64)> = Vec::new();
        let mut init_stats = Vec::new();
        for ep in endpoints {
            let (cache, stats) = Initializer::new(ep.as_ref(), &config, mode)
                .run()
                .map_err(PumError::Init)?;
            init_stats.push((ep.name().to_string(), stats));
            for p in cache.predicates {
                if !predicates
                    .iter()
                    .any(|q: &crate::cache::CachedPredicate| q.iri == p.iri)
                {
                    predicates.push(p);
                }
            }
            for c in cache.classes {
                if !classes.iter().any(|k| k.iri == c.iri) {
                    classes.push(c);
                }
            }
            literals.extend(cache.significant.iter().cloned());
            for i in 0..cache.bins.len() as u32 {
                literals.push((cache.bins.literal(i).to_string(), 0));
            }
            fed.register(ep);
        }
        let cache =
            Arc::new(CachedData::assemble(predicates, literals, &config).with_classes(classes));
        Ok(Self::from_cache(cache, lexicon, fed, config, init_stats))
    }

    /// Build a PUM over one in-process graph — the shard-local construction
    /// path of a partitioned deployment.
    ///
    /// A cluster tier splits a dataset with
    /// [`sapphire_rdf::Partitioner`](sapphire_rdf::partition::Partitioner)
    /// and stands up one model per shard; each shard's PUM sees only its
    /// shard-local graph (data slice + replicated schema slice), wrapped in a
    /// [`LocalEndpoint`](sapphire_endpoint::LocalEndpoint) and taken through
    /// the same §5 initialization a single-box deployment runs. The caches
    /// it assembles are therefore shard-local too: literals live in exactly
    /// the shard that holds their subject's star.
    pub fn initialize_local(
        name: impl Into<String>,
        graph: sapphire_rdf::Graph,
        limits: sapphire_endpoint::EndpointLimits,
        lexicon: Lexicon,
        config: SapphireConfig,
        mode: InitMode,
    ) -> Result<Self, PumError> {
        let ep: Arc<dyn Endpoint> =
            Arc::new(sapphire_endpoint::LocalEndpoint::new(name, graph, limits));
        Self::initialize(vec![ep], lexicon, config, mode)
    }

    /// Build a PUM from an already-assembled cache (used by benches that
    /// construct caches directly).
    pub fn from_cache(
        cache: Arc<CachedData>,
        lexicon: Lexicon,
        fed: FederatedProcessor,
        config: SapphireConfig,
        init_stats: Vec<(String, InitStats)>,
    ) -> Self {
        PredictiveUserModel {
            qcm: QueryCompletion::new(cache.clone(), config.clone()),
            qsm: QuerySuggestion::new(cache, lexicon, config.clone()),
            fed,
            init_stats,
            config,
        }
    }

    /// The QCM.
    pub fn qcm(&self) -> &QueryCompletion {
        &self.qcm
    }

    /// The QSM.
    pub fn qsm(&self) -> &QuerySuggestion {
        &self.qsm
    }

    /// The federated query processor.
    pub fn federation(&self) -> &FederatedProcessor {
        &self.fed
    }

    /// The configuration in effect.
    pub fn config(&self) -> &SapphireConfig {
        &self.config
    }

    /// Per-endpoint initialization statistics.
    pub fn init_stats(&self) -> &[(String, InitStats)] {
        &self.init_stats
    }

    /// Auto-complete the term being typed (QCM, invoked per keystroke).
    pub fn complete(&self, term: &str) -> CompletionResult {
        self.qcm.complete(term)
    }

    /// Auto-complete with an explicit result budget — see
    /// [`QueryCompletion::complete_top`].
    pub fn complete_top(&self, term: &str, k: usize) -> CompletionResult {
        self.qcm.complete_top(term, k)
    }

    /// Execute a query and produce suggestions (the "Run" button).
    pub fn run(&self, query: &SelectQuery) -> RunOutcome {
        self.run_tiered(query, 0)
    }

    /// [`run`](Self::run) with the Steiner relaxation at budget `tier`
    /// (0 = full budget; higher tiers produce `degraded`-flagged
    /// suggestions — the serving layer's opt-in load shedding).
    pub fn run_tiered(&self, query: &SelectQuery, tier: usize) -> RunOutcome {
        let (answers, executed) = match self
            .fed
            .execute_parsed(&sapphire_sparql::Query::Select(query.clone()))
        {
            Ok(sapphire_sparql::QueryResult::Solutions(s)) => (s, true),
            _ => (Solutions::default(), false),
        };
        let suggestions = self.qsm.suggest_tiered(query, &self.fed, tier);
        RunOutcome {
            answers,
            executed,
            suggestions,
        }
    }

    /// Counter snapshot of the shared Steiner expansion cache
    /// ([`crate::qsm::NeighborhoodCache`]) — how many expansion round trips
    /// the model has executed vs. amortized across requests.
    pub fn relax_cache_stats(&self) -> crate::qsm::NeighborhoodStats {
        self.qsm.neighborhood().stats()
    }

    /// Counter snapshot of the memoized Algorithm-2 alternative-sweep caches
    /// (see [`crate::qsm::AlternativeFinder::alt_cache_stats`]).
    pub fn alt_cache_stats(&self) -> crate::qsm::AltCacheStats {
        self.qsm.finder().alt_cache_stats()
    }

    /// Install the serving tier's observability handle on the model's inner
    /// modules (write-once; later installs no-op). Instrumentation only —
    /// nothing recorded here ever feeds back into what the model computes.
    pub fn install_obs(&self, obs: Arc<sapphire_obs::Obs>) {
        self.qsm.install_obs(obs);
    }

    /// Parse and run a query string.
    pub fn run_str(&self, query: &str) -> Result<RunOutcome, PumError> {
        let q = parse_select(query).map_err(|e| PumError::Parse(e.to_string()))?;
        Ok(self.run(&q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapphire_endpoint::{EndpointLimits, LocalEndpoint};
    use sapphire_rdf::turtle;

    const DATA: &str = r#"
dbo:Person a owl:Class ; rdfs:subClassOf owl:Thing .
res:JFK a dbo:Person ; dbo:surname "Kennedy"@en ; dbo:name "John F. Kennedy"@en .
res:RFK a dbo:Person ; dbo:surname "Kennedy"@en ; dbo:name "Robert F. Kennedy"@en .
"#;

    fn pum() -> PredictiveUserModel {
        let ep: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
            "dbpedia",
            turtle::parse(DATA).unwrap(),
            EndpointLimits::warehouse(),
        ));
        PredictiveUserModel::initialize(
            vec![ep],
            Lexicon::dbpedia_default(),
            SapphireConfig::for_tests(),
            InitMode::Federated,
        )
        .unwrap()
    }

    #[test]
    fn end_to_end_initialize_complete_run() {
        let p = pum();
        assert_eq!(p.init_stats().len(), 1);
        // Typing "Kenn" completes to the cached literal.
        let completions = p.complete("Kenn");
        assert!(completions.suggestions.iter().any(|c| c.text == "Kennedy"));
        // Running the misspelled Figure-2 query yields a "Kennedy" rewrite.
        let out = p
            .run_str(r#"SELECT ?p WHERE { ?p dbo:surname "Kennedys"@en }"#)
            .unwrap();
        assert!(out.executed);
        assert!(out.answers.is_empty());
        assert!(out
            .suggestions
            .alternatives
            .iter()
            .any(|a| a.replacement == "Kennedy"));
        let alt = out
            .suggestions
            .alternatives
            .iter()
            .find(|a| a.replacement == "Kennedy")
            .unwrap();
        assert_eq!(alt.answer_count(), 2);
    }

    #[test]
    fn parse_errors_surface() {
        let p = pum();
        assert!(matches!(p.run_str("garbage"), Err(PumError::Parse(_))));
    }
}
