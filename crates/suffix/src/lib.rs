//! # sapphire-suffix
//!
//! Generalized suffix tree substrate for the Sapphire reproduction
//! (*Sapphire: Querying RDF Data Made Simple*, El-Roby et al., VLDB 2016).
//!
//! Sapphire's Query Completion Module answers "which cached strings contain
//! the substring the user has typed so far?" on every keystroke. The paper
//! (§5.2) chooses a suffix tree for this because lookup cost is
//! `O(|t| + z)` — independent of corpus size — at the price of a large
//! memory footprint, which is why only predicates and the *most significant
//! literals* are indexed. This crate implements that index with Ukkonen's
//! online construction.
//!
//! ```
//! use sapphire_suffix::SuffixTree;
//!
//! let tree = SuffixTree::build(["almaMater", "birthPlace", "spouse"]);
//! assert_eq!(tree.find_strings("Place", 10), vec!["birthPlace"]);
//! ```

#![warn(missing_docs)]

pub mod tree;

pub use tree::{StringId, SuffixTree};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The tree must agree exactly with a naive `str::contains` scan.
        #[test]
        fn matches_naive_scan(
            strings in proptest::collection::vec("[a-c]{0,8}", 1..12),
            pattern in "[a-c]{0,4}",
        ) {
            let tree = SuffixTree::build(strings.iter().cloned());
            let mut got = tree.find_containing(&pattern, usize::MAX);
            got.sort_unstable();
            let want: Vec<u32> = strings
                .iter()
                .enumerate()
                .filter(|(_, s)| s.contains(pattern.as_str()))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(got, want);
        }

        /// Every indexed string contains all of its own substrings.
        #[test]
        fn contains_own_substrings(s in "[a-z]{1,16}") {
            let tree = SuffixTree::build([s.clone()]);
            for start in 0..s.len() {
                for end in start + 1..=s.len() {
                    prop_assert!(tree.contains(&s[start..end]));
                }
            }
        }

        /// A limit of k never yields more than k results, and results are a
        /// subset of the unlimited result set.
        #[test]
        fn limit_is_respected(
            strings in proptest::collection::vec("[a-b]{0,6}", 1..20),
            pattern in "[a-b]{1,3}",
            k in 1usize..5,
        ) {
            let tree = SuffixTree::build(strings.iter().cloned());
            let capped = tree.find_containing(&pattern, k);
            let all = tree.find_containing(&pattern, usize::MAX);
            prop_assert!(capped.len() <= k);
            prop_assert!(capped.iter().all(|id| all.contains(id)));
        }
    }
}
