//! The sharded response cache.
//!
//! QCM and QSM answers over an immutable model are pure functions of the
//! request, so identical requests — the common case when many users type the
//! same prefixes — are served from a bounded LRU instead of re-searching the
//! suffix tree, re-scanning residual bins, or re-running SPARQL. Keys are
//! *normalized* request descriptions (lowercased trimmed completion terms,
//! canonical query renderings) so trivially different spellings of the same
//! request share an entry. Shard selection hashes the key; each shard is an
//! independently locked [`BoundedCache`], keeping contention proportional to
//! actual key collisions rather than global traffic.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

use sapphire_core::{BoundedCache, CacheStats};

/// Hash `key` onto one of `n` shards. Shared by every sharded map in this
/// crate (response caches, tenant budget meters) so shard selection can only
/// ever change in one place.
pub(crate) fn shard_index(key: &str, n: usize) -> usize {
    let mut hasher = DefaultHasher::new();
    key.hash(&mut hasher);
    (hasher.finish() as usize) % n
}

/// A sharded, bounded, counted LRU keyed by normalized request strings.
///
/// Values are stored behind [`Arc`], so a hit hands back a reference-counted
/// pointer instead of deep-cloning a potentially large payload (QSM run
/// results carry full answer sets) while the shard lock is held.
#[derive(Debug)]
pub struct ShardedResponseCache<V> {
    shards: Vec<Mutex<BoundedCache<String, Arc<V>>>>,
}

impl<V> ShardedResponseCache<V> {
    /// `shards` independent LRUs of `capacity_per_shard` entries each.
    pub fn new(shards: usize, capacity_per_shard: usize) -> Self {
        let shards = shards.clamp(1, 1024);
        ShardedResponseCache {
            shards: (0..shards)
                .map(|_| Mutex::new(BoundedCache::new(capacity_per_shard)))
                .collect(),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<BoundedCache<String, Arc<V>>> {
        &self.shards[shard_index(key, self.shards.len())]
    }

    /// Cached value for `key`, if present (counts a hit or miss).
    pub fn get(&self, key: &str) -> Option<Arc<V>> {
        self.shard(key).lock().unwrap().get(key).cloned()
    }

    /// Cached value for `key` without touching counters or recency (see
    /// [`sapphire_core::BoundedCache::peek`]).
    pub fn peek(&self, key: &str) -> Option<Arc<V>> {
        self.shard(key).lock().unwrap().peek(key).cloned()
    }

    /// Insert a response, handing back the shared pointer now holding it.
    pub fn insert(&self, key: String, value: V) -> Arc<V> {
        let value = Arc::new(value);
        self.shard(&key).lock().unwrap().insert(key, value.clone());
        value
    }

    /// Aggregated counters across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for shard in &self.shards {
            let s = shard.lock().unwrap().stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.evictions += s.evictions;
        }
        total
    }

    /// Total live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// True if every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Normalize a QCM completion term into a cache key.
///
/// The normalization itself lives in [`sapphire_core::completion_request_key`]
/// so the response cache and the single-flight [`Coalescer`](crate::coalesce)
/// can never disagree on what "the same request" means.
pub fn completion_key(term: &str) -> String {
    sapphire_core::completion_request_key(term)
}

/// Normalize a built query into a cache key
/// (see [`sapphire_core::run_request_key`]).
pub fn run_key(query: &impl std::fmt::Debug) -> String {
    sapphire_core::run_request_key(query)
}

/// Normalize a built query *and its QSM budget tier* into a cache key
/// (see [`sapphire_core::run_request_key_tier`]): tier 0 is the plain
/// [`run_key`], degraded tiers get distinct keys so a reduced-budget payload
/// can never be served to (or coalesced with) a full-budget request.
pub fn run_key_tier(query: &impl std::fmt::Debug, tier: usize) -> String {
    sapphire_core::run_request_key_tier(query, tier)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_insert_roundtrip_with_stats() {
        let cache: ShardedResponseCache<u32> = ShardedResponseCache::new(4, 8);
        assert_eq!(cache.get("a"), None);
        cache.insert("a".into(), 1);
        assert_eq!(cache.get("a").as_deref(), Some(&1));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn bounded_across_shards() {
        let cache: ShardedResponseCache<u32> = ShardedResponseCache::new(2, 4);
        for i in 0..1000 {
            cache.insert(format!("key-{i}"), i);
        }
        assert!(cache.len() <= 8, "2 shards x 4 entries");
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn completion_keys_normalize() {
        assert_eq!(completion_key("  Kennedy "), completion_key("Kennedy"));
        assert_ne!(completion_key("kennedy"), completion_key("kennedys"));
        // Case is load-bearing: the tree stage matches case-sensitively, so
        // "Kennedy" and "kennedy" are different requests — a shared key
        // would let one spelling's scan poison the other's cache entry.
        assert_ne!(completion_key("Kennedy"), completion_key("kennedy"));
    }
}
