//! Concurrency integration: many threads drive interleaved QCM/QSM traffic
//! against one shared `SapphireServer` — no deadlocks, per-session results
//! identical to a single-threaded reference run, and every load-shed request
//! rejected with a typed error.

use std::sync::Arc;

use sapphire_core::prelude::*;
use sapphire_core::InitMode;
use sapphire_server::{SapphireServer, ServerConfig, ServerError};

const THREADS: usize = 8;
const REQUESTS_PER_THREAD: usize = 50;

/// One distinct surname per thread, with `index + 1` people bearing it, so
/// every thread has its own unambiguous expected answer count.
const SURNAMES: [&str; THREADS] = [
    "Anderson",
    "Brockman",
    "Castillo",
    "Dunbar",
    "Eriksson",
    "Fitzgerald",
    "Grimaldi",
    "Hawthorne",
];

fn pum() -> Arc<PredictiveUserModel> {
    let mut turtle = String::new();
    for (t, surname) in SURNAMES.iter().enumerate() {
        for i in 0..=t {
            turtle.push_str(&format!(
                "res:P{t}_{i} a dbo:Person ; dbo:surname \"{surname}\"@en ; \
                 dbo:name \"Person {t} {i}\"@en .\n"
            ));
        }
    }
    let ep: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
        "dbpedia",
        sapphire_rdf::turtle::parse(&turtle).unwrap(),
        EndpointLimits::warehouse(),
    ));
    Arc::new(
        PredictiveUserModel::initialize(
            vec![ep],
            Lexicon::dbpedia_default(),
            SapphireConfig::for_tests(),
            InitMode::Federated,
        )
        .unwrap(),
    )
}

/// What one thread's request stream should observe, computed single-threaded.
#[derive(Debug, PartialEq)]
struct Expected {
    completion_texts: Vec<String>,
    answer_rows: usize,
}

fn reference_outputs(pum: &PredictiveUserModel, thread: usize) -> Expected {
    let surname = SURNAMES[thread];
    let completion_texts = {
        let prefix = &surname[..4];
        let mut texts: Vec<String> = pum
            .complete(prefix)
            .suggestions
            .into_iter()
            .map(|c| c.text)
            .collect();
        texts.sort();
        texts
    };
    let mut session = Session::new(pum);
    session.set_row(0, TripleInput::new("?who", "surname", surname));
    let result = session.run().unwrap();
    Expected {
        completion_texts,
        answer_rows: result.answers.total_rows(),
    }
}

#[test]
fn interleaved_sessions_are_deterministic_and_deadlock_free() {
    let pum = pum();
    let expected: Vec<Expected> = (0..THREADS).map(|t| reference_outputs(&pum, t)).collect();

    // Generous limits: nothing should be shed in this scenario.
    let config = ServerConfig {
        max_in_flight: THREADS,
        max_queue_depth: THREADS * REQUESTS_PER_THREAD,
        ..ServerConfig::for_tests()
    };
    let server = Arc::new(SapphireServer::new(pum, config));

    std::thread::scope(|scope| {
        for (t, expect) in expected.iter().enumerate() {
            let server = server.clone();
            scope.spawn(move || {
                let surname = SURNAMES[t];
                let session = server.open_session(&format!("tenant-{t}")).unwrap();
                let mut runs = 0;
                for i in 0..REQUESTS_PER_THREAD {
                    if i % 2 == 0 {
                        // QCM request: suggestions must match the reference
                        // (timings aside) on every single call.
                        let result = server.complete(session, &surname[..4]).unwrap();
                        let mut texts: Vec<String> =
                            result.suggestions.into_iter().map(|c| c.text).collect();
                        texts.sort();
                        assert_eq!(texts, expect.completion_texts, "thread {t} request {i}");
                    } else {
                        // QSM request: same rows every time, attempts count up.
                        server
                            .set_row(session, 0, TripleInput::new("?who", "surname", surname))
                            .unwrap();
                        let out = server.run(session).unwrap();
                        runs += 1;
                        assert!(out.executed);
                        assert_eq!(
                            out.answers.total_rows(),
                            expect.answer_rows,
                            "thread {t} request {i}"
                        );
                        assert_eq!(out.attempts, runs, "per-session attempt counter");
                    }
                }
                assert!(server.close_session(session));
            });
        }
    });

    let metrics = server.metrics();
    assert_eq!(
        metrics.completion_requests as usize,
        THREADS * REQUESTS_PER_THREAD / 2
    );
    assert_eq!(
        metrics.run_requests as usize,
        THREADS * REQUESTS_PER_THREAD / 2
    );
    assert_eq!(
        metrics.rejected_overloaded + metrics.rejected_queue_timeout + metrics.rejected_quota,
        0,
        "nothing shed under generous limits"
    );
    assert_eq!(metrics.open_sessions, 0, "all sessions closed");
    // Identical requests within a thread must have shared cached responses.
    assert!(metrics.completion_cache.hits > 0);
    assert!(metrics.run_cache.hits > 0);
}

#[test]
fn overloaded_server_sheds_with_typed_errors_only() {
    let config = ServerConfig {
        max_in_flight: 1,
        max_queue_depth: 1,
        queue_wait: std::time::Duration::from_millis(2),
        ..ServerConfig::for_tests()
    };
    let server = Arc::new(SapphireServer::new(pum(), config));

    let mut ok = 0usize;
    let mut shed = 0usize;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (t, surname) in SURNAMES.iter().enumerate() {
            let server = server.clone();
            handles.push(scope.spawn(move || {
                let session = server.open_session(&format!("tenant-{t}")).unwrap();
                let mut ok = 0usize;
                let mut shed = 0usize;
                for i in 0..REQUESTS_PER_THREAD {
                    match server.complete(session, &surname[..3 + (i % 3)]) {
                        Ok(_) => ok += 1,
                        Err(e) => {
                            assert!(
                                matches!(
                                    e,
                                    ServerError::Overloaded { .. }
                                        | ServerError::QueueTimeout { .. }
                                ),
                                "rejections must be typed back-pressure, got {e:?}"
                            );
                            assert!(e.is_rejection());
                            shed += 1;
                        }
                    }
                }
                (ok, shed)
            }));
        }
        for h in handles {
            let (o, s) = h.join().unwrap();
            ok += o;
            shed += s;
        }
    });

    assert_eq!(
        ok + shed,
        THREADS * REQUESTS_PER_THREAD,
        "every request accounted for"
    );
    assert!(ok > 0, "the admitted stream still makes progress");
    let metrics = server.metrics();
    assert_eq!(
        metrics.rejected_overloaded + metrics.rejected_queue_timeout,
        shed as u64,
        "metrics agree with observed rejections"
    );
}

#[test]
fn tenant_quota_rejections_are_deterministic_under_concurrency() {
    // Budget admits exactly 10 completions (cost 1 each) per tenant-window.
    let config = ServerConfig {
        tenant_window_budget: Some(10),
        completion_cost: 1,
        max_in_flight: THREADS,
        max_queue_depth: THREADS * REQUESTS_PER_THREAD,
        ..ServerConfig::for_tests()
    };
    let server = Arc::new(SapphireServer::new(pum(), config));

    std::thread::scope(|scope| {
        for (t, surname) in SURNAMES.iter().enumerate() {
            let server = server.clone();
            scope.spawn(move || {
                let session = server.open_session(&format!("tenant-{t}")).unwrap();
                let mut admitted = 0usize;
                for i in 0..REQUESTS_PER_THREAD {
                    match server.complete(session, &surname[..4]) {
                        Ok(_) => admitted += 1,
                        Err(ServerError::QuotaExhausted {
                            used,
                            budget,
                            tenant,
                        }) => {
                            assert_eq!(budget, 10);
                            assert_eq!(used, 11, "rejected request would have been the 11th unit");
                            assert_eq!(tenant, format!("tenant-{t}"));
                        }
                        Err(other) => panic!("unexpected error {other:?} on request {i}"),
                    }
                }
                assert_eq!(admitted, 10, "each tenant gets exactly its budget");
                assert_eq!(server.tenant_usage(&format!("tenant-{t}")), 10);
            });
        }
    });
    assert_eq!(
        server.metrics().rejected_quota as usize,
        THREADS * (REQUESTS_PER_THREAD - 10)
    );
}
