//! Materialized query results.

use std::fmt;

use sapphire_rdf::Term;

/// A materialized solution sequence: named columns over rows of optional
/// terms (a variable can be unbound in a row).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Solutions {
    /// Column names, in projection order (without `?`).
    pub vars: Vec<String>,
    /// Rows; each row has exactly `vars.len()` entries.
    pub rows: Vec<Vec<Option<Term>>>,
}

impl Solutions {
    /// An empty result with the given columns.
    pub fn empty(vars: Vec<String>) -> Self {
        Solutions {
            vars,
            rows: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by variable name.
    pub fn column(&self, var: &str) -> Option<usize> {
        self.vars.iter().position(|v| v == var)
    }

    /// The binding of `var` in row `row`.
    pub fn get(&self, row: usize, var: &str) -> Option<&Term> {
        let col = self.column(var)?;
        self.rows.get(row)?.get(col)?.as_ref()
    }

    /// Iterate over the bound values of one column.
    pub fn values<'a>(&'a self, var: &str) -> Box<dyn Iterator<Item = &'a Term> + 'a> {
        match self.column(var) {
            Some(col) => Box::new(self.rows.iter().filter_map(move |r| r[col].as_ref())),
            None => Box::new(std::iter::empty()),
        }
    }

    /// The single value of a one-row, one-column result (e.g. a COUNT).
    pub fn sole_value(&self) -> Option<&Term> {
        if self.rows.len() == 1 && self.vars.len() == 1 {
            self.rows[0][0].as_ref()
        } else {
            None
        }
    }

    /// Render as a fixed-width text table (used by examples and reports).
    pub fn to_table(&self) -> String {
        let mut widths: Vec<usize> = self.vars.iter().map(|v| v.len() + 1).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|t| t.as_ref().map(|t| t.to_string()).unwrap_or_default())
                    .collect()
            })
            .collect();
        for row in &cells {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (i, v) in self.vars.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", format!("?{v}"), width = widths[i]));
        }
        out.push('\n');
        for (i, _) in self.vars.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &cells {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Solutions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_table())
    }
}

/// The result of evaluating a [`crate::ast::Query`].
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResult {
    /// SELECT results.
    Solutions(Solutions),
    /// ASK result.
    Boolean(bool),
}

impl QueryResult {
    /// The solutions, if this is a SELECT result.
    pub fn solutions(&self) -> Option<&Solutions> {
        match self {
            QueryResult::Solutions(s) => Some(s),
            QueryResult::Boolean(_) => None,
        }
    }

    /// Consume into solutions, if SELECT.
    pub fn into_solutions(self) -> Option<Solutions> {
        match self {
            QueryResult::Solutions(s) => Some(s),
            QueryResult::Boolean(_) => None,
        }
    }

    /// The boolean, if this is an ASK result.
    pub fn boolean(&self) -> Option<bool> {
        match self {
            QueryResult::Boolean(b) => Some(*b),
            QueryResult::Solutions(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Solutions {
        Solutions {
            vars: vec!["s".into(), "o".into()],
            rows: vec![
                vec![Some(Term::iri("http://x/a")), Some(Term::en("Alpha"))],
                vec![Some(Term::iri("http://x/b")), None],
            ],
        }
    }

    #[test]
    fn accessors() {
        let s = sample();
        assert_eq!(s.len(), 2);
        assert_eq!(s.column("o"), Some(1));
        assert_eq!(s.get(0, "o"), Some(&Term::en("Alpha")));
        assert_eq!(s.get(1, "o"), None);
        assert_eq!(s.get(0, "missing"), None);
        assert_eq!(s.values("s").count(), 2);
        assert_eq!(s.values("o").count(), 1);
    }

    #[test]
    fn sole_value_requires_1x1() {
        let s = sample();
        assert!(s.sole_value().is_none());
        let one = Solutions {
            vars: vec!["c".into()],
            rows: vec![vec![Some(Term::literal("42"))]],
        };
        assert_eq!(one.sole_value(), Some(&Term::literal("42")));
    }

    #[test]
    fn table_rendering_contains_headers() {
        let t = sample().to_table();
        assert!(t.contains("?s"));
        assert!(t.contains("Alpha"));
    }
}
