//! The edge router: scatter-gather over shard replicas with load-aware,
//! hedged, typed-retry routing.
//!
//! A [`ClusterRouter`] is the tier users talk to. For every request it
//! *scatters* a stateless shard request to each shard (picking the replica
//! with the lowest [`admission_load`](sapphire_server::SapphireServer::admission_load)),
//! *gathers* the per-shard answers, and *merges* them with the deterministic
//! score-then-key merges of [`crate::merge`] — so the cluster's answers are a
//! pure function of the data, never of replica timing. The routing policy
//! around each shard call:
//!
//! * **Load-aware replica choice** — replicas are tried in ascending
//!   admission-load order, so a saturated replica is naturally deprioritized
//!   whenever a healthier sibling exists.
//! * **Hedging** — if the chosen replica has not answered within the hedge
//!   budget, the same request is fired at the next replica and the first
//!   reply wins ([`ClusterMetrics::hedges_fired`]/[`hedges_won`](ClusterMetrics::hedges_won)).
//! * **Typed bounded retry** — typed back-pressure rejections
//!   ([`ServerError::Overloaded`]/[`ServerError::QueueTimeout`]) fail over to
//!   the next replica under the shared [`Backoff`] policy (honoring the
//!   rejection's retry-after hint); anything else is a real error and
//!   surfaces immediately. Only when every attempt is shed does the router
//!   give up, with [`ClusterError::ShardUnavailable`].
//!
//! The edge is itself a serving tier: QCM/QSM responses are memoized in
//! sharded response caches and identical in-flight requests are
//! single-flighted with the same [`Coalescer`] the servers use, keyed by the
//! same normalized request keys — so coalescing composes across tiers
//! exactly as the PR-2 design intended.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use sapphire_core::exec;
use sapphire_core::qcm::{Completion, CompletionResult};
use sapphire_core::qsm::{AlteredPosition, StructureSuggestion, TermAlternative};
use sapphire_core::{
    completion_request_key, run_request_key, run_request_key_tier, CacheStats, SteinerConfig,
};
use sapphire_endpoint::{
    query_fingerprint, Backoff, EndpointError, Jitter, QueryService, ServiceEndpoint, ServiceError,
};
use sapphire_obs::{trace, MetricsHub, Obs, RequestMark, Stage, TraceScope};
use sapphire_server::coalesce::Join;
use sapphire_server::response_cache::ShardedResponseCache;
use sapphire_server::{Coalescer, ServerError, ShardService, TransportStats};
use sapphire_sparql::{Projection, Query, QueryResult, SelectQuery, Solutions, TermPattern};

use crate::merge::{
    count_rows, count_shape, dedup_alternatives, merge_bindings, merge_completions,
    sort_alternatives,
};
use crate::topology::Cluster;

/// Tuning knobs of a [`ClusterRouter`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Router name (reported through the [`QueryService`] surface).
    pub name: String,
    /// Fire the same request at a second replica when the first has not
    /// answered within this budget; `None` disables hedging.
    pub hedge_after: Option<Duration>,
    /// Hedged secondary calls allowed to be in flight at once, router-wide.
    /// Every losing hedge keeps running until its scan completes — pinning
    /// one admission slot on its replica the whole time — so without a cap
    /// a sustained storm of slow primaries accumulates losers without
    /// bound. At the cap, further hedges are *suppressed* (counted in
    /// [`ClusterMetrics::hedges_suppressed`]) and the call simply waits for
    /// its primary. `0` suppresses every hedge (hedging stays configured
    /// but never fires — useful to quantify it).
    pub max_inflight_hedges: usize,
    /// Retry policy for typed back-pressure rejections; each retry fails
    /// over to the next replica in load order.
    pub backoff: Backoff,
    /// Edge response-cache shards.
    pub cache_shards: usize,
    /// LRU capacity per edge response-cache shard.
    pub cache_capacity_per_shard: usize,
    /// Per-key waiter cap of the edge coalescers (`0` disables edge
    /// single-flight).
    pub coalesce_waiters_per_key: usize,
    /// How many completions to fetch *per shard* before the edge merge cuts
    /// the global top-k. Shard-local significance ranks cannot drive the
    /// global cut (they are computed from shard-local in-degrees), so the
    /// edge must over-fetch: `0` means unbounded — every shard-local match
    /// travels and the merged top-k is exact. Set a finite depth to trade
    /// exactness at the tail for bandwidth on huge corpora.
    pub completion_fetch: usize,
    /// Per-tenant work budget per accounting window at the *edge* tier
    /// (`None` = unlimited). Shard-side budgets alone cannot meter cluster
    /// traffic: an edge cache hit or coalesced follower never reaches a
    /// shard, so without an edge meter a quota-exhausted tenant could
    /// replay any cached request for free. Charged per request, before the
    /// edge caches — the same request-denominated posture the shards take.
    pub tenant_window_budget: Option<u64>,
    /// Edge work units charged per QCM completion request.
    pub completion_cost: u64,
    /// Edge work units charged per run/raw request, plus
    /// [`run_per_pattern_cost`](Self::run_per_pattern_cost) per pattern.
    pub run_base_cost: u64,
    /// Extra edge work units per triple pattern in a run/raw request.
    pub run_per_pattern_cost: u64,
    /// Router-driven degradation: when set, the edge *requests* a QSM shed
    /// tier from shards (chosen from shard queue pressure and the remaining
    /// deadline budget) and propagates the remaining budget on every run
    /// scatter hop. `None` (the default) keeps the PR-5 posture: shards may
    /// still shed locally behind their own
    /// [`qsm_shed_budget`](sapphire_server::ServerConfig::qsm_shed_budget)
    /// opt-in, but the edge never asks for degradation and never caches a
    /// degraded merge.
    pub degrade: Option<DegradePolicy>,
}

/// When and how hard the edge requests QSM degradation from shards — the
/// cluster-wide half of the shed ladder
/// ([`SteinerConfig::shed_budgets`]).
///
/// The edge picks the requested tier *before* any cache or coalescer
/// lookup, from two signals, and takes the deeper of the two (clamped to
/// [`SteinerConfig::MAX_TIER`]):
///
/// * **Queue pressure** — for each shard, the pressure tier of its
///   *least-loaded* replica (the one load-aware routing will pick; see
///   [`SapphireServer::shed_pressure_tier`](sapphire_server::SapphireServer::shed_pressure_tier)), maxed across shards: a
///   scatter is only as healthy as its most backed-up shard.
/// * **Remaining deadline** — with more than half of
///   [`deadline`](Self::deadline) left the deadline argues for tier 0, above a
///   quarter tier 1, below that tier 2: a request that has already burned
///   most of its budget should not commission full-depth relaxation work
///   nobody will wait for.
///
/// The requested tier keys the edge cache and coalescer
/// ([`sapphire_core::run_request_key_tier`]), so tier-0 and tier-N
/// requests can never exchange payloads, and shards honor the request
/// through the same tier-keyed discipline
/// ([`SapphireServer::run_select_tiered`](sapphire_server::SapphireServer::run_select_tiered)).
#[derive(Debug, Clone)]
pub struct DegradePolicy {
    /// Per-request deadline budget at the edge. The *remaining* budget is
    /// recomputed before each run scatter hop and propagated to shards,
    /// where it caps admission-queue waits and stops the retry loop — a
    /// hop with no budget left fails fast and typed instead of queueing.
    pub deadline: Duration,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy {
            deadline: Duration::from_millis(250),
        }
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            name: "sapphire-cluster".to_string(),
            hedge_after: Some(Duration::from_millis(50)),
            max_inflight_hedges: 32,
            backoff: Backoff::default(),
            cache_shards: 16,
            cache_capacity_per_shard: 4096,
            coalesce_waiters_per_key: 1024,
            completion_fetch: 0,
            tenant_window_budget: None,
            completion_cost: 1,
            run_base_cost: 4,
            run_per_pattern_cost: 4,
            degrade: None,
        }
    }
}

impl ClusterConfig {
    /// A small configuration for unit tests.
    pub fn for_tests() -> Self {
        ClusterConfig {
            cache_shards: 4,
            cache_capacity_per_shard: 64,
            ..Self::default()
        }
    }
}

/// Typed failures of the cluster tier.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// Every replica of `shard` shed the request, through every retry of the
    /// backoff budget — the shard is saturated, not broken.
    ShardUnavailable {
        /// The saturated shard.
        shard: usize,
        /// The last typed rejection observed.
        last: ServerError,
    },
    /// A shard failed with a non-retryable error.
    Shard {
        /// The failing shard.
        shard: usize,
        /// Its typed error.
        error: ServerError,
    },
    /// A cross-shard federated plan (bound join over every shard) failed;
    /// no single shard can be blamed, but the typed error is preserved.
    CrossShard {
        /// The typed failure of the federated plan.
        error: ServerError,
    },
    /// The edge itself rejected the request before consulting any shard
    /// (per-tenant budget exhausted at the edge tier).
    EdgeRejected(ServerError),
    /// The query shape cannot be merged exactly from shard answers (e.g.
    /// GROUP BY over a pattern spanning shards).
    Unsupported(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::ShardUnavailable { shard, last } => {
                write!(f, "shard {shard} unavailable after retries: {last}")
            }
            ClusterError::Shard { shard, error } => write!(f, "shard {shard} failed: {error}"),
            ClusterError::CrossShard { error } => {
                write!(f, "cross-shard federated plan failed: {error}")
            }
            ClusterError::EdgeRejected(error) => write!(f, "edge rejected: {error}"),
            ClusterError::Unsupported(m) => write!(f, "unsupported cluster query: {m}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl ClusterError {
    /// True for back-pressure outcomes a client may retry later.
    pub fn is_rejection(&self) -> bool {
        match self {
            ClusterError::ShardUnavailable { .. } => true,
            ClusterError::Shard { error, .. } | ClusterError::CrossShard { error } => {
                error.is_rejection()
            }
            ClusterError::EdgeRejected(error) => error.is_rejection(),
            ClusterError::Unsupported(_) => false,
        }
    }

    fn into_service_error(self) -> ServiceError {
        match self {
            ClusterError::ShardUnavailable { last, .. } => last.into_service_error(),
            ClusterError::Shard { error, .. }
            | ClusterError::CrossShard { error }
            | ClusterError::EdgeRejected(error) => error.into_service_error(),
            ClusterError::Unsupported(m) => {
                ServiceError::Backend(EndpointError::Eval(format!("unsupported: {m}")))
            }
        }
    }
}

/// A cluster QCM answer.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterCompletion {
    /// The merged top-k suggestions, in canonical order.
    pub suggestions: Vec<Completion>,
    /// Shard answer lists merged for this payload (1 for targeted routing).
    pub merge_depth: usize,
    /// True if this request was served without its own scatter (edge cache
    /// hit or edge single-flight follower).
    pub cached: bool,
}

/// A cluster QSM run answer: a shared pointer to the merged payload plus
/// this request's own `cached` flag. [`Deref`](std::ops::Deref)s to the
/// payload, so `run.answers` etc. read naturally; an edge cache hit is a
/// pointer bump, never a deep copy of answer sets — the same discipline the
/// shard tier's `QueryRun` follows.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// True if this request was served without its own scatter (edge cache
    /// hit or edge single-flight follower).
    pub cached: bool,
    /// The merged payload, shared with the edge cache.
    pub payload: Arc<ClusterRunPayload>,
}

impl std::ops::Deref for ClusterRun {
    type Target = ClusterRunPayload;

    fn deref(&self) -> &ClusterRunPayload {
        &self.payload
    }
}

/// The merged, cacheable part of a cluster run (everything but the
/// per-request `cached` flag).
#[derive(Debug)]
pub struct ClusterRunPayload {
    /// The merged answers, in canonical order, with the query's slice
    /// applied at the edge.
    pub answers: Solutions,
    /// True if every shard executed the query.
    pub executed: bool,
    /// Merged "did you mean" rewrites, each with its *cluster-wide*
    /// prefetched answers.
    pub alternatives: Vec<TermAlternative>,
    /// Merged structure relaxations (shard-local Steiner searches; see the
    /// crate docs for the cross-shard caveat), prefetched cluster-wide.
    pub relaxations: Vec<StructureSuggestion>,
    /// The highest QSM budget tier any consulted shard ran at (0 = every
    /// shard relaxed at the full budget).
    pub tier: usize,
    /// True when any shard produced its suggestions at a reduced budget
    /// ([`tier`](Self::tier) > 0). Such a merge is cached only under the
    /// tier the edge requested, and never when a shard shed *deeper* than
    /// requested (see `cache_run`) — so it can never be served to a
    /// full-budget request.
    pub degraded: bool,
}

fn run_from(payload: Arc<ClusterRunPayload>, cached: bool) -> ClusterRun {
    ClusterRun { cached, payload }
}

/// What the edge completion cache stores.
#[derive(Debug)]
struct MergedCompletion {
    suggestions: Vec<Completion>,
    merge_depth: usize,
}

impl MergedCompletion {
    fn to_completion(&self, cached: bool) -> ClusterCompletion {
        ClusterCompletion {
            suggestions: self.suggestions.clone(),
            merge_depth: self.merge_depth,
            cached,
        }
    }
}

/// Point-in-time router observability snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterMetrics {
    /// Shard calls issued, per shard (scatter fan-out plus targeted calls,
    /// retries and hedges included).
    pub fanout_per_shard: Vec<u64>,
    /// Hedge requests fired (primary exceeded the hedge budget).
    pub hedges_fired: u64,
    /// Hedge requests whose reply won the race.
    pub hedges_won: u64,
    /// Hedges *not* fired because the in-flight hedge cap
    /// ([`ClusterConfig::max_inflight_hedges`]) was reached — the slow
    /// primary was simply waited for instead.
    pub hedges_suppressed: u64,
    /// Replica attempts that were shed typed and retried on another replica.
    pub replica_retries: u64,
    /// Requests that stayed rejected after the whole retry budget.
    pub rejected_after_retry: u64,
    /// Merges performed.
    pub merges: u64,
    /// Maximum shard answer lists merged in one request.
    pub merge_depth_max: u64,
    /// Edge QCM response-cache counters.
    pub completion_cache: CacheStats,
    /// Edge QSM response-cache counters.
    pub run_cache: CacheStats,
    /// Requests served by another edge request's in-flight scatter.
    pub edge_coalesced_hits: u64,
    /// Scatters executed as edge single-flight leaders.
    pub edge_coalesce_leaders: u64,
    /// Merged run payloads in which at least one shard relaxed at a reduced
    /// QSM budget tier — 0 unless the shard servers opted into
    /// [`ServerConfig::qsm_shed_budget`](sapphire_server::ServerConfig::qsm_shed_budget)
    /// or the edge runs a [`DegradePolicy`] and requested a tier itself.
    pub degraded_runs: u64,
    /// Degraded merges by the deepest tier observed in the merge; index 0
    /// is always 0 (a tier-0 merge is never degraded) and the length is
    /// `SteinerConfig::MAX_TIER + 1`. Sums to
    /// [`degraded_runs`](Self::degraded_runs).
    pub degraded_by_tier: Vec<u64>,
    /// Wire-transport connections established, summed over every replica
    /// client (0 when the router routes over in-process replicas).
    pub wire_connects: u64,
    /// Wire connections re-established after an IO failure broke the
    /// previous one.
    pub wire_reconnects: u64,
    /// Replica calls that failed on the transport and surfaced as the
    /// retryable [`ServerError::Unreachable`].
    pub wire_io_errors: u64,
    /// Frames the codec rejected (bad magic, oversized, bad tag) — protocol
    /// violations, never retried, never silently skipped.
    pub wire_corrupt_frames: u64,
}

#[derive(Debug)]
struct Counters {
    fanout: Vec<AtomicU64>,
    hedges_fired: AtomicU64,
    hedges_won: AtomicU64,
    hedges_suppressed: AtomicU64,
    /// Gauge of hedged secondary calls currently running (each pins one
    /// admission slot on its replica until its scan completes). Shared
    /// (`Arc`) because the hedge thread itself decrements it when the scan
    /// finishes, win or lose.
    hedges_in_flight: Arc<AtomicU64>,
    /// Seed sequence for per-call retry jitter.
    jitter_seq: AtomicU64,
    replica_retries: AtomicU64,
    rejected_after_retry: AtomicU64,
    merges: AtomicU64,
    merge_depth_max: AtomicU64,
    edge_coalesced_hits: AtomicU64,
    edge_coalesce_leaders: AtomicU64,
    degraded_runs: AtomicU64,
    degraded_by_tier: Vec<AtomicU64>,
}

impl Counters {
    fn new(shards: usize) -> Self {
        Counters {
            fanout: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            hedges_fired: AtomicU64::new(0),
            hedges_won: AtomicU64::new(0),
            hedges_suppressed: AtomicU64::new(0),
            hedges_in_flight: Arc::new(AtomicU64::new(0)),
            jitter_seq: AtomicU64::new(0),
            replica_retries: AtomicU64::new(0),
            rejected_after_retry: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            merge_depth_max: AtomicU64::new(0),
            edge_coalesced_hits: AtomicU64::new(0),
            edge_coalesce_leaders: AtomicU64::new(0),
            degraded_runs: AtomicU64::new(0),
            degraded_by_tier: (0..=SteinerConfig::MAX_TIER)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    fn record_merge(&self, depth: usize) {
        self.merges.fetch_add(1, Ordering::Relaxed);
        self.merge_depth_max
            .fetch_max(depth as u64, Ordering::Relaxed);
    }
}

/// The stateless request one shard replica serves. Cloneable so hedged
/// calls can hand an owned copy to a second replica's thread.
#[derive(Debug, Clone)]
enum ShardRequest {
    Complete {
        tenant: String,
        term: String,
        fetch: usize,
    },
    Run {
        tenant: String,
        query: SelectQuery,
        /// The QSM shed tier the edge requests (0 = full budget). A shard
        /// may deepen it under its own pressure, never shallow it.
        tier: usize,
        /// Remaining per-request deadline budget, when the edge runs a
        /// [`DegradePolicy`]: caps the shard's admission-queue wait and
        /// this call's retry loop.
        budget: Option<Duration>,
    },
    Raw {
        tenant: String,
        query: Query,
    },
}

/// The deadline budget a request carries, if any — read by the retry loop.
fn request_budget(req: &ShardRequest) -> Option<Duration> {
    match req {
        ShardRequest::Run { budget, .. } => *budget,
        _ => None,
    }
}

enum ShardReply {
    Completion(CompletionResult),
    Run(Arc<sapphire_server::RunPayload>),
    Raw(QueryResult),
}

fn call_replica(replica: &dyn ShardService, req: &ShardRequest) -> Result<ShardReply, ServerError> {
    match req {
        ShardRequest::Complete {
            tenant,
            term,
            fetch,
        } => replica
            .complete_top(tenant, term, *fetch)
            .map(ShardReply::Completion),
        ShardRequest::Run {
            tenant,
            query,
            tier,
            budget,
        } => replica
            .run_select_tiered(tenant, query, *tier, *budget)
            .map(ShardReply::Run),
        ShardRequest::Raw { tenant, query } => {
            replica.execute_raw(tenant, query).map(ShardReply::Raw)
        }
    }
}

/// True when a failure is scoped to the *requesting tenant* (a quota
/// rejection): an edge single-flight leader failing this way must not take
/// its followers down with it — their tenants may have plenty of budget
/// left, so they fall back to their own scatter instead.
fn tenant_scoped(e: &ClusterError) -> bool {
    matches!(
        e,
        ClusterError::Shard {
            error: ServerError::QuotaExhausted { .. },
            ..
        } | ClusterError::ShardUnavailable {
            last: ServerError::QuotaExhausted { .. },
            ..
        } | ClusterError::CrossShard {
            error: ServerError::QuotaExhausted { .. },
        } | ClusterError::EdgeRejected(ServerError::QuotaExhausted { .. })
    )
}

/// Typed back-pressure worth failing over: the replica is busy *now*; a
/// sibling (or a later retry) may not be. Transport failures
/// ([`ServerError::Unreachable`]) join the list with the wire boundary:
/// shard requests are stateless and idempotent, so a dead link is exactly
/// the case replica failover exists for. Work-budget timeouts and quota
/// rejections are deterministic for the same request and tenant, so
/// retrying them elsewhere just doubles the damage.
fn is_retryable(e: &ServerError) -> bool {
    matches!(
        e,
        ServerError::Overloaded { .. }
            | ServerError::QueueTimeout { .. }
            | ServerError::Unreachable { .. }
    )
}

/// The retry-after view of a server rejection (via the endpoint-level hint).
fn as_endpoint_error(e: &ServerError) -> EndpointError {
    EndpointError::from(e.clone().into_service_error())
}

/// One shard's replica set behind a [`QueryService`] face, for the
/// federated bound-join path: every raw query it receives is routed to the
/// least-loaded replica *at that moment*, with the router's typed bounded
/// retry on back-pressure and transport failures. Without this, the bound
/// join would pin one replica for the whole plan — and a replica dying
/// mid-plan (the exact drill `serve_check` gates) would fail the query even
/// though a healthy sibling holds the same shard.
struct ShardFanout {
    name: String,
    replicas: Vec<Arc<dyn ShardService>>,
    backoff: Backoff,
    jitter_seq: AtomicU64,
}

impl QueryService for ShardFanout {
    fn service_name(&self) -> &str {
        &self.name
    }

    fn execute_query(&self, tenant: &str, query: &Query) -> Result<QueryResult, ServiceError> {
        let mut order: Vec<usize> = (0..self.replicas.len()).collect();
        order.sort_by_key(|&i| {
            let (in_flight, queued) = self.replicas[i].admission_load();
            (in_flight + queued, i)
        });
        let mut jitter = Jitter::new(self.jitter_seq.fetch_add(1, Ordering::Relaxed));
        let mut attempt: u32 = 0;
        loop {
            let replica = &self.replicas[order[attempt as usize % order.len()]];
            match replica.execute_raw(tenant, query) {
                Ok(result) => return Ok(result),
                Err(e) if is_retryable(&e) && attempt < self.backoff.max_retries => {
                    std::thread::sleep(
                        self.backoff
                            .jittered_wait(&as_endpoint_error(&e), &mut jitter),
                    );
                    attempt += 1;
                }
                Err(e) => return Err(e.into_service_error()),
            }
        }
    }
}

/// True when every triple pattern shares one subject: the whole query is a
/// subject star, co-located by the subject-hash partitioner, so a per-shard
/// evaluation plus a union merge is exact.
fn single_subject(query: &SelectQuery) -> bool {
    let mut subjects = query.pattern.triples.iter().map(|t| &t.subject);
    match subjects.next() {
        None => false,
        Some(first) => subjects.all(|s| s == first),
    }
}

/// The query's pattern as a star-projected, slice-free SELECT: what the
/// router actually scatters, so shards return *full bindings* and the edge
/// merge can deduplicate schema-slice replicas before projecting.
fn star_pattern_query(query: &SelectQuery) -> SelectQuery {
    SelectQuery {
        distinct: false,
        projection: Projection::Star,
        pattern: query.pattern.clone(),
        group_by: Vec::new(),
        order_by: Vec::new(),
        limit: None,
        offset: None,
    }
}

/// The home shard of a query whose patterns share one *ground* subject —
/// the one case where scattering is pure waste and the router can route to
/// a single shard.
fn ground_subject_shard(query: &SelectQuery, shards: usize) -> Option<usize> {
    if !single_subject(query) {
        return None;
    }
    match &query.pattern.triples.first()?.subject {
        TermPattern::Term(t) => Some(sapphire_rdf::shard_of(t, shards)),
        TermPattern::Var(_) => None,
    }
}

/// The sharded multi-tier edge router. See the module docs.
pub struct ClusterRouter {
    /// What the router actually routes over: one [`ShardService`] per
    /// replica per shard. In-process replicas and wire clients mix freely
    /// (though a deployment normally picks one).
    shards: Vec<Vec<Arc<dyn ShardService>>>,
    /// The in-process data tier, kept only when the router was built over
    /// one ([`new`](Self::new)/[`with_obs`](Self::with_obs)); a router over
    /// explicit shard services ([`over`](Self::over)) has none.
    cluster: Option<Cluster>,
    config: ClusterConfig,
    k: usize,
    completion_cache: ShardedResponseCache<MergedCompletion>,
    run_cache: ShardedResponseCache<ClusterRunPayload>,
    tenants: sapphire_server::admission::TenantBudgets,
    completion_coalescer: Coalescer<MergedCompletion, ClusterError>,
    run_coalescer: Coalescer<ClusterRunPayload, ClusterError>,
    service_coalescer: Coalescer<QueryResult, ClusterError>,
    counters: Counters,
    obs: Arc<Obs>,
    /// Test-only escape hatch: route scatter and hedges through per-request
    /// thread spawns (the pre-executor implementation) instead of the shared
    /// executor. The byte-identity oracle (`tests/executor_oracle.rs`)
    /// compares the two paths on the full Appendix-B workload.
    reference_spawns: bool,
}

impl ClusterRouter {
    /// Stand an edge router in front of a cluster.
    pub fn new(cluster: Cluster, config: ClusterConfig) -> Self {
        Self::with_obs(cluster, config, Arc::new(Obs::new()))
    }

    /// Like [`new`](Self::new), but aggregating edge-tier stage histograms
    /// and traces into a caller-provided [`Obs`] — share one handle with the
    /// shard servers ([`SapphireServer::with_obs`](sapphire_server::SapphireServer::with_obs)) to get a single
    /// cross-tier view.
    pub fn with_obs(cluster: Cluster, config: ClusterConfig, obs: Arc<Obs>) -> Self {
        let shards = cluster
            .shards()
            .iter()
            .map(|replicas| {
                replicas
                    .iter()
                    .map(|r| r.clone() as Arc<dyn ShardService>)
                    .collect()
            })
            .collect();
        Self::build(shards, Some(cluster), config, obs)
    }

    /// Stand an edge router over explicit shard services — one
    /// [`ShardService`] per replica per shard — instead of an in-process
    /// [`Cluster`]. This is how wire mode runs: the services are
    /// `sapphire_wire::WireClient`s dialing replica processes, and the whole
    /// routing policy (load order, hedging, typed retry, degradation tiers)
    /// applies unchanged because it only ever spoke [`ShardService`].
    pub fn over(shards: Vec<Vec<Arc<dyn ShardService>>>, config: ClusterConfig) -> Self {
        Self::over_with_obs(shards, config, Arc::new(Obs::new()))
    }

    /// Like [`over`](Self::over), with a caller-provided [`Obs`].
    pub fn over_with_obs(
        shards: Vec<Vec<Arc<dyn ShardService>>>,
        config: ClusterConfig,
        obs: Arc<Obs>,
    ) -> Self {
        Self::build(shards, None, config, obs)
    }

    fn build(
        shards: Vec<Vec<Arc<dyn ShardService>>>,
        cluster: Option<Cluster>,
        config: ClusterConfig,
        obs: Arc<Obs>,
    ) -> Self {
        assert!(
            shards.iter().all(|r| !r.is_empty()),
            "every shard needs at least one replica"
        );
        let shard_count = shards.len();
        // Every replica of every shard shares one model config; the edge
        // presents the same top-k the shards compute.
        let k = shards[0][0].top_k();
        ClusterRouter {
            tenants: sapphire_server::admission::TenantBudgets::new(config.tenant_window_budget),
            completion_cache: ShardedResponseCache::new(
                config.cache_shards,
                config.cache_capacity_per_shard,
            ),
            run_cache: ShardedResponseCache::new(
                config.cache_shards,
                config.cache_capacity_per_shard,
            ),
            completion_coalescer: Coalescer::new(
                config.cache_shards,
                config.coalesce_waiters_per_key,
            ),
            run_coalescer: Coalescer::new(config.cache_shards, config.coalesce_waiters_per_key),
            service_coalescer: Coalescer::new(config.cache_shards, config.coalesce_waiters_per_key),
            counters: Counters::new(shard_count),
            obs,
            reference_spawns: false,
            k,
            shards,
            cluster,
            config,
        }
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_replicas(&self, shard: usize) -> &[Arc<dyn ShardService>] {
        &self.shards[shard]
    }

    /// The router's observability handle (edge stage histograms, trace
    /// sampler, flight recorder).
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// The underlying in-process cluster.
    ///
    /// # Panics
    ///
    /// A router built over explicit shard services ([`over`](Self::over) —
    /// e.g. wire clients dialing replica processes) has no in-process data
    /// tier to hand out; calling this on one is a harness bug.
    pub fn cluster(&self) -> &Cluster {
        self.cluster
            .as_ref()
            .expect("router built over explicit shard services has no in-process cluster")
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Charge `cost` edge work units to `tenant` (typed
    /// [`ClusterError::EdgeRejected`] when the window budget is exhausted).
    /// Runs before the edge caches so a cached request still consumes quota
    /// — budgets are request-denominated, exactly as on the shards.
    fn charge(&self, tenant: &str, cost: u64) -> Result<(), ClusterError> {
        self.tenants
            .charge(tenant, cost)
            .map_err(ClusterError::EdgeRejected)
    }

    fn run_cost(&self, query: &SelectQuery) -> u64 {
        self.config.run_base_cost
            + self.config.run_per_pattern_cost * query.pattern.triples.len() as u64
    }

    /// The edge work charged to `tenant` in the current window.
    pub fn tenant_usage(&self, tenant: &str) -> u64 {
        self.tenants.used(tenant)
    }

    /// Start a fresh edge budget accounting window.
    pub fn reset_budget_window(&self) {
        self.tenants.reset_window();
    }

    /// Observability snapshot.
    pub fn metrics(&self) -> ClusterMetrics {
        // Transport counters live on the replica clients, not the router:
        // they keep counting across requests (and across routers, if two
        // share clients), so the snapshot reads them live and sums.
        let mut transport = TransportStats::default();
        for replicas in &self.shards {
            for replica in replicas {
                transport.merge(&replica.transport_stats());
            }
        }
        ClusterMetrics {
            fanout_per_shard: self
                .counters
                .fanout
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            hedges_fired: self.counters.hedges_fired.load(Ordering::Relaxed),
            hedges_won: self.counters.hedges_won.load(Ordering::Relaxed),
            hedges_suppressed: self.counters.hedges_suppressed.load(Ordering::Relaxed),
            replica_retries: self.counters.replica_retries.load(Ordering::Relaxed),
            rejected_after_retry: self.counters.rejected_after_retry.load(Ordering::Relaxed),
            merges: self.counters.merges.load(Ordering::Relaxed),
            merge_depth_max: self.counters.merge_depth_max.load(Ordering::Relaxed),
            completion_cache: self.completion_cache.stats(),
            run_cache: self.run_cache.stats(),
            edge_coalesced_hits: self.counters.edge_coalesced_hits.load(Ordering::Relaxed),
            edge_coalesce_leaders: self.counters.edge_coalesce_leaders.load(Ordering::Relaxed),
            degraded_runs: self.counters.degraded_runs.load(Ordering::Relaxed),
            degraded_by_tier: self
                .counters
                .degraded_by_tier
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            wire_connects: transport.connects,
            wire_reconnects: transport.reconnects,
            wire_io_errors: transport.io_errors,
            wire_corrupt_frames: transport.corrupt_frames,
        }
    }

    /// The cluster tier as [`MetricsHub`] sections: routing counters,
    /// per-shard fan-out, edge response caches, and this router's stage
    /// histograms.
    pub fn export_metrics(&self) -> MetricsHub {
        let m = self.metrics();
        let mut hub = MetricsHub::new();
        {
            let cluster = hub.section("cluster");
            cluster
                .field("shards", m.fanout_per_shard.len())
                .field("hedges_fired", m.hedges_fired)
                .field("hedges_won", m.hedges_won)
                .field("hedges_suppressed", m.hedges_suppressed)
                .field("replica_retries", m.replica_retries)
                .field("rejected_after_retry", m.rejected_after_retry)
                .field("merges", m.merges)
                .field("merge_depth_max", m.merge_depth_max)
                .field("edge_coalesced_hits", m.edge_coalesced_hits)
                .field("edge_coalesce_leaders", m.edge_coalesce_leaders)
                .field("degraded_runs", m.degraded_runs)
                .field("wire_connects", m.wire_connects)
                .field("wire_reconnects", m.wire_reconnects)
                .field("wire_io_errors", m.wire_io_errors)
                .field("wire_corrupt_frames", m.wire_corrupt_frames);
            for (tier, runs) in m.degraded_by_tier.iter().enumerate().skip(1) {
                cluster.field(&format!("degraded_tier{tier}"), *runs);
            }
            for (shard, calls) in m.fanout_per_shard.iter().enumerate() {
                cluster.field(&format!("fanout_shard{shard}"), *calls);
            }
        }
        for (name, stats) in [
            ("edge_completion_cache", &m.completion_cache),
            ("edge_run_cache", &m.run_cache),
        ] {
            hub.section(name)
                .field("hits", stats.hits)
                .field("misses", stats.misses)
                .field("evictions", stats.evictions)
                .field("hit_ratio", stats.hit_ratio());
        }
        self.obs.stage_sections(&mut hub);
        hub
    }

    /// Record a coalesce-follower wait (satellite of the cross-tier
    /// single-flight design: followers — and only followers — spend real
    /// time blocked in `join`, so only they feed the `coalesce_wait` stage).
    fn note_coalesce_wait(&self, started: Instant, surface: &'static str) {
        let waited_us = started.elapsed().as_micros() as u64;
        self.obs.record(Stage::CoalesceWait, waited_us);
        if let Some((trace, parent)) = trace::current_ctx() {
            trace.add_span(
                Stage::CoalesceWait.name(),
                started,
                waited_us,
                parent,
                format!("{surface} follower wait_us={waited_us}"),
            );
        }
    }

    // --- QCM ---------------------------------------------------------------

    /// Cluster QCM: scatter the completion to every shard, merge the ranked
    /// lists into the canonical top-k. Edge-cached and edge-coalesced by the
    /// same normalized key the shards use.
    pub fn complete(&self, tenant: &str, term: &str) -> Result<ClusterCompletion, ClusterError> {
        let _req = self.obs.request_scope("complete", tenant);
        self.charge(tenant, self.config.completion_cost)?;
        let key = completion_request_key(term);
        let lookup = {
            let mut t = self.obs.time(Stage::CacheLookup);
            let hit = self.completion_cache.get(&key);
            t.tag(if hit.is_some() {
                "edge completion hit"
            } else {
                "edge completion miss"
            });
            hit
        };
        if let Some(hit) = lookup {
            return Ok(hit.to_completion(true));
        }
        let join_started = Instant::now();
        let joined = self.completion_coalescer.join(&key);
        if matches!(joined, Join::Follower(_)) {
            self.note_coalesce_wait(join_started, "edge completion");
        }
        match joined {
            Join::Leader(token) => {
                if let Some(hit) = self.completion_cache.peek(&key) {
                    self.counters
                        .edge_coalesced_hits
                        .fetch_add(1, Ordering::Relaxed);
                    token.complete(Ok(hit.clone()));
                    return Ok(hit.to_completion(true));
                }
                self.counters
                    .edge_coalesce_leaders
                    .fetch_add(1, Ordering::Relaxed);
                match self.scatter_complete(tenant, term) {
                    Ok(payload) => {
                        let shared = self.completion_cache.insert(key, payload);
                        token.complete(Ok(shared.clone()));
                        Ok(shared.to_completion(false))
                    }
                    Err(e) => {
                        token.complete(Err(e.clone()));
                        Err(e)
                    }
                }
            }
            Join::Follower(outcome) => match outcome {
                Ok(shared) => {
                    self.counters
                        .edge_coalesced_hits
                        .fetch_add(1, Ordering::Relaxed);
                    Ok(shared.to_completion(true))
                }
                // The leader died on its own tenant's quota; ours may be
                // fine — scatter for ourselves instead of inheriting it.
                Err(e) if tenant_scoped(&e) => self.scatter_complete(tenant, term).map(|payload| {
                    self.completion_cache
                        .insert(key, payload)
                        .to_completion(false)
                }),
                Err(e) => Err(e),
            },
            Join::Bypass => self.scatter_complete(tenant, term).map(|payload| {
                self.completion_cache
                    .insert(key, payload)
                    .to_completion(false)
            }),
        }
    }

    fn scatter_complete(&self, tenant: &str, term: &str) -> Result<MergedCompletion, ClusterError> {
        let fetch = match self.config.completion_fetch {
            0 => usize::MAX,
            depth => depth,
        };
        let replies = self.scatter(
            &ShardRequest::Complete {
                tenant: tenant.to_string(),
                term: term.to_string(),
                fetch,
            },
            None,
        )?;
        let lists: Vec<Vec<Completion>> = replies
            .into_iter()
            .map(|reply| match reply {
                ShardReply::Completion(c) => c.suggestions,
                _ => unreachable!("complete scatter yields completion replies"),
            })
            .collect();
        let merge_depth = lists.len();
        self.counters.record_merge(merge_depth);
        let suggestions = {
            let mut t = self.obs.time(Stage::EdgeMerge);
            t.tag("completions");
            merge_completions(lists, self.k)
        };
        Ok(MergedCompletion {
            suggestions,
            merge_depth,
        })
    }

    // --- QSM / run ---------------------------------------------------------

    /// Cluster QSM + execution: scatter the (slice-stripped) query to every
    /// shard, merge answers exactly (union for subject stars, recount for
    /// the session COUNT shape, federated bound join for patterns spanning
    /// shards), merge suggestions deterministically, and re-prefetch every
    /// surviving suggestion's answers cluster-wide.
    pub fn run(&self, tenant: &str, query: &SelectQuery) -> Result<ClusterRun, ClusterError> {
        self.run_tiered(tenant, query, 0)
    }

    /// [`run`](Self::run) with a caller-imposed degradation-tier floor —
    /// the surface an upstream tier (another edge, a front-end shedding on
    /// its own queue) uses to propagate its shed decision downstream. The
    /// tier actually *requested* from shards is the deeper of the floor and
    /// this router's own [`DegradePolicy`] signals (queue pressure,
    /// remaining deadline); without a policy the floor alone is honored,
    /// and `run_tiered(t, q, 0)` is exactly [`run`](Self::run).
    pub fn run_tiered(
        &self,
        tenant: &str,
        query: &SelectQuery,
        floor: usize,
    ) -> Result<ClusterRun, ClusterError> {
        let _req = self.obs.request_scope("run", tenant);
        self.charge(tenant, self.run_cost(query))?;
        let started = Instant::now();
        // The edge chooses the tier it will request BEFORE any lookup: the
        // tier keys the edge cache and the coalescer, so tier-0 and tier-N
        // requests can never exchange payloads at the edge — the same
        // never-mix discipline the shards' tier-suffixed keys enforce. A
        // merge that came back degraded *deeper* than requested is
        // additionally refused by `cache_run` below.
        let requested = self.requested_tier(floor, started);
        let key = run_request_key_tier(query, requested);
        let lookup = {
            let mut t = self.obs.time(Stage::CacheLookup);
            let hit = self.run_cache.get(&key);
            t.tag(if hit.is_some() {
                "edge run hit"
            } else {
                "edge run miss"
            });
            hit
        };
        if let Some(hit) = lookup {
            return Ok(run_from(hit, true));
        }
        let join_started = Instant::now();
        let joined = self.run_coalescer.join(&key);
        if matches!(joined, Join::Follower(_)) {
            self.note_coalesce_wait(join_started, "edge run");
        }
        match joined {
            Join::Leader(token) => {
                if let Some(hit) = self.run_cache.peek(&key) {
                    self.counters
                        .edge_coalesced_hits
                        .fetch_add(1, Ordering::Relaxed);
                    token.complete(Ok(hit.clone()));
                    return Ok(run_from(hit, true));
                }
                self.counters
                    .edge_coalesce_leaders
                    .fetch_add(1, Ordering::Relaxed);
                match self.scatter_run(tenant, query, requested, started) {
                    Ok(payload) => {
                        let shared = self.cache_run(query, requested, payload);
                        token.complete(Ok(shared.clone()));
                        Ok(run_from(shared, false))
                    }
                    Err(e) => {
                        token.complete(Err(e.clone()));
                        Err(e)
                    }
                }
            }
            Join::Follower(outcome) => match outcome {
                Ok(shared) => {
                    self.counters
                        .edge_coalesced_hits
                        .fetch_add(1, Ordering::Relaxed);
                    Ok(run_from(shared, true))
                }
                // Leader failed on its own tenant's quota — scatter for
                // ourselves rather than inheriting a rejection that does
                // not apply to our tenant.
                Err(e) if tenant_scoped(&e) => self
                    .scatter_run(tenant, query, requested, started)
                    .map(|payload| run_from(self.cache_run(query, requested, payload), false)),
                Err(e) => Err(e),
            },
            Join::Bypass => self
                .scatter_run(tenant, query, requested, started)
                .map(|payload| run_from(self.cache_run(query, requested, payload), false)),
        }
    }

    /// The QSM shed tier the edge requests for a run it is about to serve:
    /// the deepest of the caller's floor, per-shard queue pressure, and the
    /// remaining-deadline signal, clamped to the ladder. Pressure and
    /// deadline contribute only under a [`DegradePolicy`]; the floor is
    /// always honored (it is some upstream's already-made decision). The
    /// pressure probe reads each shard's *least-loaded* replica — the one
    /// load-aware routing will pick — and takes the worst shard, because a
    /// scatter must wait for all of them.
    fn requested_tier(&self, floor: usize, started: Instant) -> usize {
        let mut tier = floor;
        if let Some(policy) = &self.config.degrade {
            let pressure = self
                .shards
                .iter()
                .map(|replicas| {
                    replicas
                        .iter()
                        .map(|replica| replica.shed_pressure_tier())
                        .min()
                        .unwrap_or(0)
                })
                .max()
                .unwrap_or(0);
            let remaining = policy.deadline.saturating_sub(started.elapsed());
            let deadline_tier = if remaining * 2 >= policy.deadline {
                0
            } else if remaining * 4 >= policy.deadline {
                1
            } else {
                2
            };
            tier = tier.max(pressure).max(deadline_tier);
        }
        tier.min(SteinerConfig::MAX_TIER)
    }

    /// The deadline budget still unspent `started` ago — what a run scatter
    /// hop propagates to shards. `None` without a [`DegradePolicy`].
    fn remaining_budget(&self, started: Instant) -> Option<Duration> {
        self.config
            .degrade
            .as_ref()
            .map(|policy| policy.deadline.saturating_sub(started.elapsed()))
    }

    /// Cache a merged run payload under the tier the edge *requested* —
    /// degraded merges are tier-keyed at the edge exactly as on the shards
    /// ([`sapphire_core::run_request_key_tier`]), so a tier-0 lookup can
    /// never see one. Every degraded merge is counted
    /// ([`ClusterMetrics::degraded_runs`], per-tier in
    /// [`ClusterMetrics::degraded_by_tier`]). A payload that came back
    /// *deeper* than requested — a shard shed on its own pressure beyond
    /// what the edge asked for — is handed to the caller but never
    /// inserted: its key would promise more fidelity than its contents
    /// hold, which is precisely the cross-contamination the never-mix
    /// guarantee forbids. (A payload *shallower* than requested is fine:
    /// the query had no relaxation to shed, so the "degraded" execution is
    /// byte-identical to the full one.)
    fn cache_run(
        &self,
        query: &SelectQuery,
        requested: usize,
        payload: ClusterRunPayload,
    ) -> Arc<ClusterRunPayload> {
        if payload.degraded {
            self.counters.degraded_runs.fetch_add(1, Ordering::Relaxed);
            let tier = payload.tier.min(SteinerConfig::MAX_TIER);
            self.counters.degraded_by_tier[tier].fetch_add(1, Ordering::Relaxed);
        }
        if payload.tier > requested {
            return Arc::new(payload);
        }
        self.run_cache
            .insert(run_request_key_tier(query, requested), payload)
    }

    fn scatter_run(
        &self,
        tenant: &str,
        query: &SelectQuery,
        requested: usize,
        started: Instant,
    ) -> Result<ClusterRunPayload, ClusterError> {
        if count_shape(query).is_none() && (query.has_aggregates() || !query.group_by.is_empty()) {
            return Err(ClusterError::Unsupported(
                "aggregates beyond a single COUNT over a sharded pattern".into(),
            ));
        }
        // Scatter the *star-projected* query: shards return full bindings,
        // which is exactly what the exact merge needs (see `merge_bindings`)
        // — so the per-shard execution is paid once, not once for the run
        // and again for the answers. QSM candidate generation only reads
        // the pattern, so the projection change costs the suggestions
        // nothing (rewrites are grafted back onto the original query below).
        let star = star_pattern_query(query);
        let replies = self.scatter(
            &ShardRequest::Run {
                tenant: tenant.to_string(),
                query: star.clone(),
                tier: requested,
                budget: self.remaining_budget(started),
            },
            None,
        )?;
        let payloads: Vec<Arc<sapphire_server::RunPayload>> = replies
            .into_iter()
            .map(|reply| match reply {
                ShardReply::Run(p) => p,
                _ => unreachable!("run scatter yields run replies"),
            })
            .collect();
        let executed = payloads.iter().all(|p| p.executed);
        // Each shard executes at the deeper of the requested tier and its
        // own pressure tier; the merge is degraded if any contributor was,
        // keyed by the deepest tier observed.
        let tier = payloads
            .iter()
            .map(|p| p.suggestions.tier)
            .max()
            .unwrap_or(0);
        let degraded = payloads.iter().any(|p| p.suggestions.degraded);

        // Answers: the scattered star bindings merge exactly for subject
        // stars; patterns spanning shards still need the federated bound
        // join (the per-shard bindings lack the cross-shard join rows).
        let answers = if single_subject(query) {
            let lists: Vec<Solutions> = payloads.iter().map(|p| p.answers.clone()).collect();
            self.counters.record_merge(lists.len());
            let mut t = self.obs.time(Stage::EdgeMerge);
            t.tag("run bindings");
            if let Some((var, distinct, alias)) = count_shape(query) {
                let rows = merge_bindings(&star, lists);
                count_rows(&rows, &var, distinct, &alias)
            } else {
                merge_bindings(query, lists)
            }
        } else {
            self.cluster_answers(tenant, query)?
        };

        // Alternatives: merge the *unfiltered* candidate lists (a shard
        // cannot apply the "returns answers" cut — a rewrite whose answers
        // live on other shards would be dropped by everyone), graft each
        // rewrite back onto the original (unsliced) query, re-prefetch
        // cluster-wide, and apply the cut at the edge.
        let candidate_lists: Vec<Vec<TermAlternative>> = payloads
            .iter()
            .map(|p| (*p.suggestions.candidates).clone())
            .collect();
        self.counters.record_merge(candidate_lists.len());
        let mut candidates = {
            let mut t = self.obs.time(Stage::EdgeMerge);
            t.tag("alternatives");
            dedup_alternatives(candidate_lists)
        };
        sort_alternatives(&mut candidates);
        let half = (self.k / 2).max(1);
        let (mut predicates, mut literals) = (0usize, 0usize);
        let mut alternatives = Vec::new();
        for mut cand in candidates {
            // Canonical order lets the edge stop prefetching a kind once its
            // k/2 presentation slots are full — the same early exit the
            // single-box Algorithm 2 takes.
            let slots = match cand.position {
                AlteredPosition::Predicate => &mut predicates,
                AlteredPosition::Object => &mut literals,
            };
            if *slots >= half {
                continue;
            }
            let mut rebuilt = query.clone();
            let altered = &cand.query.pattern.triples[cand.triple_index];
            match cand.position {
                AlteredPosition::Predicate => {
                    rebuilt.pattern.triples[cand.triple_index].predicate =
                        altered.predicate.clone();
                }
                AlteredPosition::Object => {
                    rebuilt.pattern.triples[cand.triple_index].object = altered.object.clone();
                }
            }
            // A shed prefetch fails the whole run, typed and retryable,
            // rather than silently dropping the candidate: a degraded
            // suggestion list would make identical requests produce
            // different bytes depending on transient load, which is
            // exactly what the merge contract forbids.
            let answers = self.cluster_answers(tenant, &rebuilt)?;
            if answers.is_empty() {
                continue;
            }
            match cand.position {
                AlteredPosition::Predicate => predicates += 1,
                AlteredPosition::Object => literals += 1,
            }
            cand.query = rebuilt;
            cand.answers = answers;
            alternatives.push(cand);
        }

        // Relaxations: dedup by relaxed-query identity, prefer complete
        // trees, keep the canonical best, re-prefetch cluster-wide.
        let mut relaxed: Vec<StructureSuggestion> = payloads
            .iter()
            .flat_map(|p| p.suggestions.relaxations.clone())
            .collect();
        relaxed.sort_by(|a, b| {
            b.relaxed.complete.cmp(&a.relaxed.complete).then_with(|| {
                run_request_key(&a.relaxed.query).cmp(&run_request_key(&b.relaxed.query))
            })
        });
        relaxed.dedup_by(|later, first| {
            run_request_key(&later.relaxed.query) == run_request_key(&first.relaxed.query)
        });
        relaxed.truncate(1);
        let mut relaxations = Vec::new();
        for mut suggestion in relaxed {
            let answers = self.cluster_answers(tenant, &suggestion.relaxed.query)?;
            if answers.is_empty() {
                continue;
            }
            suggestion.answers = answers;
            relaxations.push(suggestion);
        }

        Ok(ClusterRunPayload {
            answers,
            executed,
            alternatives,
            relaxations,
            tier,
            degraded,
        })
    }

    /// The exact cluster-wide answer set of one SELECT: targeted single-shard
    /// routing for ground-subject stars, scatter + full-binding merge for
    /// variable-subject stars, edge recount for the session COUNT shape, and
    /// a federated bound join over one replica per shard for patterns
    /// spanning shards.
    fn cluster_answers(
        &self,
        tenant: &str,
        query: &SelectQuery,
    ) -> Result<Solutions, ClusterError> {
        if let Some((var, distinct, alias)) = count_shape(query) {
            // Count over the *merged* full bindings: per-shard counts cannot
            // be summed for DISTINCT counts, so the edge counts once.
            let star = star_pattern_query(query);
            let lists = self.binding_lists(tenant, &star)?;
            self.counters.record_merge(lists.len());
            let mut t = self.obs.time(Stage::EdgeMerge);
            t.tag("count recount");
            let rows = merge_bindings(&star, lists);
            return Ok(count_rows(&rows, &var, distinct, &alias));
        }
        if query.has_aggregates() || !query.group_by.is_empty() {
            return Err(ClusterError::Unsupported(
                "aggregates beyond a single COUNT over a sharded pattern".into(),
            ));
        }
        let lists = self.binding_lists(tenant, &star_pattern_query(query))?;
        self.counters.record_merge(lists.len());
        let mut t = self.obs.time(Stage::EdgeMerge);
        t.tag("bindings");
        Ok(merge_bindings(query, lists))
    }

    /// Full-binding (`SELECT *`, no slice) row lists for a query's pattern,
    /// one per consulted shard. Scattering star projections is what lets
    /// [`merge_bindings`] deduplicate schema-slice replicas exactly (see its
    /// docs); the cross-shard bound join contributes one pre-joined list.
    fn binding_lists(
        &self,
        tenant: &str,
        star: &SelectQuery,
    ) -> Result<Vec<Solutions>, ClusterError> {
        if single_subject(star) {
            let target = ground_subject_shard(star, self.shard_count());
            let replies = self.scatter(
                &ShardRequest::Raw {
                    tenant: tenant.to_string(),
                    query: Query::Select(star.clone()),
                },
                target,
            )?;
            Ok(replies
                .into_iter()
                .map(|reply| match reply {
                    ShardReply::Raw(QueryResult::Solutions(s)) => s,
                    _ => Solutions::default(),
                })
                .collect())
        } else {
            Ok(vec![self.federated_rows(tenant, star)?])
        }
    }

    /// Cross-shard fallback: a federated bound join over one (least-loaded)
    /// replica endpoint per shard, via the partition-safe
    /// [`execute_partitioned`](sapphire_endpoint::FederatedProcessor::execute_partitioned)
    /// path (the covering-endpoint shortcut is unsound over shards of one
    /// dataset). Admission control and budgets still hold at every shard —
    /// the endpoints are the servers themselves.
    fn federated_rows(&self, tenant: &str, query: &SelectQuery) -> Result<Solutions, ClusterError> {
        let mut fed = sapphire_endpoint::FederatedProcessor::new();
        for shard in 0..self.shard_count() {
            self.counters.fanout[shard].fetch_add(1, Ordering::Relaxed);
            // A bound join issues *many* raw queries against each shard
            // over the plan's lifetime, so the endpoint it binds must keep
            // making the load/failover decision per query — a `ShardFanout`
            // over the whole replica set — rather than pinning whichever
            // replica was least loaded (or even alive) at plan start.
            fed.register(Arc::new(ServiceEndpoint::new(
                Arc::new(ShardFanout {
                    name: format!("{}-s{shard}", self.config.name),
                    replicas: self.shards[shard].clone(),
                    backoff: self.config.backoff,
                    jitter_seq: AtomicU64::new(
                        self.counters.jitter_seq.fetch_add(1, Ordering::Relaxed),
                    ),
                }),
                tenant,
            )));
        }
        // The federated plan spans every shard, so a failure here cannot be
        // pinned on one shard index — it surfaces as the dedicated
        // cross-shard variant (still typed: back-pressure stays a
        // rejection).
        fed.execute_partitioned(query)
            .map_err(|e| ClusterError::CrossShard {
                error: sapphire_server::error::from_federation(e),
            })
    }

    // --- Routing core ------------------------------------------------------

    /// Scatter one request: to every shard (`target == None`) or to a single
    /// home shard. Shards are called concurrently; the gather preserves
    /// shard order, so merges never depend on completion order.
    fn scatter(
        &self,
        req: &ShardRequest,
        target: Option<usize>,
    ) -> Result<Vec<ShardReply>, ClusterError> {
        if let Some(shard) = target {
            return Ok(vec![self.shard_rtt(shard, req)?]);
        }
        let shards = self.shard_count();
        if shards == 1 {
            return Ok(vec![self.shard_rtt(0, req)?]);
        }
        // Scatter tasks run on executor workers (or, for the reference
        // path, fresh threads): hand each one the request's trace context so
        // its shard span parents under this request, and a request mark so
        // the shard server's own request scope stays inert.
        let ctx = trace::current_ctx();
        if self.reference_spawns {
            return std::thread::scope(|scope| {
                let handles: Vec<_> = (0..shards)
                    .map(|shard| {
                        let ctx = ctx.clone();
                        scope.spawn(move || {
                            let _mark = RequestMark::new();
                            let _scope = ctx.map(|(trace, parent)| match parent {
                                Some(p) => TraceScope::enter_with_parent(trace, p),
                                None => TraceScope::enter(Some(trace)),
                            });
                            self.shard_rtt(shard, req)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard call never panics"))
                    .collect()
            });
        }
        // One task per shard on the shared executor: zero thread spawns, and
        // `run` collects in task-index (= shard) order, so the gather is
        // byte-identical to the spawn-per-shard reference.
        exec::global()
            .run(shards, |shard| {
                let _mark = RequestMark::new();
                let _scope = ctx.clone().map(|(trace, parent)| match parent {
                    Some(p) => TraceScope::enter_with_parent(trace, p),
                    None => TraceScope::enter(Some(trace)),
                });
                self.shard_rtt(shard, req)
            })
            .into_iter()
            .collect()
    }

    /// One whole shard call ([`call_shard`]: load-ordered replica choice,
    /// hedging, typed retry) timed under a `shard_rtt` span; per-attempt
    /// observations land inside `call_shard` so the histogram sees every
    /// round trip, hedges and retries included.
    fn shard_rtt(&self, shard: usize, req: &ShardRequest) -> Result<ShardReply, ClusterError> {
        let started = Instant::now();
        let span = trace::current_ctx().map(|(trace, parent)| {
            let (idx, _) = trace.open_span(Stage::ShardRtt.name(), parent, format!("shard{shard}"));
            (trace, idx)
        });
        let guard = span
            .as_ref()
            .map(|(trace, idx)| TraceScope::enter_with_parent(trace.clone(), *idx));
        let result = self.call_shard(shard, req);
        drop(guard);
        if let Some((trace, idx)) = span {
            trace.close_span(idx, started.elapsed().as_micros() as u64);
        }
        result
    }

    /// Replica indices of one shard in ascending admission-load order
    /// (ties by index) — the load-aware routing decision.
    fn replica_order(&self, shard: usize) -> Vec<usize> {
        let replicas = self.shard_replicas(shard);
        let mut order: Vec<usize> = (0..replicas.len()).collect();
        order.sort_by_key(|&i| {
            let (in_flight, queued) = replicas[i].admission_load();
            (in_flight + queued, i)
        });
        order
    }

    /// One shard call under the full routing policy: load-ordered replica
    /// choice, hedging, and typed bounded retry with failover.
    fn call_shard(&self, shard: usize, req: &ShardRequest) -> Result<ShardReply, ClusterError> {
        let order = self.replica_order(shard);
        let replicas = self.shard_replicas(shard);
        let mut attempt: u32 = 0;
        // When the request carries a deadline budget, the retry loop stops
        // once the budget is spent — retrying a shard call nobody is still
        // waiting for only deepens the overload it is reacting to.
        let call_started = Instant::now();
        let budget = request_budget(req);
        // Per-call jitter stream: concurrent callers shed by the same
        // saturated replica must not retry in lock-step (the seed sequence
        // gives every call its own decorrelated schedule).
        let mut jitter = Jitter::new(self.counters.jitter_seq.fetch_add(1, Ordering::Relaxed));
        loop {
            self.counters.fanout[shard].fetch_add(1, Ordering::Relaxed);
            let primary = order[attempt as usize % order.len()];
            // With wire replicas this is a *real* network round trip;
            // in-process it is a function call. Tag every observation with
            // the transport so the histogram never silently mixes the two.
            let transport = replicas[primary].transport();
            let attempt_started = Instant::now();
            let mut rtt = self.obs.time(Stage::ShardRtt);
            rtt.tag(transport);
            let result = match (self.config.hedge_after, order.len() > 1) {
                (Some(budget), true) => {
                    let secondary = order[(attempt as usize + 1) % order.len()];
                    self.call_hedged(shard, replicas, primary, secondary, budget, req)
                }
                _ => call_replica(replicas[primary].as_ref(), req),
            };
            let attempt_us = attempt_started.elapsed().as_micros() as u64;
            drop(rtt);
            if let Some((trace, parent)) = trace::current_ctx() {
                trace.add_span(
                    "replica_call",
                    attempt_started,
                    attempt_us,
                    parent,
                    format!(
                        "shard{shard} replica{primary} attempt{attempt} transport={transport} ok={}",
                        result.is_ok()
                    ),
                );
            }
            match result {
                Ok(reply) => return Ok(reply),
                Err(e) if is_retryable(&e) => {
                    let budget_spent = budget.is_some_and(|b| call_started.elapsed() >= b);
                    if attempt >= self.config.backoff.max_retries || budget_spent {
                        self.counters
                            .rejected_after_retry
                            .fetch_add(1, Ordering::Relaxed);
                        return Err(ClusterError::ShardUnavailable { shard, last: e });
                    }
                    self.counters
                        .replica_retries
                        .fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(
                        self.config
                            .backoff
                            .jittered_wait(&as_endpoint_error(&e), &mut jitter),
                    );
                    attempt += 1;
                }
                Err(e) => return Err(ClusterError::Shard { shard, error: e }),
            }
        }
    }

    /// Fire at `primary`; if it does not answer within `budget`, fire the
    /// same request at `secondary` and take the first reply (preferring a
    /// success when both eventually answer).
    ///
    /// The slower call keeps running — it holds its own admission slot,
    /// exactly the cost hedging is priced at — but bounded: the number of
    /// in-flight hedges is capped by [`ClusterConfig::max_inflight_hedges`]
    /// (a hedge that would exceed it is suppressed and the call just waits
    /// for its primary; the token is taken at submission and released by the
    /// hedge task itself when its scan completes). Calls are executor tasks,
    /// not threads — the old reaper that joined loser threads is gone
    /// because there is nothing to join: each task owns (`Arc`s) everything
    /// it touches. Progress is guaranteed even with a saturated pool: any
    /// call this thread ends up blocked on gets claimed back and run inline
    /// ([`exec::TaskHandle::run_now`]).
    fn call_hedged(
        &self,
        shard: usize,
        replicas: &[Arc<dyn ShardService>],
        primary: usize,
        secondary: usize,
        budget: Duration,
        req: &ShardRequest,
    ) -> Result<ShardReply, ServerError> {
        let (tx, rx) = mpsc::channel();
        let submit_call = |replica: usize, hedged: bool| -> HedgeCall {
            let server = replicas[replica].clone();
            let req = req.clone();
            let tx = tx.clone();
            // The hedge task itself releases its in-flight token when the
            // scan completes — the gauge tracks scans (each pinning an
            // admission slot), not task lifetimes.
            let gauge = hedged.then(|| Arc::clone(&self.counters.hedges_in_flight));
            let job = move || {
                let result = call_replica(server.as_ref(), &req);
                if let Some(gauge) = gauge {
                    gauge.fetch_sub(1, Ordering::Relaxed);
                }
                let _ = tx.send((hedged, result));
            };
            if self.reference_spawns {
                // Reference path: a detached thread, as before the executor.
                // Nothing joins it; the task owns everything it touches.
                std::thread::spawn(job);
                HedgeCall::Thread
            } else {
                HedgeCall::Exec(exec::global().spawn(job))
            }
        };
        let primary_call = submit_call(primary, false);
        match rx.recv_timeout(budget) {
            Ok((_, reply)) => reply,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                let cap = self.config.max_inflight_hedges as u64;
                let token = self.counters.hedges_in_flight.fetch_update(
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                    |n| (n < cap).then_some(n + 1),
                );
                if token.is_err() {
                    // At the cap: no hedge — wait out the primary instead of
                    // growing the loser population. If the primary is still
                    // queued behind a saturated pool, run it right here.
                    self.counters
                        .hedges_suppressed
                        .fetch_add(1, Ordering::Relaxed);
                    primary_call.run_now();
                    let (_, reply) = rx.recv().expect("a replica call always replies");
                    return reply;
                }
                self.counters.hedges_fired.fetch_add(1, Ordering::Relaxed);
                // The hedge is a real extra shard call; the fan-out counter
                // must see it (its doc promises hedges are included).
                self.counters.fanout[shard].fetch_add(1, Ordering::Relaxed);
                let hedge_fired = Instant::now();
                let secondary_call = submit_call(secondary, true);
                let (first_hedged, first) = match rx.recv_timeout(budget) {
                    Ok(reply) => reply,
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        // Another budget has passed with no reply — the pool
                        // may be saturated with both calls still queued.
                        // Claim whatever has not started and run it inline;
                        // after that at least one send is guaranteed.
                        primary_call.run_now();
                        secondary_call.run_now();
                        rx.recv().expect("a replica call always replies")
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => {
                        unreachable!("senders live in the submitted calls")
                    }
                };
                if let Some((trace, parent)) = trace::current_ctx() {
                    trace.add_span(
                        "hedge",
                        hedge_fired,
                        hedge_fired.elapsed().as_micros() as u64,
                        parent,
                        format!("shard{shard} secondary replica{secondary} won={first_hedged}"),
                    );
                }
                match first {
                    Ok(reply) => {
                        if first_hedged {
                            self.counters.hedges_won.fetch_add(1, Ordering::Relaxed);
                        }
                        // The loser keeps running detached on the pool; its
                        // gauge token is released when its scan completes.
                        Ok(reply)
                    }
                    // The first reply failed; the other call is still due.
                    // Force it to start if it is stuck in the queue, then
                    // wait it out.
                    Err(first_err) => {
                        primary_call.run_now();
                        secondary_call.run_now();
                        match rx.recv() {
                            Ok((second_hedged, Ok(reply))) => {
                                if second_hedged {
                                    self.counters.hedges_won.fetch_add(1, Ordering::Relaxed);
                                }
                                Ok(reply)
                            }
                            _ => Err(first_err),
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                unreachable!("sender lives in the submitted call")
            }
        }
    }

    /// Hedged secondary calls running right now (each pinning an admission
    /// slot on its replica). Bounded by
    /// [`ClusterConfig::max_inflight_hedges`].
    pub fn hedges_in_flight(&self) -> u64 {
        self.counters.hedges_in_flight.load(Ordering::Relaxed)
    }

    /// Test-only: route scatter and hedges through per-request thread spawns
    /// (the pre-executor reference implementation). See
    /// `tests/executor_oracle.rs`.
    #[doc(hidden)]
    pub fn set_reference_spawns(&mut self, on: bool) {
        self.reference_spawns = on;
    }
}

/// A submitted hedge-race call: an executor task on the production path, a
/// real thread on the test-only reference path.
enum HedgeCall {
    Exec(exec::TaskHandle),
    Thread,
}

impl HedgeCall {
    /// Progress guarantee: claim the call and run it on this thread if it is
    /// still queued behind a saturated pool. Reference threads always make
    /// progress on their own, so this is a no-op for them.
    fn run_now(&self) {
        if let HedgeCall::Exec(handle) = self {
            handle.run_now();
        }
    }
}

/// The raw SPARQL surface of the cluster: the router is itself a
/// [`QueryService`], so a further edge tier can federate over the whole
/// cluster through a [`ServiceEndpoint`] — multi-tier topologies compose.
/// Identical in-flight queries coalesce at this tier by
/// [`query_fingerprint`], the same key every other tier uses.
impl QueryService for ClusterRouter {
    fn service_name(&self) -> &str {
        &self.config.name
    }

    fn execute_query(&self, tenant: &str, query: &Query) -> Result<QueryResult, ServiceError> {
        let _req = self.obs.request_scope("query", tenant);
        let cost = match query {
            Query::Select(select) => self.run_cost(select),
            Query::Ask(pattern) => {
                self.config.run_base_cost
                    + self.config.run_per_pattern_cost * pattern.triples.len() as u64
            }
        };
        self.charge(tenant, cost)
            .map_err(ClusterError::into_service_error)?;
        let key = query_fingerprint(query);
        let execute = |tenant: &str, query: &Query| -> Result<QueryResult, ClusterError> {
            match query {
                Query::Select(select) => self
                    .cluster_answers(tenant, select)
                    .map(QueryResult::Solutions),
                Query::Ask(pattern) => {
                    let probe = SelectQuery::star(pattern.clone());
                    if single_subject(&probe) {
                        let target = ground_subject_shard(&probe, self.shard_count());
                        let replies = self.scatter(
                            &ShardRequest::Raw {
                                tenant: tenant.to_string(),
                                query: query.clone(),
                            },
                            target,
                        )?;
                        let any = replies
                            .iter()
                            .any(|r| matches!(r, ShardReply::Raw(QueryResult::Boolean(true))));
                        Ok(QueryResult::Boolean(any))
                    } else {
                        let rows = self.federated_rows(
                            tenant,
                            &SelectQuery {
                                limit: Some(1),
                                ..SelectQuery::star(pattern.clone())
                            },
                        )?;
                        Ok(QueryResult::Boolean(!rows.is_empty()))
                    }
                }
            }
        };
        let join_started = Instant::now();
        let joined = self.service_coalescer.join(&key);
        if matches!(joined, Join::Follower(_)) {
            self.note_coalesce_wait(join_started, "edge service");
        }
        match joined {
            Join::Leader(token) => {
                self.counters
                    .edge_coalesce_leaders
                    .fetch_add(1, Ordering::Relaxed);
                let outcome = execute(tenant, query).map(Arc::new);
                token.complete(outcome.clone());
                outcome
                    .map(|shared| (*shared).clone())
                    .map_err(ClusterError::into_service_error)
            }
            Join::Follower(outcome) => {
                self.counters
                    .edge_coalesced_hits
                    .fetch_add(1, Ordering::Relaxed);
                outcome
                    .map(|shared| (*shared).clone())
                    .map_err(ClusterError::into_service_error)
            }
            Join::Bypass => execute(tenant, query).map_err(ClusterError::into_service_error),
        }
    }
}
