//! Generalized suffix tree built with Ukkonen's online algorithm.
//!
//! The paper indexes all RDF predicates plus the *most significant literals*
//! in a suffix tree because the QCM's core lookup — "which strings contain
//! the typed prefix `t`?" — runs in `O(|t| + z)` on it (§5.2). The quoted
//! downside also holds here: the tree can be an order of magnitude larger
//! than its input, which is why only a subset of literals is indexed and the
//! rest live in residual bins.
//!
//! Multiple strings are handled the standard way: each string is appended to
//! a shared symbol buffer followed by a unique terminator symbol, so no
//! suffix spans two strings. Leaves record the string they belong to, and
//! "open" leaf ends resolve per string, which keeps construction online.

use std::collections::HashMap;

/// Symbols are `char`s widened to `u32`; values `>= TERMINATOR_BASE` are
/// per-string terminators (they cannot collide with Unicode scalars).
const TERMINATOR_BASE: u32 = 0x0011_0000;

/// Identifier of an indexed string.
pub type StringId = u32;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum End {
    /// Fixed end offset (exclusive).
    Fixed(u32),
    /// Leaf of `StringId` that is still growing while that string is built;
    /// resolves to the string's final end afterwards.
    Open(StringId),
}

#[derive(Debug)]
struct Node {
    /// Edge label: `text[start..end]` on the edge from the parent.
    start: u32,
    end: End,
    children: HashMap<u32, u32>,
    suffix_link: u32,
    /// For leaves: which string's suffix this leaf represents.
    string_id: StringId,
}

const NO_LINK: u32 = u32::MAX;

/// A generalized suffix tree over a set of strings.
#[derive(Debug)]
pub struct SuffixTree {
    text: Vec<u32>,
    nodes: Vec<Node>,
    /// Final (exclusive) end offset of each indexed string's region,
    /// including its terminator.
    string_ends: Vec<u32>,
    /// Start offset of each string's region.
    string_starts: Vec<u32>,
    /// The original strings, for retrieval.
    strings: Vec<String>,
    // --- Ukkonen build state (valid during a single string's insertion) ---
    active_node: u32,
    active_edge: u32,
    active_length: u32,
    remainder: u32,
}

impl Default for SuffixTree {
    fn default() -> Self {
        Self::new()
    }
}

impl SuffixTree {
    /// An empty tree.
    pub fn new() -> Self {
        let root = Node {
            start: 0,
            end: End::Fixed(0),
            children: HashMap::new(),
            suffix_link: NO_LINK,
            string_id: 0,
        };
        SuffixTree {
            text: Vec::new(),
            nodes: vec![root],
            string_ends: Vec::new(),
            string_starts: Vec::new(),
            strings: Vec::new(),
            active_node: 0,
            active_edge: 0,
            active_length: 0,
            remainder: 0,
        }
    }

    /// Build a tree over the given strings.
    pub fn build<I, S>(strings: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut t = SuffixTree::new();
        for s in strings {
            t.insert(s.into());
        }
        t
    }

    /// Number of indexed strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True if no strings are indexed.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// The indexed string with the given id.
    pub fn string(&self, id: StringId) -> &str {
        &self.strings[id as usize]
    }

    /// All indexed strings.
    pub fn strings(&self) -> &[String] {
        &self.strings
    }

    /// Number of tree nodes (root included).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate resident size in bytes — used to reproduce the paper's
    /// "400 MB tree over 43K strings" observation at our scale.
    pub fn approx_bytes(&self) -> usize {
        let node_bytes: usize = self
            .nodes
            .iter()
            .map(|n| std::mem::size_of::<Node>() + n.children.capacity() * 16)
            .sum();
        self.text.len() * 4 + node_bytes + self.strings.iter().map(|s| s.len() + 24).sum::<usize>()
    }

    /// Insert one string and return its id.
    pub fn insert(&mut self, s: String) -> StringId {
        let id = self.strings.len() as StringId;
        let start = self.text.len() as u32;
        self.string_starts.push(start);
        // Reset the active point: previous strings are fully built (their
        // terminators made every suffix explicit).
        self.active_node = 0;
        self.active_edge = 0;
        self.active_length = 0;
        self.remainder = 0;

        let symbols: Vec<u32> = s
            .chars()
            .map(|c| c as u32)
            .chain([TERMINATOR_BASE + id])
            .collect();
        // `string_ends` must be pushed before extension so Open ends resolve;
        // we update it as the string grows.
        self.string_ends.push(start);
        for sym in symbols {
            self.text.push(sym);
            self.string_ends[id as usize] = self.text.len() as u32;
            self.extend(id);
        }
        self.strings.push(s);
        id
    }

    fn end_of(&self, node: u32) -> u32 {
        match self.nodes[node as usize].end {
            End::Fixed(e) => e,
            End::Open(sid) => self.string_ends[sid as usize],
        }
    }

    fn edge_len(&self, node: u32) -> u32 {
        self.end_of(node) - self.nodes[node as usize].start
    }

    fn new_leaf(&mut self, start: u32, sid: StringId) -> u32 {
        self.nodes.push(Node {
            start,
            end: End::Open(sid),
            children: HashMap::new(),
            suffix_link: NO_LINK,
            string_id: sid,
        });
        (self.nodes.len() - 1) as u32
    }

    fn new_internal(&mut self, start: u32, end: u32) -> u32 {
        self.nodes.push(Node {
            start,
            end: End::Fixed(end),
            children: HashMap::new(),
            suffix_link: NO_LINK,
            string_id: 0,
        });
        (self.nodes.len() - 1) as u32
    }

    /// One Ukkonen extension for the symbol at `text.len() - 1`.
    fn extend(&mut self, sid: StringId) {
        let pos = (self.text.len() - 1) as u32;
        let c = self.text[pos as usize];
        self.remainder += 1;
        let mut last_new_node: u32 = NO_LINK;

        while self.remainder > 0 {
            if self.active_length == 0 {
                self.active_edge = pos;
            }
            let edge_sym = self.text[self.active_edge as usize];
            let child = self.nodes[self.active_node as usize]
                .children
                .get(&edge_sym)
                .copied();
            match child {
                None => {
                    // No edge: create a leaf.
                    let leaf = self.new_leaf(pos, sid);
                    self.nodes[self.active_node as usize]
                        .children
                        .insert(edge_sym, leaf);
                    if last_new_node != NO_LINK {
                        self.nodes[last_new_node as usize].suffix_link = self.active_node;
                        last_new_node = NO_LINK;
                    }
                }
                Some(next) => {
                    // Walk down if the active length exceeds this edge.
                    let el = self.edge_len(next);
                    if self.active_length >= el {
                        self.active_edge += el;
                        self.active_length -= el;
                        self.active_node = next;
                        continue;
                    }
                    let probe =
                        self.text[(self.nodes[next as usize].start + self.active_length) as usize];
                    if probe == c {
                        // Symbol already present: rule 3 (showstopper).
                        if last_new_node != NO_LINK {
                            self.nodes[last_new_node as usize].suffix_link = self.active_node;
                        }
                        self.active_length += 1;
                        break;
                    }
                    // Split the edge.
                    let split_start = self.nodes[next as usize].start;
                    let split = self.new_internal(split_start, split_start + self.active_length);
                    self.nodes[self.active_node as usize]
                        .children
                        .insert(edge_sym, split);
                    self.nodes[next as usize].start = split_start + self.active_length;
                    let next_sym = self.text[self.nodes[next as usize].start as usize];
                    self.nodes[split as usize].children.insert(next_sym, next);
                    let leaf = self.new_leaf(pos, sid);
                    self.nodes[split as usize].children.insert(c, leaf);
                    if last_new_node != NO_LINK {
                        self.nodes[last_new_node as usize].suffix_link = split;
                    }
                    last_new_node = split;
                }
            }
            self.remainder -= 1;
            if self.active_node == 0 && self.active_length > 0 {
                self.active_length -= 1;
                self.active_edge = pos - self.remainder + 1;
            } else if self.active_node != 0 {
                let link = self.nodes[self.active_node as usize].suffix_link;
                self.active_node = if link == NO_LINK { 0 } else { link };
            }
        }
    }

    /// Locate the node (and consumed-edge offset) reached by matching
    /// `pattern` from the root, or `None` if the pattern does not occur.
    fn locate(&self, pattern: &[u32]) -> Option<(u32, u32)> {
        let mut node = 0u32;
        let mut i = 0usize;
        while i < pattern.len() {
            let child = *self.nodes[node as usize].children.get(&pattern[i])?;
            let start = self.nodes[child as usize].start;
            let end = self.end_of(child);
            let mut j = start;
            while j < end && i < pattern.len() {
                if self.text[j as usize] != pattern[i] {
                    return None;
                }
                j += 1;
                i += 1;
            }
            if i == pattern.len() {
                return Some((child, j - start));
            }
            node = child;
        }
        Some((node, self.edge_len(node)))
    }

    /// True if `pattern` occurs as a substring of any indexed string.
    pub fn contains(&self, pattern: &str) -> bool {
        if pattern.is_empty() {
            return true;
        }
        let symbols: Vec<u32> = pattern.chars().map(|c| c as u32).collect();
        self.locate(&symbols).is_some()
    }

    /// Ids of strings containing `pattern`, in discovery order, capped at
    /// `limit` (`usize::MAX` for all). The paper's QCM calls this with
    /// `limit = k = 10`.
    ///
    /// Runs in `O(|pattern| + z)` where `z` is the number of visited leaves.
    pub fn find_containing(&self, pattern: &str, limit: usize) -> Vec<StringId> {
        if limit == 0 {
            return Vec::new();
        }
        if pattern.is_empty() {
            return (0..self.strings.len().min(limit) as u32).collect();
        }
        let symbols: Vec<u32> = pattern.chars().map(|c| c as u32).collect();
        let Some((node, _)) = self.locate(&symbols) else {
            return Vec::new();
        };
        // DFS the subtree collecting distinct string ids from leaves.
        let mut found: Vec<StringId> = Vec::new();
        let mut seen = vec![false; self.strings.len()];
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            let nd = &self.nodes[n as usize];
            if nd.children.is_empty() {
                let sid = nd.string_id;
                if !seen[sid as usize] {
                    seen[sid as usize] = true;
                    found.push(sid);
                    if found.len() >= limit {
                        return found;
                    }
                }
            } else {
                stack.extend(nd.children.values().copied());
            }
        }
        found
    }

    /// The strings containing `pattern` (convenience over
    /// [`find_containing`](Self::find_containing)).
    pub fn find_strings(&self, pattern: &str, limit: usize) -> Vec<&str> {
        self.find_containing(pattern, limit)
            .into_iter()
            .map(|id| self.string(id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_containing(strings: &[&str], pattern: &str) -> Vec<usize> {
        strings
            .iter()
            .enumerate()
            .filter(|(_, s)| s.contains(pattern))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn single_string_substrings() {
        let t = SuffixTree::build(["banana"]);
        for sub in ["b", "a", "na", "ana", "banana", "nan", ""] {
            assert!(t.contains(sub), "should contain {sub:?}");
        }
        for sub in ["x", "ab", "bananas", "nab"] {
            assert!(!t.contains(sub), "should not contain {sub:?}");
        }
    }

    #[test]
    fn multi_string_lookup() {
        let strings = ["New York", "Newcastle", "York Minster", "Boston"];
        let t = SuffixTree::build(strings);
        let mut ids = t.find_containing("York", usize::MAX);
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 2]);
        let mut ids = t.find_containing("New", usize::MAX);
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1]);
        assert!(t.find_containing("Chicago", usize::MAX).is_empty());
    }

    #[test]
    fn limit_caps_results() {
        let strings: Vec<String> = (0..100).map(|i| format!("predicate_{i}")).collect();
        let t = SuffixTree::build(strings);
        let ids = t.find_containing("predicate", 10);
        assert_eq!(ids.len(), 10);
    }

    #[test]
    fn no_cross_string_phantom_matches() {
        // "ab" + "cd" must not produce a phantom "bc" match.
        let t = SuffixTree::build(["ab", "cd"]);
        assert!(!t.contains("bc"));
        assert!(t.contains("ab"));
        assert!(t.contains("cd"));
    }

    #[test]
    fn repeated_insertions_of_same_text() {
        let t = SuffixTree::build(["same", "same", "same"]);
        let ids = t.find_containing("same", usize::MAX);
        assert_eq!(ids.len(), 3);
    }

    #[test]
    fn unicode_strings() {
        let t = SuffixTree::build(["Zürich", "Москва", "東京都"]);
        assert_eq!(t.find_containing("ürich", usize::MAX), vec![0]);
        assert_eq!(t.find_containing("осква", usize::MAX), vec![1]);
        assert_eq!(t.find_containing("京都", usize::MAX), vec![2]);
        assert!(t.find_containing("Zürichsee", usize::MAX).is_empty());
    }

    #[test]
    fn agrees_with_naive_on_corpus() {
        let strings = [
            "almaMater",
            "birthPlace",
            "deathPlace",
            "spouse",
            "placeOfBirth",
            "birthDate",
            "alma mater of",
            "water place",
            "mata hari",
        ];
        let t = SuffixTree::build(strings);
        for pattern in [
            "al", "ma", "Place", "place", "a m", "irth", "spouse", "zz", "e",
        ] {
            let mut got = t.find_containing(pattern, usize::MAX);
            got.sort_unstable();
            let want: Vec<u32> = naive_containing(&strings, pattern)
                .into_iter()
                .map(|i| i as u32)
                .collect();
            assert_eq!(got, want, "pattern {pattern:?}");
        }
    }

    #[test]
    fn empty_pattern_returns_everything_up_to_limit() {
        let t = SuffixTree::build(["a", "b", "c"]);
        assert_eq!(t.find_containing("", 2).len(), 2);
        assert_eq!(t.find_containing("", usize::MAX).len(), 3);
    }

    #[test]
    fn size_accounting_is_positive_and_superlinear_ish() {
        let small = SuffixTree::build(["ab"]);
        let big = SuffixTree::build((0..200).map(|i| format!("some literal value number {i}")));
        assert!(small.approx_bytes() > 0);
        assert!(big.approx_bytes() > small.approx_bytes());
        assert!(big.node_count() > 200);
    }

    #[test]
    fn find_strings_returns_text() {
        let t = SuffixTree::build(["Kennedy", "Kennedys", "Kenneth"]);
        let mut got = t.find_strings("Kennedy", usize::MAX);
        got.sort_unstable();
        assert_eq!(got, vec!["Kennedy", "Kennedys"]);
    }
}
