//! Typed retry/backoff for overloaded services.
//!
//! [`EndpointError::Overloaded`] is back-pressure, not failure: the service
//! is telling the caller to come back later. Before this module every caller
//! hand-rolled that loop; [`Backoff`] is the one shared policy — bounded
//! attempts, exponential delay, and the error's own
//! [retry-after hint](EndpointError::retry_after) folded in — used by
//! [`ServiceEndpoint`](crate::ServiceEndpoint) callers and the cluster
//! router alike.
//!
//! **Jitter.** A bare exponential schedule is a synchronization machine:
//! every caller shed by the same overloaded replica computes the same
//! delays, so the whole cohort returns in lock-step and re-saturates the
//! gate together (coalesced followers that fall back to their own scatter
//! are exactly such a cohort). [`Jitter`] decorrelates them with the
//! AWS-style "decorrelated jitter" schedule — each wait is drawn uniformly
//! from `[base, 3 × previous]`, clamped to `[base, max_delay]` — using a
//! tiny deterministic SplitMix64 stream seeded per caller, so retry timing
//! is reproducible in tests without any `rand` dependency.

use std::time::Duration;

use crate::endpoint::{Endpoint, EndpointError};

/// A deterministic per-caller jitter stream (SplitMix64).
///
/// Cheap to construct, `Copy`-free on purpose (each caller owns and
/// advances its own stream): two callers with different seeds produce
/// different retry schedules, which is the whole point.
#[derive(Debug, Clone)]
pub struct Jitter {
    state: u64,
    prev: Duration,
}

impl Jitter {
    /// A jitter stream for one caller. Distinct seeds give distinct
    /// schedules; the same seed replays the same schedule (deterministic
    /// tests).
    pub fn new(seed: u64) -> Self {
        Jitter {
            // Pre-mix so seeds 0,1,2,… start from well-spread states.
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
            prev: Duration::ZERO,
        }
    }

    /// Next uniform sample in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // SplitMix64 step.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl EndpointError {
    /// The error's retry-after hint: how long the *rejecting side* suggests
    /// waiting before a retry. `Some` only for back-pressure rejections.
    ///
    /// An overloaded service with more requests in flight suggests a longer
    /// wait (1ms per in-flight request, floored at 1ms, capped at 50ms) —
    /// a crude but monotone congestion signal. Everything else (`Timeout`,
    /// `Rejected`, parse/eval errors) is not retryable as-is: retrying the
    /// same query against the same limits fails the same way.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            EndpointError::Overloaded { in_flight } => {
                Some(Duration::from_millis((*in_flight as u64).clamp(1, 50)))
            }
            // A transport failure carries no congestion signal: suggest the
            // minimum wait and let the caller's own backoff schedule grow it.
            // Retryable because the failure is about the *path*, not the
            // query — the next replica (or a reconnect) may answer.
            EndpointError::Unreachable { .. } => Some(Duration::from_millis(1)),
            _ => None,
        }
    }
}

/// A bounded exponential backoff policy for typed overload rejections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Retries after the initial attempt (`0` = try once, never retry).
    pub max_retries: u32,
    /// Delay before the first retry; doubles per subsequent retry.
    pub base: Duration,
    /// Upper bound on any single delay.
    pub max_delay: Duration,
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff {
            max_retries: 3,
            base: Duration::from_millis(1),
            max_delay: Duration::from_millis(100),
        }
    }
}

impl Backoff {
    /// A policy that never retries (useful to disable retry in one place
    /// without restructuring the call site).
    pub fn none() -> Self {
        Backoff {
            max_retries: 0,
            ..Self::default()
        }
    }

    /// The delay before retry number `attempt` (0-based): `base * 2^attempt`
    /// capped at [`max_delay`](Self::max_delay).
    pub fn delay(&self, attempt: u32) -> Duration {
        let exp = self.base.saturating_mul(1u32 << attempt.min(16));
        exp.min(self.max_delay)
    }

    /// The actual wait before retry `attempt` given the rejection `error`:
    /// the larger of the policy's exponential delay and the error's own
    /// retry-after hint.
    pub fn wait_for(&self, attempt: u32, error: &EndpointError) -> Duration {
        let hint = error.retry_after().unwrap_or(Duration::ZERO);
        self.delay(attempt).max(hint).min(self.max_delay)
    }

    /// The decorrelated-jittered wait before the next retry, honoring the
    /// rejection's retry-after hint as a floor and
    /// [`max_delay`](Self::max_delay) as the cap.
    ///
    /// The schedule (per caller, via its own [`Jitter`] stream):
    /// `next = uniform(base, 3 × prev)` clamped to `[base, max_delay]`,
    /// with `prev` starting at `base`. Growth is exponential *in
    /// expectation* but no two callers walk the same sequence — a shed
    /// cohort spreads out instead of returning in lock-step.
    pub fn jittered_wait(&self, error: &EndpointError, jitter: &mut Jitter) -> Duration {
        let base = self.base.max(Duration::from_nanos(1));
        let prev = if jitter.prev.is_zero() {
            base
        } else {
            jitter.prev
        };
        let span = prev
            .saturating_mul(3)
            .min(self.max_delay)
            .saturating_sub(base);
        let drawn = base + span.mul_f64(jitter.next_f64());
        let hint = error.retry_after().unwrap_or(Duration::ZERO);
        let wait = drawn.max(hint).min(self.max_delay);
        jitter.prev = wait.max(base);
        wait
    }

    /// Run `op` with this policy: retry (sleeping [`wait_for`](Self::wait_for))
    /// while it fails with a back-pressure rejection that carries a
    /// retry-after hint, up to `max_retries` retries. Non-retryable errors
    /// and exhausted budgets return the last error unchanged, so callers
    /// still see the typed rejection.
    ///
    /// `op` receives the 0-based attempt number, letting callers vary the
    /// target per attempt (the cluster router fails over to another replica).
    pub fn run<T>(
        &self,
        mut op: impl FnMut(u32) -> Result<T, EndpointError>,
    ) -> Result<T, EndpointError> {
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if attempt >= self.max_retries || e.retry_after().is_none() {
                        return Err(e);
                    }
                    std::thread::sleep(self.wait_for(attempt, &e));
                    attempt += 1;
                }
            }
        }
    }

    /// [`run`](Self::run) with decorrelated jitter: identical retry policy
    /// and typed-error semantics, but the sleeps come from the caller's own
    /// [`Jitter`] stream (`seed`) instead of the shared exponential
    /// schedule — so concurrent callers shed by the same replica do not
    /// retry in lock-step.
    pub fn run_jittered<T>(
        &self,
        seed: u64,
        mut op: impl FnMut(u32) -> Result<T, EndpointError>,
    ) -> Result<T, EndpointError> {
        let mut jitter = Jitter::new(seed);
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if attempt >= self.max_retries || e.retry_after().is_none() {
                        return Err(e);
                    }
                    std::thread::sleep(self.jittered_wait(&e, &mut jitter));
                    attempt += 1;
                }
            }
        }
    }

    /// Execute a parsed query against `endpoint` under this policy — the
    /// common "call a possibly-overloaded [`ServiceEndpoint`]" shape.
    ///
    /// [`ServiceEndpoint`]: crate::ServiceEndpoint
    pub fn execute_parsed(
        &self,
        endpoint: &dyn Endpoint,
        query: &sapphire_sparql::Query,
    ) -> Result<sapphire_sparql::QueryResult, EndpointError> {
        self.run(|_| endpoint.execute_parsed(query))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn overloaded(in_flight: usize) -> EndpointError {
        EndpointError::Overloaded { in_flight }
    }

    #[test]
    fn retry_after_hint_only_for_overload() {
        assert_eq!(
            overloaded(3).retry_after(),
            Some(Duration::from_millis(3)),
            "hint scales with in-flight count"
        );
        assert_eq!(
            overloaded(0).retry_after(),
            Some(Duration::from_millis(1)),
            "floored so a hint is never zero"
        );
        assert_eq!(
            overloaded(10_000).retry_after(),
            Some(Duration::from_millis(50)),
            "capped"
        );
        assert_eq!(EndpointError::Timeout { work_used: 9 }.retry_after(), None);
        assert_eq!(
            EndpointError::Rejected { estimated_cost: 9 }.retry_after(),
            None
        );
        assert_eq!(EndpointError::Parse("x".into()).retry_after(), None);
    }

    #[test]
    fn delays_are_exponential_and_capped() {
        let b = Backoff {
            max_retries: 8,
            base: Duration::from_millis(2),
            max_delay: Duration::from_millis(10),
        };
        assert_eq!(b.delay(0), Duration::from_millis(2));
        assert_eq!(b.delay(1), Duration::from_millis(4));
        assert_eq!(b.delay(2), Duration::from_millis(8));
        assert_eq!(b.delay(3), Duration::from_millis(10), "capped");
        assert_eq!(b.delay(60), Duration::from_millis(10), "no shift overflow");
    }

    #[test]
    fn wait_takes_the_larger_of_delay_and_hint() {
        let b = Backoff {
            max_retries: 3,
            base: Duration::from_millis(1),
            max_delay: Duration::from_millis(100),
        };
        // Hint (7ms) dominates the first delay (1ms)…
        assert_eq!(b.wait_for(0, &overloaded(7)), Duration::from_millis(7));
        // …the exponential delay dominates once it catches up.
        assert_eq!(b.wait_for(4, &overloaded(7)), Duration::from_millis(16));
    }

    /// Regression (issue 4 satellite): retry waits must not be a pure
    /// function of the attempt number, or every caller shed together
    /// retries together. With jitter, two callers (distinct seeds) walk
    /// different schedules; the same seed replays the same schedule.
    #[test]
    fn jittered_waits_are_decorrelated_across_callers_and_deterministic() {
        let b = Backoff {
            max_retries: 8,
            base: Duration::from_millis(2),
            max_delay: Duration::from_millis(100),
        };
        let schedule = |seed: u64| -> Vec<Duration> {
            let mut j = Jitter::new(seed);
            (0..8)
                .map(|_| b.jittered_wait(&overloaded(0), &mut j))
                .collect()
        };
        let a = schedule(1);
        let c = schedule(2);
        assert_eq!(a, schedule(1), "same seed, same schedule");
        assert_ne!(a, c, "different callers, different schedules");
        // Lock-step is the bug: pre-fix, every caller's wait for attempt i
        // was exactly `delay(i).max(hint)` — identical across callers.
        let fixed: Vec<Duration> = (0..8).map(|i| b.wait_for(i, &overloaded(0))).collect();
        assert_ne!(a, fixed, "jitter diverges from the fixed schedule");
    }

    #[test]
    fn jittered_waits_stay_within_the_policy_bounds() {
        let b = Backoff {
            max_retries: 64,
            base: Duration::from_millis(2),
            max_delay: Duration::from_millis(20),
        };
        for seed in 0..32 {
            let mut j = Jitter::new(seed);
            for i in 0..64 {
                let w = b.jittered_wait(&overloaded(0), &mut j);
                assert!(
                    w >= b.base && w <= b.max_delay,
                    "seed {seed} attempt {i}: {w:?} outside [{:?}, {:?}]",
                    b.base,
                    b.max_delay
                );
            }
        }
    }

    #[test]
    fn jittered_wait_honors_the_retry_after_hint_as_a_floor() {
        let b = Backoff {
            max_retries: 4,
            base: Duration::from_millis(1),
            max_delay: Duration::from_millis(100),
        };
        for seed in 0..16 {
            let mut j = Jitter::new(seed);
            let w = b.jittered_wait(&overloaded(40), &mut j);
            assert!(
                w >= Duration::from_millis(40),
                "hint floors the wait: {w:?}"
            );
            assert!(w <= b.max_delay);
        }
    }

    #[test]
    fn run_jittered_keeps_the_typed_retry_semantics() {
        let calls = AtomicU32::new(0);
        let b = Backoff {
            max_retries: 5,
            base: Duration::from_micros(10),
            max_delay: Duration::from_micros(50),
        };
        let result = b.run_jittered(7, |attempt| {
            calls.fetch_add(1, Ordering::Relaxed);
            if attempt < 2 {
                Err(overloaded(1))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(result, Ok(2));
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        // Non-retryable errors still short-circuit.
        let calls = AtomicU32::new(0);
        let result: Result<(), _> = b.run_jittered(7, |_| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(EndpointError::Timeout { work_used: 1 })
        });
        assert_eq!(result, Err(EndpointError::Timeout { work_used: 1 }));
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn run_retries_overload_until_success() {
        let calls = AtomicU32::new(0);
        let b = Backoff {
            max_retries: 5,
            base: Duration::from_micros(10),
            max_delay: Duration::from_micros(50),
        };
        let result = b.run(|attempt| {
            calls.fetch_add(1, Ordering::Relaxed);
            if attempt < 2 {
                Err(overloaded(1))
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(result, Ok(2));
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn run_gives_up_after_budget_with_the_typed_error() {
        let calls = AtomicU32::new(0);
        let b = Backoff {
            max_retries: 2,
            base: Duration::from_micros(10),
            max_delay: Duration::from_micros(50),
        };
        let result: Result<(), _> = b.run(|_| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(overloaded(4))
        });
        assert_eq!(result, Err(overloaded(4)), "last typed error surfaces");
        assert_eq!(calls.load(Ordering::Relaxed), 3, "1 attempt + 2 retries");
    }

    #[test]
    fn run_never_retries_non_retryable_errors() {
        let calls = AtomicU32::new(0);
        let result: Result<(), _> = Backoff::default().run(|_| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(EndpointError::Timeout { work_used: 1 })
        });
        assert_eq!(result, Err(EndpointError::Timeout { work_used: 1 }));
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn none_policy_tries_exactly_once() {
        let calls = AtomicU32::new(0);
        let result: Result<(), _> = Backoff::none().run(|_| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(overloaded(1))
        });
        assert!(result.is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn execute_parsed_retries_an_overloaded_service_endpoint() {
        use crate::endpoint::{EndpointLimits, LocalEndpoint};
        use crate::service::{QueryService, ServiceEndpoint, ServiceError};
        use sapphire_sparql::{parse_query, Query, QueryResult};
        use std::sync::Arc;

        // Sheds the first N requests, then answers — the shape a briefly
        // saturated admission gate presents.
        struct Shedding {
            inner: LocalEndpoint,
            remaining: AtomicU32,
        }
        impl QueryService for Shedding {
            fn service_name(&self) -> &str {
                "shedding"
            }
            fn execute_query(
                &self,
                _tenant: &str,
                query: &Query,
            ) -> Result<QueryResult, ServiceError> {
                if self
                    .remaining
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
                    .is_ok()
                {
                    return Err(ServiceError::Overloaded {
                        in_flight: 2,
                        queue_depth: 0,
                    });
                }
                self.inner
                    .execute_parsed(query)
                    .map_err(ServiceError::Backend)
            }
        }

        let g = sapphire_rdf::turtle::parse("res:A a dbo:Thing .").unwrap();
        let service = Arc::new(Shedding {
            inner: LocalEndpoint::new("inner", g, EndpointLimits::warehouse()),
            remaining: AtomicU32::new(2),
        });
        let ep = ServiceEndpoint::new(service, "tenant");
        let q = parse_query("SELECT ?s WHERE { ?s a dbo:Thing }").unwrap();
        let policy = Backoff {
            max_retries: 3,
            base: Duration::from_micros(10),
            max_delay: Duration::from_micros(100),
        };
        let result = policy.execute_parsed(&ep, &q).unwrap();
        assert!(matches!(result, QueryResult::Solutions(s) if s.len() == 1));
    }
}
