//! String similarity measures.
//!
//! The QSM ranks alternative predicates and literals by Jaro-Winkler
//! similarity with threshold θ = 0.7 (§6.2.1). The paper reports that JW
//! "outperforms other similarity measures in our context" — normalized
//! Levenshtein is provided so the ablation bench can check that claim.

/// Jaro similarity in `[0, 1]`.
///
/// Counts matching characters within the standard window
/// `max(|a|,|b|)/2 - 1` and discounts transpositions.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    if a == b {
        return 1.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_matched = vec![false; b.len()];
    let mut a_matches: Vec<char> = Vec::new();
    // First pass: find matches for characters of `a` in order.
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == ca {
                b_matched[j] = true;
                a_matches.push(ca);
                break;
            }
        }
    }
    let m = a_matches.len();
    if m == 0 {
        return 0.0;
    }
    // Second pass: matched characters of `b`, in order.
    let b_matches: Vec<char> = b
        .iter()
        .zip(b_matched.iter())
        .filter(|(_, &used)| used)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = a_matches
        .iter()
        .zip(b_matches.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by a shared prefix (up to 4 chars)
/// with the standard scaling factor `p = 0.1`. This "gives a more favorable
/// score to strings that match from the beginning" (§6.2.1) — exactly the
/// behaviour wanted for typo-tolerant term matching ("Kennedys" → "Kennedy").
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    const PREFIX_SCALE: f64 = 0.1;
    const MAX_PREFIX: usize = 4;
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(MAX_PREFIX)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * PREFIX_SCALE * (1.0 - j)
}

/// Case-insensitive Jaro-Winkler — what the QSM actually uses, since users
/// type lowercase keywords against mixed-case data.
pub fn jaro_winkler_ci(a: &str, b: &str) -> f64 {
    jaro_winkler(&a.to_lowercase(), &b.to_lowercase())
}

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized Levenshtein similarity in `[0, 1]` (1 − distance / max-length).
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(x: f64, y: f64) {
        assert!((x - y).abs() < 1e-9, "{x} != {y}");
    }

    #[test]
    fn jaro_reference_values() {
        // Classic textbook pairs.
        approx(jaro("MARTHA", "MARHTA"), 0.944_444_444_444_444_4);
        approx(jaro("DIXON", "DICKSONX"), 0.766_666_666_666_666_6);
        approx(jaro("JELLYFISH", "SMELLYFISH"), 0.896_296_296_296_296_2);
    }

    #[test]
    fn jaro_winkler_reference_values() {
        approx(jaro_winkler("MARTHA", "MARHTA"), 0.961_111_111_111_111_1);
        approx(jaro_winkler("DIXON", "DICKSONX"), 0.813_333_333_333_333_3);
    }

    #[test]
    fn identical_and_disjoint() {
        approx(jaro("abc", "abc"), 1.0);
        approx(jaro_winkler("abc", "abc"), 1.0);
        approx(jaro("abc", "xyz"), 0.0);
        approx(jaro("", ""), 1.0);
        approx(jaro("", "abc"), 0.0);
    }

    #[test]
    fn kennedys_vs_kennedy_clears_theta() {
        // The Figure 2 walkthrough: the misspelled "Kennedys" must find
        // "Kennedy" at θ = 0.7.
        assert!(jaro_winkler("Kennedys", "Kennedy") > 0.9);
    }

    #[test]
    fn wife_vs_spouse_below_theta() {
        // Lexically dissimilar synonyms are *not* JW matches — that is the
        // lexicon's job (§6.2.1).
        assert!(jaro_winkler("wife", "spouse") < 0.7);
    }

    #[test]
    fn prefix_boost_prefers_shared_prefix() {
        // Same Jaro ingredients, different prefixes.
        let with_prefix = jaro_winkler("prefix_abc", "prefix_abd");
        let without = jaro_winkler("xprefix_ab", "yprefix_ab");
        assert!(with_prefix > without);
    }

    #[test]
    fn symmetry() {
        for (a, b) in [
            ("Viking Press", "The Viking Press"),
            ("abc", "cba"),
            ("", "x"),
        ] {
            approx(jaro(a, b), jaro(b, a));
            approx(jaro_winkler(a, b), jaro_winkler(b, a));
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn levenshtein_reference() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        approx(levenshtein_similarity("abc", "abc"), 1.0);
        approx(levenshtein_similarity("", ""), 1.0);
    }

    #[test]
    fn case_insensitive_variant() {
        assert!(jaro_winkler_ci("kennedy", "Kennedy") > 0.999);
        assert!(jaro_winkler("kennedy", "Kennedy") < 1.0);
    }
}
