//! Regenerates **Figures 8–11** (the §7.1 user study) and the §7.3.2 QSM
//! usage breakdown, with 16 simulated participants (see DESIGN.md for the
//! human-participant substitution).
//!
//! Usage: `cargo run -p sapphire-bench --bin user_study --release [--scale tiny|small|medium]`

use sapphire_baselines::ComparisonHarness;
use sapphire_bench::{bar, experiment_config, heading, scale_from_args};
use sapphire_datagen::userstudy::{run_study, StudyConfig};
use sapphire_datagen::workload::{appendix_b, gold_answers, Difficulty};

fn main() {
    let dataset = scale_from_args();
    println!("(building harness: dataset + initialization + QAKiS…)");
    let harness = ComparisonHarness::build(dataset, experiment_config());
    let questions = appendix_b();
    let config = StudyConfig::default();
    let endpoint = harness.endpoint.clone();
    let gold = |q: &sapphire_datagen::workload::Question| gold_answers(q, endpoint.as_ref());

    let (sapphire, qakis) = run_study(&harness.pum, &harness.qakis, &questions, &gold, &config);

    let difficulties = [Difficulty::Easy, Difficulty::Medium, Difficulty::Difficult];

    println!(
        "{}",
        heading("Figure 8 — Success rate of answering questions (%)")
    );
    for d in difficulties {
        println!(
            "{}",
            bar(&format!("{d} / QAKiS"), qakis.success_rate(d), 100.0, 40)
        );
        println!(
            "{}   (95% CI ±{:.1})",
            bar(
                &format!("{d} / Sapphire"),
                sapphire.success_rate(d),
                100.0,
                40
            ),
            sapphire.success_ci(d, config.participants)
        );
    }

    println!(
        "{}",
        heading("Figure 9 — % of questions answered by ≥1 participant")
    );
    for d in difficulties {
        println!(
            "{}",
            bar(
                &format!("{d} / QAKiS"),
                qakis.pct_answered_by_any(d),
                100.0,
                40
            )
        );
        println!(
            "{}",
            bar(
                &format!("{d} / Sapphire"),
                sapphire.pct_answered_by_any(d),
                100.0,
                40
            )
        );
    }

    println!(
        "{}",
        heading("Figure 10 — Average number of attempts before finding an answer")
    );
    for d in difficulties {
        println!(
            "{}",
            bar(&format!("{d} / QAKiS"), qakis.avg_attempts(d), 6.0, 40)
        );
        println!(
            "{}",
            bar(
                &format!("{d} / Sapphire"),
                sapphire.avg_attempts(d),
                6.0,
                40
            )
        );
    }

    println!(
        "{}",
        heading("Figure 11 — Average time spent on answered questions (minutes)")
    );
    for d in difficulties {
        println!(
            "{}",
            bar(&format!("{d} / QAKiS"), qakis.avg_time_minutes(d), 7.0, 40)
        );
        println!(
            "{}",
            bar(
                &format!("{d} / Sapphire"),
                sapphire.avg_time_minutes(d),
                7.0,
                40
            )
        );
    }

    let (pred, lit, relax, any) = sapphire.suggestion_usage();
    println!(
        "{}",
        heading("§7.3.2 — QSM suggestion usage (fraction of questions, %)")
    );
    println!("alternative predicates: {pred:.0}%   (paper: 28%)");
    println!("alternative literals:   {lit:.0}%   (paper: 17%)");
    println!("relaxed structure:      {relax:.0}%   (paper: 67%)");
    println!("any suggestion:         {any:.0}%   (paper: >90%)");

    println!("{}", heading("shape checks"));
    let med_gap =
        sapphire.success_rate(Difficulty::Medium) - qakis.success_rate(Difficulty::Medium);
    let diff_gap =
        sapphire.success_rate(Difficulty::Difficult) - qakis.success_rate(Difficulty::Difficult);
    let easy_gap = sapphire.success_rate(Difficulty::Easy) - qakis.success_rate(Difficulty::Easy);
    println!("  medium gap (Sapphire − QAKiS):    {med_gap:+.1} pp (paper: ≈ +30)");
    println!("  difficult gap (Sapphire − QAKiS): {diff_gap:+.1} pp (paper: ≈ +45, widest)");
    println!(
        "  gap widens with difficulty:       {}",
        diff_gap >= med_gap && med_gap > easy_gap - 10.0
    );
    let time_ok = difficulties
        .iter()
        .all(|&d| sapphire.avg_time_minutes(d) >= qakis.avg_time_minutes(d));
    println!("  Sapphire costs more time (Fig 11): {time_ok}");
    println!(
        "  every question answered by someone with Sapphire (Fig 9): {}",
        difficulties
            .iter()
            .all(|&d| sapphire.pct_answered_by_any(d) >= 99.9)
    );
}
