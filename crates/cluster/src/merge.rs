//! Deterministic scatter-gather merges.
//!
//! Every cluster answer is assembled from per-shard answer lists, and the
//! assembly must be a *pure, order-insensitive* function of those lists:
//! replicas reply in nondeterministic order, shards finish in
//! nondeterministic order, and yet two identical requests must produce
//! byte-identical cluster answers — that is what makes a sharded deployment
//! testable against a single-box oracle at all.
//!
//! The rule everywhere is **score-then-key**: items are ranked by their
//! semantic score (match source, similarity, ORDER BY keys) and every tie is
//! broken by a total order over the item's own content (its key), never by
//! arrival order. Merging the single-box oracle's own answer list through
//! the same functions is the identity on the content and canonicalizes the
//! order, so "cluster == merge(oracle)" is a byte-level equality check.

use sapphire_core::qcm::Completion;
use sapphire_core::qsm::TermAlternative;
use sapphire_core::MatchSource;
use sapphire_rdf::Term;
use sapphire_sparql::{Aggregate, Projection, SelectItem, SelectQuery, Solutions};

/// The canonical rank of one completion: suffix-tree matches before
/// residual-bin matches (the QCM's own contract), predicates before literals
/// within the tree (the tree is built predicates-first), then shortest text
/// first (the QCM's residual preference), then text and IRI as the final
/// total-order key.
fn completion_rank(c: &Completion) -> (u8, u8, usize, &str, Option<&str>) {
    let source = match c.source {
        MatchSource::SuffixTree => 0u8,
        MatchSource::ResidualBins => 1,
    };
    let kind = if c.predicate_iri.is_some() { 0u8 } else { 1 };
    (
        source,
        kind,
        c.text.chars().count(),
        c.text.as_str(),
        c.predicate_iri.as_deref(),
    )
}

/// Merge per-shard completion lists into the canonical cluster top-`k`.
///
/// Duplicates (same text and predicate IRI, surfaced by several shards) keep
/// their strongest source: a literal significant on *any* shard ranks as a
/// tree match. Input list order and order within each list never affect the
/// result.
pub fn merge_completions(lists: Vec<Vec<Completion>>, k: usize) -> Vec<Completion> {
    let mut all: Vec<Completion> = lists.into_iter().flatten().collect();
    // Dedup first, keeping the strongest source per (text, iri) identity…
    all.sort_by(|a, b| {
        (a.text.as_str(), a.predicate_iri.as_deref())
            .cmp(&(b.text.as_str(), b.predicate_iri.as_deref()))
            .then_with(|| completion_rank(a).cmp(&completion_rank(b)))
    });
    all.dedup_by(|later, first| {
        later.text == first.text && later.predicate_iri == first.predicate_iri
    });
    // …then rank canonically and truncate.
    all.sort_by(|a, b| completion_rank(a).cmp(&completion_rank(b)));
    all.truncate(k);
    all
}

/// Numeric-aware term comparison for ORDER BY keys (mirrors the federated
/// processor: numbers compare numerically, everything else lexically, and
/// unbound sorts first).
fn cmp_order_terms(a: &Option<Term>, b: &Option<Term>) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Less,
        (Some(_), None) => Ordering::Greater,
        (Some(x), Some(y)) => {
            let nx = x.as_literal().and_then(|l| l.as_f64());
            let ny = y.as_literal().and_then(|l| l.as_f64());
            match (nx, ny) {
                (Some(p), Some(q)) => p.partial_cmp(&q).unwrap_or(Ordering::Equal),
                _ => x.lexical().cmp(y.lexical()),
            }
        }
    }
}

/// Merge per-shard solution sets for one query into the canonical cluster
/// answer: concatenate, dedup when the query is DISTINCT, sort by the
/// query's ORDER BY keys with a whole-row total-order tie-break, and apply
/// OFFSET/LIMIT last (the router strips the slice before scattering, so
/// shards never pre-truncate).
pub fn merge_solutions(query: &SelectQuery, lists: Vec<Solutions>) -> Solutions {
    let mut merged = Solutions::default();
    let mut rows: Vec<Vec<Option<Term>>> = Vec::new();
    for list in lists {
        if merged.vars.is_empty() {
            merged.vars = list.vars;
        }
        rows.extend(list.rows);
    }
    if query.distinct {
        rows.sort();
        rows.dedup();
    }
    let keys: Vec<(Option<usize>, bool)> = query
        .order_by
        .iter()
        .map(|key| {
            let col = match &key.expr {
                sapphire_sparql::Expr::Var(v) => merged.vars.iter().position(|x| x == v),
                _ => None,
            };
            (col, key.descending)
        })
        .collect();
    rows.sort_by(|a, b| {
        for (col, desc) in &keys {
            if let Some(c) = col {
                let ord = cmp_order_terms(&a[*c], &b[*c]);
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
        }
        a.cmp(b)
    });
    if let Some(offset) = query.offset {
        rows.drain(..offset.min(rows.len()));
    }
    if let Some(limit) = query.limit {
        rows.truncate(limit);
    }
    merged.rows = rows;
    merged
}

/// Merge *full-binding* (`SELECT *`) shard rows exactly, then apply the
/// query's own projection, DISTINCT, ORDER BY, and slice.
///
/// The router scatters pattern queries with a star projection precisely so
/// this merge can deduplicate **full bindings** first: over a BGP, solutions
/// are distinct bindings (a graph is a *set* of triples), so an identical
/// full binding arriving from two shards can only be a replica artifact of
/// the schema slice — e.g. `?s rdfs:subClassOf ?o` matches the replicated
/// hierarchy on every shard. Deduplicating *after* projection would be
/// wrong the other way: projection legitimately collapses distinct bindings
/// onto equal rows, and a non-DISTINCT query keeps those duplicates. So:
/// dedup bindings, then project, then hand off to [`merge_solutions`] for
/// the query's own DISTINCT/ORDER/slice semantics.
pub fn merge_bindings(query: &SelectQuery, lists: Vec<Solutions>) -> Solutions {
    let mut full = Solutions::default();
    for list in lists {
        if full.vars.is_empty() {
            full.vars = list.vars;
        }
        full.rows.extend(list.rows);
    }
    full.rows.sort();
    full.rows.dedup();
    let projected = match &query.projection {
        Projection::Star => full,
        Projection::Items(items) => {
            let names: Vec<String> = items
                .iter()
                .filter_map(|item| match item {
                    SelectItem::Var(v) => Some(v.clone()),
                    SelectItem::Agg { .. } => None,
                })
                .collect();
            let columns: Vec<Option<usize>> = names
                .iter()
                .map(|n| full.vars.iter().position(|v| v == n))
                .collect();
            Solutions {
                rows: full
                    .rows
                    .iter()
                    .map(|row| {
                        columns
                            .iter()
                            .map(|c| c.and_then(|c| row[c].clone()))
                            .collect()
                    })
                    .collect(),
                vars: names,
            }
        }
    };
    merge_solutions(query, vec![projected])
}

/// The single-aggregate COUNT shape the session UI produces
/// (`SELECT (COUNT(?v) AS ?alias)`, no GROUP BY): the one aggregate a
/// scatter can still answer exactly, by counting over the merged rows
/// instead of summing pre-aggregated per-shard counts (which would be wrong
/// for DISTINCT counts). Returns `(counted var, distinct, alias)`.
pub fn count_shape(query: &SelectQuery) -> Option<(Option<String>, bool, String)> {
    if !query.group_by.is_empty() {
        return None;
    }
    let Projection::Items(items) = &query.projection else {
        return None;
    };
    let [SelectItem::Agg {
        agg: Aggregate::Count { distinct, var },
        alias,
    }] = items.as_slice()
    else {
        return None;
    };
    Some((var.clone(), *distinct, alias.clone()))
}

/// Evaluate a [`count_shape`] aggregate over merged (unaggregated) rows.
pub fn count_rows(
    merged: &Solutions,
    var: &Option<String>,
    distinct: bool,
    alias: &str,
) -> Solutions {
    let n = match var {
        Some(v) => {
            let col = merged.vars.iter().position(|x| x == v);
            let mut values: Vec<&Term> = merged
                .rows
                .iter()
                .filter_map(|row| col.and_then(|c| row[c].as_ref()))
                .collect();
            if distinct {
                values.sort();
                values.dedup();
            }
            values.len()
        }
        None => merged.rows.len(),
    };
    Solutions {
        vars: vec![alias.to_string()],
        rows: vec![vec![Some(Term::Literal(sapphire_rdf::Literal::integer(
            n as i64,
        )))]],
    }
}

/// A query stripped of its OFFSET/LIMIT slice: shards (and the single-box
/// oracle, when canonicalizing its answers for comparison) must never
/// pre-truncate, because the top-k cut is only correct after the global
/// merge — the edge owns the slice.
pub fn strip_slice(query: &SelectQuery) -> SelectQuery {
    let mut q = query.clone();
    q.limit = None;
    q.offset = None;
    q
}

/// The canonical identity of a "did you mean" rewrite: which triple, which
/// position, which replacement text.
fn alternative_key(alt: &TermAlternative) -> (usize, u8, &str) {
    let position = match alt.position {
        sapphire_core::qsm::AlteredPosition::Predicate => 0u8,
        sapphire_core::qsm::AlteredPosition::Object => 1,
    };
    (alt.triple_index, position, alt.replacement.as_str())
}

/// Collapse per-shard alternative lists into one candidate per rewrite
/// identity. Similarity is a pure string function, so duplicates agree on
/// it; the surviving candidate is simply the canonical representative. The
/// prefetched `answers` of the survivors are shard-local fragments and are
/// *not* merged here — the router re-prefetches each surviving rewrite
/// cluster-wide so accepted suggestions show the global answer set.
pub fn dedup_alternatives(lists: Vec<Vec<TermAlternative>>) -> Vec<TermAlternative> {
    let mut all: Vec<TermAlternative> = lists.into_iter().flatten().collect();
    all.sort_by(|a, b| alternative_key(a).cmp(&alternative_key(b)));
    all.dedup_by(|later, first| alternative_key(later) == alternative_key(first));
    all
}

/// Sort alternatives into canonical presentation order: predicate rewrites
/// first, then literal rewrites, each kind by similarity (descending) with
/// the rewrite identity as tie-break. Similarity is a pure string function,
/// so the order is identical no matter which shard surfaced a candidate.
pub fn sort_alternatives(alts: &mut [TermAlternative]) {
    alts.sort_by(|a, b| {
        let (ai, ap, ar) = alternative_key(a);
        let (bi, bp, br) = alternative_key(b);
        ap.cmp(&bp)
            .then_with(|| {
                b.similarity
                    .partial_cmp(&a.similarity)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| (ar, ai).cmp(&(br, bi)))
    });
}

/// Rank deduplicated, globally-prefetched alternatives the way the QSM
/// presents them ([`sort_alternatives`]), keeping at most `k/2` per kind —
/// Algorithm 2's presentation contract, made deterministic.
pub fn rank_alternatives(mut alts: Vec<TermAlternative>, k: usize) -> Vec<TermAlternative> {
    sort_alternatives(&mut alts);
    let half = (k / 2).max(1);
    let mut predicates = 0usize;
    let mut literals = 0usize;
    alts.retain(|alt| match alt.position {
        sapphire_core::qsm::AlteredPosition::Predicate => {
            predicates += 1;
            predicates <= half
        }
        sapphire_core::qsm::AlteredPosition::Object => {
            literals += 1;
            literals <= half
        }
    });
    alts
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapphire_sparql::parse_select;

    fn completion(text: &str, iri: Option<&str>, source: MatchSource) -> Completion {
        Completion {
            text: text.to_string(),
            predicate_iri: iri.map(String::from),
            source,
        }
    }

    #[test]
    fn completions_merge_is_order_insensitive_and_deduped() {
        let a = vec![
            completion("Kennedy", None, MatchSource::SuffixTree),
            completion("surname", Some("http://x/surname"), MatchSource::SuffixTree),
        ];
        let b = vec![
            completion("Kennedy", None, MatchSource::ResidualBins),
            completion("Kenneth", None, MatchSource::ResidualBins),
        ];
        let forward = merge_completions(vec![a.clone(), b.clone()], 10);
        let backward = merge_completions(vec![b, a], 10);
        assert_eq!(forward, backward);
        assert_eq!(forward.len(), 3);
        // The predicate leads (tree + predicate kind), Kennedy keeps its
        // strongest source.
        assert_eq!(forward[0].text, "surname");
        assert_eq!(forward[1].text, "Kennedy");
        assert_eq!(forward[1].source, MatchSource::SuffixTree);
        assert_eq!(forward[2].source, MatchSource::ResidualBins);
    }

    #[test]
    fn completions_truncate_to_k_by_rank() {
        let list: Vec<Completion> = (0..10)
            .map(|i| completion(&format!("lit{i:02}"), None, MatchSource::ResidualBins))
            .collect();
        let merged = merge_completions(vec![list], 3);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged[0].text, "lit00");
    }

    #[test]
    fn solutions_merge_sorts_slices_and_dedups_distinct() {
        let q = parse_select(
            "SELECT DISTINCT ?s WHERE { ?s <http://x/p> ?o } ORDER BY ?s LIMIT 3 OFFSET 1",
        )
        .unwrap();
        let rows = |names: &[&str]| Solutions {
            vars: vec!["s".into()],
            rows: names
                .iter()
                .map(|n| vec![Some(Term::iri(format!("http://x/{n}")))])
                .collect(),
        };
        let merged = merge_solutions(&q, vec![rows(&["c", "a"]), rows(&["b", "a", "d", "e"])]);
        // distinct dedups the shared "a", ORDER BY sorts, OFFSET 1 drops
        // "a", LIMIT 3 keeps b..d.
        let names: Vec<&str> = merged
            .rows
            .iter()
            .map(|r| r[0].as_ref().unwrap().lexical())
            .collect();
        assert_eq!(
            names,
            vec!["http://x/b", "http://x/c", "http://x/d"],
            "{merged:?}"
        );
    }

    #[test]
    fn solutions_merge_keeps_duplicates_without_distinct() {
        let q = parse_select("SELECT ?o WHERE { ?s <http://x/p> ?o }").unwrap();
        let one = Solutions {
            vars: vec!["o".into()],
            rows: vec![vec![Some(Term::en("x"))]],
        };
        let merged = merge_solutions(&q, vec![one.clone(), one]);
        assert_eq!(merged.rows.len(), 2, "multiset semantics preserved");
    }

    #[test]
    fn count_shape_detects_the_session_aggregate() {
        let q = parse_select("SELECT ?s WHERE { ?s ?p ?o }").unwrap();
        assert!(count_shape(&q).is_none());
        let mut counted = q.clone();
        counted.projection = Projection::Items(vec![SelectItem::Agg {
            agg: Aggregate::Count {
                distinct: true,
                var: Some("s".into()),
            },
            alias: "count".into(),
        }]);
        assert_eq!(
            count_shape(&counted),
            Some((Some("s".into()), true, "count".into()))
        );
    }

    #[test]
    fn count_rows_is_distinct_across_shard_fragments() {
        let merged = Solutions {
            vars: vec!["s".into()],
            rows: vec![
                vec![Some(Term::iri("http://x/a"))],
                vec![Some(Term::iri("http://x/a"))],
                vec![Some(Term::iri("http://x/b"))],
                vec![None],
            ],
        };
        let distinct = count_rows(&merged, &Some("s".into()), true, "count");
        assert_eq!(distinct.vars, vec!["count"]);
        assert_eq!(
            distinct.rows[0][0].as_ref().unwrap().lexical(),
            "2",
            "distinct count ignores duplicates and unbound"
        );
        let plain = count_rows(&merged, &Some("s".into()), false, "count");
        assert_eq!(plain.rows[0][0].as_ref().unwrap().lexical(), "3");
        let star = count_rows(&merged, &None, false, "count");
        assert_eq!(star.rows[0][0].as_ref().unwrap().lexical(), "4");
    }
}
