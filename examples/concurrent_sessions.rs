//! Two users compose the paper's §4 walkthrough queries at the same time
//! against ONE shared `SapphireServer` — one model, two sessions, live
//! completions, typed suggestions, and an accepted "did you mean".
//!
//! Run with: `cargo run -p sapphire-bench --example concurrent_sessions`

use std::sync::Arc;

use sapphire_core::prelude::*;
use sapphire_core::InitMode;
use sapphire_server::{SapphireServer, ServerConfig};

const DATA: &str = r#"
dbo:Person a owl:Class .
res:JFK a dbo:Person ; dbo:surname "Kennedy"@en ; dbo:name "John F. Kennedy"@en ;
    dbo:birthPlace res:Brookline .
res:RFK a dbo:Person ; dbo:surname "Kennedy"@en ; dbo:name "Robert F. Kennedy"@en ;
    dbo:birthPlace res:Brookline .
res:Jack a dbo:Person ; dbo:surname "Kerouac"@en ; dbo:name "Jack Kerouac"@en ;
    dbo:birthPlace res:Lowell .
res:Brookline a dbo:Town ; dbo:name "Brookline"@en .
res:Lowell a dbo:Town ; dbo:name "Lowell"@en .
"#;

fn main() {
    // One shared model: graph + cache + lexica, initialized once.
    let ep: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
        "dbpedia",
        sapphire_rdf::turtle::parse(DATA).unwrap(),
        EndpointLimits::warehouse(),
    ));
    let pum = Arc::new(
        PredictiveUserModel::initialize(
            vec![ep],
            Lexicon::dbpedia_default(),
            SapphireConfig::for_tests(),
            InitMode::Federated,
        )
        .unwrap(),
    );
    let server = Arc::new(SapphireServer::new(pum, ServerConfig::default()));

    let alice = {
        let server = server.clone();
        std::thread::spawn(move || {
            // Alice reproduces Figure 2: a misspelled literal, then accepts
            // the QSM's "did you mean Kennedy".
            let s = server.open_session("alice").unwrap();
            let typed = server.complete(s, "Kenn").unwrap();
            println!(
                "[alice] typing \"Kenn\" suggests: {:?}",
                typed
                    .suggestions
                    .iter()
                    .map(|c| c.text.as_str())
                    .collect::<Vec<_>>()
            );
            server
                .set_row(s, 0, TripleInput::new("?person", "surname", "Kennedys"))
                .unwrap();
            let out = server.run(s).unwrap();
            println!(
                "[alice] run #{}: {} answers, {} alternatives",
                out.attempts,
                out.answers.total_rows(),
                out.suggestions.alternatives.len()
            );
            let idx = out
                .suggestions
                .alternatives
                .iter()
                .position(|a| a.replacement == "Kennedy")
                .expect("Kennedy alternative");
            let table = server.apply_alternative(s, idx).unwrap();
            println!(
                "[alice] accepted \"Kennedy\": {} prefetched answers",
                table.total_rows()
            );
            server.close_session(s);
        })
    };

    let bob = {
        let server = server.clone();
        std::thread::spawn(move || {
            // Bob composes a two-pattern query with keyword predicates:
            // people and the names of their birth places.
            let s = server.open_session("bob").unwrap();
            let typed = server.complete(s, "birth").unwrap();
            println!(
                "[bob]   typing \"birth\" suggests: {:?}",
                typed
                    .suggestions
                    .iter()
                    .map(|c| c.text.as_str())
                    .collect::<Vec<_>>()
            );
            server
                .set_row(s, 0, TripleInput::new("?who", "birth place", "?town"))
                .unwrap();
            server
                .set_row(s, 1, TripleInput::new("?town", "name", "?where"))
                .unwrap();
            let out = server.run(s).unwrap();
            println!(
                "[bob]   run #{}: {} answers (executed: {})",
                out.attempts,
                out.answers.total_rows(),
                out.executed
            );
            server.close_session(s);
        })
    };

    alice.join().unwrap();
    bob.join().unwrap();

    let m = server.metrics();
    println!(
        "\nserver: {} completions + {} runs served, cache {}/{} hits/misses, {} sessions left open",
        m.completion_requests,
        m.run_requests,
        m.completion_cache.hits + m.run_cache.hits,
        m.completion_cache.misses + m.run_cache.misses,
        m.open_sessions
    );
}
