//! Subject-hash dataset partitioning for scale-out deployments.
//!
//! A single in-memory [`Graph`] stops scaling long before "millions of
//! users"; production RDF stores split the dataset across machines. This
//! module provides the deterministic split the cluster tier builds on:
//!
//! * **Hash-by-subject** — every data triple lands on the shard of its
//!   subject, so the *subject star* of an entity (all of its outgoing
//!   triples, including its `rdf:type` and its literals) is co-located.
//!   Subject-rooted queries — the shape interactive Sapphire sessions
//!   produce — therefore evaluate exactly on one shard each, and a
//!   cross-shard union of shard-local answers equals the single-box answer
//!   set.
//! * **Schema replication** — triples *about classes* (`rdfs:subClassOf`
//!   edges, class declarations, class labels) are copied to every shard, so
//!   each shard can answer the structural probes initialization and the QCM
//!   depend on (class-hierarchy descent, type-frequency statistics) without
//!   a cross-shard hop.
//!
//! The split is a pure function of the graph and the shard count: the same
//! dataset partitions the same way on every run and every machine, which is
//! what makes cluster answers reproducible against a single-box oracle.

use crate::{vocab, Graph, Term};

/// Deterministic shard assignment for a subject term.
///
/// FNV-1a over a variant tag plus the term's lexical form — stable across
/// runs, processes, and machines (unlike `std`'s `DefaultHasher`, which is
/// seeded per process and must never decide data placement).
pub fn shard_of(subject: &Term, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let tag: u8 = match subject {
        Term::Iri(_) => 1,
        Term::Literal(_) => 2,
        Term::Blank(_) => 3,
    };
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    h ^= tag as u64;
    h = h.wrapping_mul(0x100_0000_01b3);
    for b in subject.lexical().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// The result of splitting one graph into shard-local graphs.
#[derive(Debug)]
pub struct Partition {
    /// One graph per shard. Each holds its hash-assigned data triples plus a
    /// full copy of the schema slice.
    pub shards: Vec<Graph>,
    /// Triples replicated to every shard (the schema slice).
    pub schema_triples: usize,
    /// Hash-assigned (non-replicated) triples per shard.
    pub data_triples: Vec<usize>,
}

impl Partition {
    /// Total triples across shards, counting replicas (storage cost).
    pub fn stored_triples(&self) -> usize {
        self.shards.iter().map(Graph::len).sum()
    }
}

/// Splits a dataset into `shards` subject-hashed graphs with a replicated
/// schema slice.
#[derive(Debug, Clone, Copy)]
pub struct Partitioner {
    shards: usize,
}

impl Partitioner {
    /// A partitioner producing `shards` shards (floored at 1).
    pub fn new(shards: usize) -> Self {
        Partitioner {
            shards: shards.max(1),
        }
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Split `graph`: schema triples are replicated to every shard, data
    /// triples are hash-assigned by subject.
    ///
    /// A triple is *schema* when its subject is a class — an object of some
    /// `rdf:type` statement or either side of an `rdfs:subClassOf` edge.
    /// This covers class declarations (`dbo:Person a owl:Class`), hierarchy
    /// edges, and class labels, i.e. exactly what every shard needs locally
    /// to answer structural initialization probes. Instance `rdf:type`
    /// triples are data: their subject is the entity, so they travel with
    /// its subject star.
    pub fn split(&self, graph: &Graph) -> Partition {
        let type_id = graph.term_id(&Term::iri(vocab::rdf::TYPE));
        let sub_class_id = graph.term_id(&Term::iri(vocab::rdfs::SUB_CLASS_OF));

        // Class terms: objects of rdf:type, both sides of rdfs:subClassOf.
        let mut classes = std::collections::HashSet::new();
        if let Some(t) = type_id {
            graph.for_each_matching(None, Some(t), None, |triple| {
                classes.insert(triple[2]);
                true
            });
        }
        if let Some(sc) = sub_class_id {
            graph.for_each_matching(None, Some(sc), None, |triple| {
                classes.insert(triple[0]);
                classes.insert(triple[2]);
                true
            });
        }

        // Route term triples to per-shard buffers in one pass, then bulk-build
        // each shard graph: terms intern in the same (s, p, o) visit order the
        // old per-triple inserts used — so shard-local ids are unchanged —
        // but every column sorts exactly once and the shards come out
        // sealed, i.e. immediately snapshot-writable.
        let mut routed: Vec<Vec<(Term, Term, Term)>> =
            (0..self.shards).map(|_| Vec::new()).collect();
        let mut data_triples = vec![0usize; self.shards];
        let mut schema_triples = 0usize;
        for (s, p, o) in graph.iter_terms() {
            let subject_id = graph.term_id(s).expect("subject interned");
            if classes.contains(&subject_id) {
                schema_triples += 1;
                for buf in &mut routed {
                    buf.push((s.clone(), p.clone(), o.clone()));
                }
            } else {
                let idx = shard_of(s, self.shards);
                data_triples[idx] += 1;
                routed[idx].push((s.clone(), p.clone(), o.clone()));
            }
        }
        Partition {
            shards: routed.into_iter().map(Graph::from_term_triples).collect(),
            schema_triples,
            data_triples,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::turtle;

    const DATA: &str = r#"
dbo:Person a owl:Class ; rdfs:subClassOf owl:Thing ; rdfs:label "person"@en .
res:JFK a dbo:Person ; dbo:surname "Kennedy"@en .
res:RFK a dbo:Person ; dbo:surname "Kennedy"@en .
res:Ada a dbo:Person ; dbo:surname "Lovelace"@en .
res:Alan a dbo:Person ; dbo:surname "Turing"@en .
"#;

    #[test]
    fn split_is_deterministic_and_lossless() {
        let g = turtle::parse(DATA).unwrap();
        let p1 = Partitioner::new(3).split(&g);
        let p2 = Partitioner::new(3).split(&g);
        assert_eq!(p1.data_triples, p2.data_triples);
        // Every original triple is present in some shard; data triples in
        // exactly one.
        for (s, p, o) in g.iter_terms() {
            let copies = p1
                .shards
                .iter()
                .filter(|shard| shard.contains(s, p, o))
                .count();
            assert!(copies >= 1, "triple lost: {s:?} {p:?} {o:?}");
        }
        let data_total: usize = p1.data_triples.iter().sum();
        assert_eq!(data_total + p1.schema_triples, g.len());
        assert_eq!(
            p1.stored_triples(),
            data_total + 3 * p1.schema_triples,
            "schema slice replicated to all 3 shards"
        );
    }

    #[test]
    fn schema_slice_replicated_everywhere() {
        let g = turtle::parse(DATA).unwrap();
        let p = Partitioner::new(4).split(&g);
        let person = Term::iri("http://dbpedia.org/ontology/Person");
        let thing = Term::iri("http://www.w3.org/2002/07/owl#Thing");
        let sub = Term::iri(vocab::rdfs::SUB_CLASS_OF);
        for shard in &p.shards {
            assert!(
                shard.contains(&person, &sub, &thing),
                "every shard answers structural probes"
            );
        }
    }

    #[test]
    fn subject_stars_are_co_located() {
        let g = turtle::parse(DATA).unwrap();
        let p = Partitioner::new(4).split(&g);
        for entity in ["JFK", "RFK", "Ada", "Alan"] {
            let s = Term::iri(format!("http://dbpedia.org/resource/{entity}"));
            let expected = shard_of(&s, 4);
            for (i, shard) in p.shards.iter().enumerate() {
                let id = shard.term_id(&s);
                let out = id.map(|id| shard.out_degree(id)).unwrap_or(0);
                if i == expected {
                    assert_eq!(out, 2, "full star on the home shard");
                } else {
                    assert_eq!(out, 0, "no stray triples on other shards");
                }
            }
        }
    }

    #[test]
    fn shards_come_out_sealed() {
        // The bulk-build path must hand back snapshot-writable graphs.
        let g = turtle::parse(DATA).unwrap();
        let p = Partitioner::new(3).split(&g);
        assert!(p.shards.iter().all(Graph::is_sealed));
        assert!(p.shards.iter().all(|s| crate::snapshot::encode(s).is_ok()));
    }

    #[test]
    fn one_shard_is_the_identity() {
        let g = turtle::parse(DATA).unwrap();
        let p = Partitioner::new(1).split(&g);
        assert_eq!(p.shards.len(), 1);
        assert_eq!(p.shards[0].len(), g.len());
        // Partitioner::new(0) floors to 1.
        assert_eq!(Partitioner::new(0).shards(), 1);
    }

    #[test]
    fn shard_of_is_stable() {
        let t = Term::iri("http://dbpedia.org/resource/JFK");
        assert_eq!(shard_of(&t, 4), shard_of(&t, 4));
        assert_eq!(shard_of(&t, 1), 0);
        // Literal and IRI with the same lexical form must not collide onto
        // the same hash input.
        let lit = Term::en("http://dbpedia.org/resource/JFK");
        let spread = (2..64).any(|n| shard_of(&t, n) != shard_of(&lit, n));
        assert!(spread, "variant tag participates in the hash");
    }
}
