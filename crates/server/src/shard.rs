//! The shard-replica surface a cluster edge routes over.
//!
//! Before the wire transport existed, the cluster router held
//! `Arc<SapphireServer>` replicas and every "shard call" was a function
//! call. [`ShardService`] is that surface as a trait: everything the edge
//! needs from one replica — the three stateless request shapes (QCM
//! completion, tiered QSM run, raw query), the cheap load probes behind
//! load-aware routing and router-requested degradation, and the top-k the
//! model computes — with two implementations:
//!
//! * [`SapphireServer`] itself (the in-process topology, still the oracle
//!   every wire-mode answer is compared against), and
//! * `sapphire_wire::WireClient`, which speaks the length-prefixed binary
//!   protocol to a replica behind a TCP socket and maps every transport
//!   failure onto the typed [`ServerError::Unreachable`] so the router's
//!   hedging/backoff/failover machinery fires unchanged.
//!
//! The load probes deserve a note: the router reads them on *every* scatter
//! (replica ordering, shed-tier selection), so an implementation must answer
//! them without a network round trip. The wire client piggybacks the
//! replica's `(in_flight, queued, pressure_tier)` on every reply frame and
//! serves the probes from that cache — slightly stale, exactly like any real
//! load balancer's view of its backends.

use std::sync::Arc;
use std::time::Duration;

use sapphire_core::qcm::CompletionResult;
use sapphire_sparql::{Query, QueryResult, SelectQuery};

use crate::error::ServerError;
use crate::server::{RunPayload, SapphireServer};

/// Cumulative transport-level counters of one remote replica connection
/// (all zero for in-process replicas, which have no transport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Successful connection establishments (dial + handshake).
    pub connects: u64,
    /// Connections re-established after an IO failure broke the previous
    /// one — the subset of [`connects`](Self::connects) that repaired a
    /// known-bad link rather than grew the pool.
    pub reconnects: u64,
    /// Calls that failed on the transport (connect refused, reset, read
    /// deadline, short read) and surfaced as [`ServerError::Unreachable`].
    pub io_errors: u64,
    /// Frames rejected by the codec (bad magic, oversized length, bad tag)
    /// — protocol bugs, surfaced non-retryable, never silently skipped.
    pub corrupt_frames: u64,
}

impl TransportStats {
    /// Field-wise sum — how a router aggregates its replicas' counters.
    pub fn merge(&mut self, other: &TransportStats) {
        self.connects += other.connects;
        self.reconnects += other.reconnects;
        self.io_errors += other.io_errors;
        self.corrupt_frames += other.corrupt_frames;
    }
}

/// One shard replica, as the cluster edge sees it. See the module docs.
pub trait ShardService: Send + Sync {
    /// The replica's service name (e.g. `"cluster-s0r1"`), identifying the
    /// exact process typed errors came from.
    fn shard_name(&self) -> String;

    /// The top-k the replica's model computes — every replica of every
    /// shard shares one model config, and the edge presents the same k.
    fn top_k(&self) -> usize;

    /// QCM with an explicit result budget (the cluster over-fetch surface).
    fn complete_top(
        &self,
        tenant: &str,
        typed: &str,
        k: usize,
    ) -> Result<CompletionResult, ServerError>;

    /// Stateless QSM + execution with an edge-requested degradation tier
    /// and an optional remaining deadline budget.
    fn run_select_tiered(
        &self,
        tenant: &str,
        query: &SelectQuery,
        tier: usize,
        budget: Option<Duration>,
    ) -> Result<Arc<RunPayload>, ServerError>;

    /// Raw query execution (the federated bound-join building block).
    fn execute_raw(&self, tenant: &str, query: &Query) -> Result<QueryResult, ServerError>;

    /// Current `(in_flight, queued)` admission snapshot — must be cheap
    /// (no round trip); see the module docs.
    fn admission_load(&self) -> (usize, usize);

    /// The shed tier this replica's admission backlog argues for — must be
    /// cheap (no round trip).
    fn shed_pressure_tier(&self) -> usize;

    /// `"local"` for in-process replicas, `"wire"` for socket-backed ones —
    /// tags `shard_rtt` observations so a histogram never silently mixes
    /// function calls with real round trips.
    fn transport(&self) -> &'static str {
        "local"
    }

    /// Transport counters (all zero for in-process replicas).
    fn transport_stats(&self) -> TransportStats {
        TransportStats::default()
    }
}

impl ShardService for SapphireServer {
    fn shard_name(&self) -> String {
        self.config().name.clone()
    }

    fn top_k(&self) -> usize {
        self.model().config().k
    }

    fn complete_top(
        &self,
        tenant: &str,
        typed: &str,
        k: usize,
    ) -> Result<CompletionResult, ServerError> {
        SapphireServer::complete_top(self, tenant, typed, k)
    }

    fn run_select_tiered(
        &self,
        tenant: &str,
        query: &SelectQuery,
        tier: usize,
        budget: Option<Duration>,
    ) -> Result<Arc<RunPayload>, ServerError> {
        SapphireServer::run_select_tiered(self, tenant, query, tier, budget).map(|run| run.payload)
    }

    fn execute_raw(&self, tenant: &str, query: &Query) -> Result<QueryResult, ServerError> {
        use sapphire_endpoint::QueryService;
        self.execute_query(tenant, query)
            .map_err(ServerError::from_service)
    }

    fn admission_load(&self) -> (usize, usize) {
        SapphireServer::admission_load(self)
    }

    fn shed_pressure_tier(&self) -> usize {
        SapphireServer::shed_pressure_tier(self)
    }
}
