//! Multi-tier topology walkthrough: a 4-shard / 2-replica Sapphire cluster
//! behind an edge router, compared live against a single-server oracle.
//!
//! The dataset is partitioned hash-by-subject (schema slice replicated), one
//! Predictive User Model is built per shard, and the edge scatter-gathers
//! QCM/QSM requests over the replicas with load-aware routing, hedging, and
//! typed overload retry. The point of the demo: the cluster's merged answers
//! are byte-comparable to one big server over the same data.
//!
//! Run with: `cargo run --release -p sapphire-bench --example cluster`

use std::sync::Arc;

use sapphire_cluster::merge::{merge_completions, merge_solutions, strip_slice};
use sapphire_cluster::{Cluster, ClusterConfig, ClusterRouter};
use sapphire_core::{InitMode, PredictiveUserModel, SapphireConfig};
use sapphire_datagen::{generate, DatasetConfig};
use sapphire_endpoint::EndpointLimits;
use sapphire_server::{SapphireServer, ServerConfig};
use sapphire_sparql::parse_select;
use sapphire_text::Lexicon;

fn main() {
    let config = SapphireConfig {
        processes: 2,
        ..SapphireConfig::default()
    };

    // The warehouse: one graph, and a single big server as the oracle.
    println!("== initializing single-server oracle…");
    let oracle_pum = Arc::new(
        PredictiveUserModel::initialize_local(
            "oracle",
            generate(DatasetConfig::tiny(42)),
            EndpointLimits::warehouse(),
            Lexicon::dbpedia_default(),
            config.clone(),
            InitMode::Federated,
        )
        .expect("oracle init"),
    );
    let oracle = SapphireServer::new(oracle_pum, ServerConfig::default());

    // The cluster: 4 subject-hashed shards x 2 replicas, one shard-local PUM
    // per shard, an edge router in front.
    println!("== partitioning into 4 shards x 2 replicas…");
    let graph = generate(DatasetConfig::tiny(42));
    let cluster = Cluster::build(
        "edge",
        &graph,
        4,
        2,
        &Lexicon::dbpedia_default(),
        &config,
        &ServerConfig::default(),
    )
    .expect("shard init");
    println!(
        "   {} data triples sharded as {:?}, {} schema triples replicated everywhere",
        graph.len() - cluster.schema_triples(),
        cluster.data_triples(),
        cluster.schema_triples(),
    );
    let router = ClusterRouter::new(cluster, ClusterConfig::default());

    // QCM: the edge merges per-shard suggestion lists into one canonical
    // top-k (shards over-fetch; the edge owns the cut).
    let k = oracle.model().config().k;
    println!("\n== QCM scatter-gather: completing \"Kenn\" across 4 shards");
    let merged = router.complete("alice", "Kenn").expect("cluster QCM");
    for c in &merged.suggestions {
        println!("   {:?} ({:?})", c.text, c.source);
    }
    let oracle_full = oracle
        .complete_top("alice", "Kenn", usize::MAX)
        .expect("oracle QCM");
    let oracle_canonical = merge_completions(vec![oracle_full.suggestions], k);
    println!(
        "   byte-identical to the oracle through the same merge: {}",
        merged.suggestions == oracle_canonical
    );

    // QSM: answers union-merged from subject-co-located shards, "did you
    // mean" rewrites merged and re-prefetched cluster-wide.
    println!("\n== QSM scatter-gather: a misspelled query");
    let query =
        parse_select(r#"SELECT ?p WHERE { ?p dbo:surname "Gaus"@en }"#).expect("query parses");
    let run = router.run("alice", &query).expect("cluster QSM");
    println!(
        "   answers: {} rows, executed on every shard: {}",
        run.answers.len(),
        run.executed
    );
    for alt in &run.alternatives {
        println!("   {}", alt.describe());
    }
    let oracle_run = oracle
        .run_select("alice", &strip_slice(&query))
        .expect("oracle QSM");
    let oracle_answers = merge_solutions(&query, vec![oracle_run.payload.answers.clone()]);
    println!(
        "   answers byte-identical to the oracle: {}",
        run.answers == oracle_answers
    );

    // Routing observability: what the scatter actually did.
    let m = router.metrics();
    println!("\n== router metrics");
    println!("   fan-out per shard:     {:?}", m.fanout_per_shard);
    println!(
        "   merges (max depth):    {} ({})",
        m.merges, m.merge_depth_max
    );
    println!(
        "   hedges fired/won:      {}/{}",
        m.hedges_fired, m.hedges_won
    );
    println!(
        "   replica retries:       {} (rejected after retry: {})",
        m.replica_retries, m.rejected_after_retry
    );
}
