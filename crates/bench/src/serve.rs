//! The `serve_load` harness as a library.
//!
//! The closed-loop load generator used to live entirely inside the
//! `serve_load` binary; it is a library module so the CI regression gate
//! (`serve_check`) can drive the *same* workload in-process and validate the
//! same JSON report it would have eyeballed — one workload definition, two
//! consumers.
//!
//! Two phases:
//!
//! 1. **Closed loop** — N users replay Appendix-B session scripts
//!    (per-keystroke QCM completions, then a QSM "Run" per question) against
//!    one shared [`SapphireServer`].
//! 2. **Duplicate burst** (optional) — K users issue the *same* cold QCM and
//!    QSM request at the same instant, several rounds, modelling many users
//!    typing the same prefix at once. With single-flight coalescing each
//!    round costs one model scan per request class; the report carries the
//!    `coalesce_leader_runs` / `coalesced_hits` deltas so the effect is a
//!    number, not a claim. Run it with `coalesce_waiters == 0` to measure
//!    the pre-coalescing behaviour (every duplicate scans).
//!
//! The JSON report is assembled by hand (the build has no serde); the
//! [`json_f64`] helper on the parsing side is matched to exactly this shape.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use sapphire_cluster::{Cluster, ClusterConfig, ClusterRouter};
use sapphire_core::prelude::*;
use sapphire_core::session::Modifiers;
use sapphire_core::InitMode;
use sapphire_datagen::generate;
use sapphire_datagen::workload::appendix_b;
use sapphire_obs::Obs;
use sapphire_server::{SapphireServer, ServerConfig, ServerError};

use crate::dataset_for;
use crate::experiment_config;

/// Everything `serve_load` can be asked to do.
#[derive(Debug, Clone)]
pub struct ServeLoadOptions {
    /// Closed-loop simulated users.
    pub users: usize,
    /// Times each user replays the whole Appendix-B question list.
    pub rounds: usize,
    /// Dataset scale (`tiny`/`small`/`medium`).
    pub scale: String,
    /// Admission in-flight limit (`0` = hardware-sized default, floored at 8
    /// so cramped CI boxes still exercise real parallelism).
    pub max_in_flight: usize,
    /// Admission queue depth (`0` = 4x the in-flight limit).
    pub max_queue_depth: usize,
    /// Users in the duplicate-burst phase (`0` skips the phase).
    pub burst_users: usize,
    /// Rounds of the duplicate-burst phase; each round is one cold QCM term
    /// and one cold QSM query issued by every burst user simultaneously.
    pub burst_rounds: usize,
    /// Per-key coalescing waiter cap (`0` disables single-flight — the
    /// pre-coalescing baseline behaviour).
    pub coalesce_waiters: usize,
    /// Queued-request deadline in milliseconds (`0` = 100ms, the serving
    /// posture). The CI gate raises this so a noisy-neighbor scheduler stall
    /// on a shared runner cannot manufacture a spurious `QueueTimeout`
    /// rejection and fail the zero-rejection gate.
    pub queue_wait_ms: u64,
    /// Open sessions for the evented front-end phase
    /// ([`crate::frontend::phase`], run over the same shared model and
    /// reported as the `"frontend"` section; `0` skips the phase).
    pub frontend_sessions: usize,
    /// Worker threads of the front-end phase.
    pub frontend_workers: usize,
    /// Trace one request in N through the shared flight recorder (`0` = off,
    /// the default — histograms stay on either way). `--trace` sets 1.
    pub trace_sample: u32,
    /// Shards of the embedded cluster scatter phase (1 replica each), which
    /// populates the cluster-tier stages (`shard_rtt`, `edge_merge`) in the
    /// same shared `"stages"` section; `0` skips the phase.
    pub cluster_shards: usize,
    /// Cold scatter requests **per arm** of the `medium`-scale smoke phase
    /// (`0` skips it). The phase builds a 4-shard edge over the `medium`
    /// dataset and drives the same cold-completion scatter through two
    /// routers — the shared executor and the spawn-per-request reference —
    /// so the report carries the bigger-rung baseline the ROADMAP asks for
    /// *and* the counterfactual, at a fixed CI budget instead of the full
    /// workload (one `medium` QSM question alone can run for minutes).
    pub medium_smoke_requests: usize,
}

impl Default for ServeLoadOptions {
    fn default() -> Self {
        ServeLoadOptions {
            users: 32,
            rounds: 3,
            scale: "tiny".to_string(),
            max_in_flight: 0,
            max_queue_depth: 0,
            burst_users: 16,
            burst_rounds: 8,
            coalesce_waiters: ServerConfig::default().coalesce_waiters_per_key,
            queue_wait_ms: 0,
            frontend_sessions: crate::frontend::FrontendPhaseOptions::default().sessions,
            frontend_workers: crate::frontend::FrontendPhaseOptions::default().workers,
            trace_sample: 0,
            cluster_shards: 2,
            medium_smoke_requests: 256,
        }
    }
}

/// `--name N` from argv, or `default` — shared by the `serve_load` and
/// `serve_check` binaries so flag parsing can only ever change in one place.
pub fn arg_usize(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// `--name VALUE` from argv, if present.
pub fn arg_string(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Latency samples and rejection counters for one request class (shared
/// with the cluster-mode harness in [`crate::cluster`]).
#[derive(Debug, Default, Clone)]
pub(crate) struct ClassStats {
    pub(crate) latencies_us: Vec<u64>,
    overloaded: u64,
    queue_timeout: u64,
    quota: u64,
    invalid: u64,
}

impl ClassStats {
    pub(crate) fn record(&mut self, started: Instant, result: &Result<(), ServerError>) {
        self.record_outcome(started.elapsed().as_micros() as u64, result);
    }

    /// Record with a latency measured by the caller (the front-end harness
    /// measures submit→callback, which no single `Instant` here can see).
    pub(crate) fn record_outcome(&mut self, latency_us: u64, result: &Result<(), ServerError>) {
        match result {
            Ok(()) => self.latencies_us.push(latency_us),
            Err(ServerError::Overloaded { .. }) => self.overloaded += 1,
            Err(ServerError::QueueTimeout { .. }) => self.queue_timeout += 1,
            Err(ServerError::QuotaExhausted { .. }) => self.quota += 1,
            Err(_) => self.invalid += 1,
        }
    }

    pub(crate) fn merge(&mut self, other: ClassStats) {
        self.latencies_us.extend(other.latencies_us);
        self.overloaded += other.overloaded;
        self.queue_timeout += other.queue_timeout;
        self.quota += other.quota;
        self.invalid += other.invalid;
    }

    pub(crate) fn rejected(&self) -> u64 {
        self.overloaded + self.queue_timeout + self.quota
    }

    /// The typed outcome buckets in ledger order — overloaded, queue
    /// timeout, quota, invalid. The open-loop overload harness reports each
    /// class separately per sweep step (its gate distinguishes typed
    /// rejections, which are graceful, from untyped failures, which are not).
    pub(crate) fn typed_counts(&self) -> (u64, u64, u64, u64) {
        (
            self.overloaded,
            self.queue_timeout,
            self.quota,
            self.invalid,
        )
    }

    fn percentile(&self, sorted: &[u64], p: f64) -> u64 {
        if sorted.is_empty() {
            return 0;
        }
        let idx = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx]
    }

    pub(crate) fn json(&self, wall: Duration) -> String {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let count = sorted.len();
        let throughput = count as f64 / wall.as_secs_f64().max(1e-9);
        format!(
            "{{\"completed\": {count}, \"throughput_rps\": {throughput:.1}, \
             \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
             \"rejected_overloaded\": {}, \"rejected_queue_timeout\": {}, \
             \"rejected_quota\": {}, \"invalid\": {}}}",
            self.percentile(&sorted, 50.0),
            self.percentile(&sorted, 95.0),
            self.percentile(&sorted, 99.0),
            self.overloaded,
            self.queue_timeout,
            self.quota,
            self.invalid
        )
    }
}

/// Run the full workload and return the JSON report.
///
/// Does **not** write `BENCH_serve.json` — persisting the baseline is the
/// `serve_load` binary's job; the CI gate runs the same workload without
/// clobbering the committed reference.
pub fn run(opts: &ServeLoadOptions) -> String {
    // `dataset_for` hard-errors on unknown names, so the label is always
    // exactly what ran.
    let scale_label = opts.scale.clone();
    let dataset = dataset_for(&scale_label);

    eprintln!("(generating dataset + initializing shared model…)");
    let graph = generate(dataset);
    let triple_count = graph.len();
    // The embedded cluster scatter phase needs the graph by reference, so
    // its shard models initialize here, before the graph moves into the
    // single-box endpoint; the phase itself runs after the main workload.
    let mini_cluster = (opts.cluster_shards > 0).then(|| {
        eprintln!(
            "(initializing {} shard models for the cluster scatter phase…)",
            opts.cluster_shards
        );
        Cluster::build(
            "serve-edge",
            &graph,
            opts.cluster_shards,
            1,
            &Lexicon::dbpedia_default(),
            &experiment_config(),
            &ServerConfig::default(),
        )
        .expect("shard initialization")
    });
    let ep: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
        "dbpedia",
        graph,
        EndpointLimits::warehouse(),
    ));
    let pum = Arc::new(
        PredictiveUserModel::initialize(
            vec![ep],
            Lexicon::dbpedia_default(),
            experiment_config(),
            InitMode::Federated,
        )
        .expect("initialization"),
    );

    // Service posture: hardware-sized concurrency (floored at 8 so cramped
    // CI boxes still exercise real parallelism), a finite queue, and no
    // tenant quotas — overload shedding comes from the gate alone.
    let default_in_flight = ServerConfig::default().max_in_flight.max(8);
    let max_in_flight = if opts.max_in_flight > 0 {
        opts.max_in_flight
    } else {
        default_in_flight
    };
    let max_queue_depth = if opts.max_queue_depth > 0 {
        opts.max_queue_depth
    } else {
        max_in_flight * 4
    };
    // The burst phase blocks followers while they hold admission slots; the
    // gate must be able to hold one whole burst or the phase deadlocks into
    // queue timeouts.
    let max_queue_depth = max_queue_depth.max(opts.burst_users);
    let queue_wait_ms = if opts.queue_wait_ms > 0 {
        opts.queue_wait_ms
    } else {
        100
    };
    let config = ServerConfig {
        max_in_flight,
        max_queue_depth,
        queue_wait: Duration::from_millis(queue_wait_ms),
        coalesce_waiters_per_key: opts.coalesce_waiters,
        ..ServerConfig::default()
    };
    // One shared observability handle across every phase — single-box
    // server, evented front-end, and the cluster scatter phase — so the
    // report's `"stages"` section spans all tiers.
    let obs = Arc::new(Obs::new());
    obs.set_sampling(opts.trace_sample);
    // Feed the shared executor's queue-wait samples into the same stage
    // histograms (the observer is install-once process-wide; a second
    // serve run in one process keeps the first hook, which points at a
    // dead Obs — fine for a bench binary that runs once).
    {
        let exec_obs = obs.clone();
        sapphire_core::exec::global()
            .set_queue_wait_observer(move |us| exec_obs.record(sapphire_obs::Stage::ExecQueue, us));
    }
    let server = Arc::new(SapphireServer::with_obs(pum.clone(), config, obs.clone()));

    let questions = appendix_b();
    eprintln!(
        "(driving {} users x {} rounds over {} scripted questions…)",
        opts.users,
        opts.rounds,
        questions.len()
    );

    // Load sampler: polls the cheap probes a cluster router would use to
    // route (admission load, coalescer shard occupancy) so the report makes
    // routing-relevant pressure observable, not just end-of-run counters.
    let sampler_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let peaks = Arc::new((
        std::sync::atomic::AtomicU64::new(0), // in_flight
        std::sync::atomic::AtomicU64::new(0), // queued
        std::sync::atomic::AtomicU64::new(0), // coalesce occupancy
    ));
    let sampler = {
        let server = server.clone();
        let stop = sampler_stop.clone();
        let peaks = peaks.clone();
        std::thread::spawn(move || {
            use std::sync::atomic::Ordering;
            while !stop.load(Ordering::Relaxed) {
                let (in_flight, queued) = server.admission_load();
                peaks.0.fetch_max(in_flight as u64, Ordering::Relaxed);
                peaks.1.fetch_max(queued as u64, Ordering::Relaxed);
                peaks
                    .2
                    .fetch_max(server.coalesce_occupancy() as u64, Ordering::Relaxed);
                // 1ms resolution is enough to catch sustained pressure and
                // keeps the probe's lock traffic off the admission hot path.
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    let users = opts.users;
    let rounds = opts.rounds;
    let started = Instant::now();
    let (mut qcm, mut qsm) = (ClassStats::default(), ClassStats::default());
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for user in 0..users {
            let server = server.clone();
            let questions = &questions;
            handles.push(scope.spawn(move || {
                let mut qcm = ClassStats::default();
                let mut qsm = ClassStats::default();
                let session = server
                    .open_session(&format!("user-{user}"))
                    .expect("session registry sized for the fleet");
                for round in 0..rounds {
                    // Each user walks the question list from its own offset,
                    // so the mix of in-flight queries varies while the total
                    // workload stays fixed.
                    for qi in 0..questions.len() {
                        let q = &questions[(qi + user + round) % questions.len()];
                        for (row, input) in q.script.rows.iter().enumerate() {
                            // Per-keystroke QCM on the object keyword.
                            let keyword = input.object.trim_start_matches('?');
                            for end in 1..=keyword.chars().count().min(6) {
                                let prefix: String = keyword.chars().take(end).collect();
                                let t = Instant::now();
                                let r = server.complete(session, &prefix).map(|_| ());
                                qcm.record(t, &r);
                            }
                            server
                                .set_row(session, row, input.clone())
                                .expect("session owned by this thread");
                        }
                        server
                            .set_modifiers(
                                session,
                                Modifiers {
                                    distinct: false,
                                    order_by: q.script.order_by.clone(),
                                    limit: q.script.limit,
                                    count: q.script.count,
                                    filters: q.script.filters.clone(),
                                },
                            )
                            .expect("session owned by this thread");
                        let t = Instant::now();
                        let r = server.run(session).map(|_| ());
                        qsm.record(t, &r);
                    }
                }
                server.close_session(session);
                (qcm, qsm)
            }));
        }
        for h in handles {
            let (c, s) = h.join().expect("no worker panics");
            qcm.merge(c);
            qsm.merge(s);
        }
    });
    let wall = started.elapsed();

    // --- Phase 2: duplicate burst -------------------------------------
    //
    // Every burst user fires the *same* never-seen request at the same
    // instant — the worst case for a response cache (all of them miss) and
    // the best case for single-flight. Each round uses a fresh QCM term and
    // a fresh QSM query so the cache can never help across rounds.
    let before_burst = server.metrics();
    let mut burst = ClassStats::default();
    let burst_started = Instant::now();
    let burst_ran = opts.burst_users > 1 && opts.burst_rounds > 0;
    if burst_ran {
        eprintln!(
            "(duplicate burst: {} users x {} rounds…)",
            opts.burst_users, opts.burst_rounds
        );
        let barrier = Arc::new(Barrier::new(opts.burst_users));
        let burst_rounds = opts.burst_rounds;
        let questions = &questions;
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for user in 0..opts.burst_users {
                let server = server.clone();
                let barrier = barrier.clone();
                handles.push(scope.spawn(move || {
                    let mut stats = ClassStats::default();
                    let session = server
                        .open_session(&format!("burst-{user}"))
                        .expect("session registry sized for the burst");
                    for round in 0..burst_rounds {
                        let q = &questions[round % questions.len()];
                        // Same cold term for everyone: a keyword no script
                        // types (the `~` suffix keeps it out of phase 1).
                        let keyword = q.script.rows[0].object.trim_start_matches('?');
                        let term = format!("{keyword}~{round}");
                        barrier.wait();
                        let t = Instant::now();
                        let r = server.complete(session, &term).map(|_| ());
                        stats.record(t, &r);
                        // Same cold query for everyone: scripted rows with a
                        // round-unique LIMIT, so the normalized key is shared
                        // within the round and fresh across rounds.
                        for (row, input) in q.script.rows.iter().enumerate() {
                            server
                                .set_row(session, row, input.clone())
                                .expect("session owned by this thread");
                        }
                        server
                            .set_modifiers(
                                session,
                                Modifiers {
                                    distinct: false,
                                    order_by: None,
                                    limit: Some(90_000 + round),
                                    count: false,
                                    filters: Vec::new(),
                                },
                            )
                            .expect("session owned by this thread");
                        barrier.wait();
                        let t = Instant::now();
                        let r = server.run(session).map(|_| ());
                        stats.record(t, &r);
                    }
                    server.close_session(session);
                    stats
                }));
            }
            for h in handles {
                burst.merge(h.join().expect("no burst panics"));
            }
        });
    }
    let burst_wall = burst_started.elapsed();

    sampler_stop.store(true, std::sync::atomic::Ordering::Relaxed);
    sampler.join().expect("sampler never panics");
    let (in_flight_now, queued_now) = server.admission_load();

    // --- Phase 3: cluster scatter (small sharded edge over the same data) --
    //
    // A short completion workload through a ClusterRouter sharing this run's
    // `Obs`, so the cluster-tier stages (`shard_rtt` per replica attempt,
    // `edge_merge` per top-k merge) land in the same `"stages"` section the
    // single-box stages do. Each term is issued twice: the repeat probes the
    // edge response cache.
    let cluster_section = match mini_cluster {
        None => "{\"shards\": 0, \"requests\": 0, \"fanout_total\": 0, \"merges\": 0}".to_string(),
        Some(cluster) => {
            let shards = cluster.shard_count();
            eprintln!("(cluster scatter phase: {shards} shards x 1 replica…)");
            let router = ClusterRouter::with_obs(cluster, ClusterConfig::default(), obs.clone());
            let (mut issued, mut completed) = (0u64, 0u64);
            for question in questions.iter().take(8) {
                let keyword = question.script.rows[0].object.trim_start_matches('?');
                for _ in 0..2 {
                    issued += 1;
                    completed += u64::from(router.complete("edge-user", keyword).is_ok());
                }
            }
            let m = router.metrics();
            format!(
                "{{\"shards\": {shards}, \"requests\": {issued}, \"completed\": {completed}, \
                 \"fanout_total\": {}, \"merges\": {}, \"edge_cache_hits\": {}}}",
                m.fanout_per_shard.iter().sum::<u64>(),
                m.merges,
                m.completion_cache.hits,
            )
        }
    };

    // --- Tracing-overhead pair: the same cache-hit hot loop untraced vs
    // sampled at 1/64, in alternating chunks so scheduler drift lands on
    // both sides equally. serve_check gates the sampled/untraced ratio.
    let hot_session = server
        .open_session("trace-hot")
        .expect("session registry has room for the overhead probe");
    let hot_term: String = {
        let keyword = questions[0].script.rows[0].object.trim_start_matches('?');
        keyword.chars().take(4).collect()
    };
    let _ = server.complete(hot_session, &hot_term); // warm the response cache
    const HOT_CHUNKS: usize = 4;
    const HOT_OPS_PER_CHUNK: usize = 10_000;
    let (mut untraced, mut sampled) = (Duration::ZERO, Duration::ZERO);
    for _ in 0..HOT_CHUNKS {
        obs.set_sampling(0);
        let t = Instant::now();
        for _ in 0..HOT_OPS_PER_CHUNK {
            let _ = server.complete(hot_session, &hot_term);
        }
        untraced += t.elapsed();
        obs.set_sampling(64);
        let t = Instant::now();
        for _ in 0..HOT_OPS_PER_CHUNK {
            let _ = server.complete(hot_session, &hot_term);
        }
        sampled += t.elapsed();
    }
    obs.set_sampling(opts.trace_sample);
    server.close_session(hot_session);
    let hot_ops = (HOT_CHUNKS * HOT_OPS_PER_CHUNK) as u64;
    let hot_rps_untraced = hot_ops as f64 / untraced.as_secs_f64().max(1e-9);
    let hot_rps_sampled = hot_ops as f64 / sampled.as_secs_f64().max(1e-9);

    let metrics = server.metrics();
    // `effective_hit_ratio` additionally credits single-flight followers:
    // such a request logged a genuine cache miss but was still served from
    // a concurrent identical request's scan. `(hits + coalesced) / lookups`
    // is therefore the fraction of requests served *without a model scan* —
    // the paper's >90% claim as the serving tier actually delivers it — and
    // unlike the raw ratio it does not wobble with how requests happened to
    // overlap on a given run.
    let cache_stats = |s: sapphire_core::CacheStats, coalesced: u64| {
        let lookups = (s.hits + s.misses).max(1);
        format!(
            "{{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \"hit_ratio\": {:.3}, \
             \"effective_hit_ratio\": {:.3}}}",
            s.hits,
            s.misses,
            s.evictions,
            s.hit_ratio(),
            (s.hits + coalesced) as f64 / lookups as f64,
        )
    };
    // Requests actually issued: zero when the phase was skipped, so the
    // report never claims traffic that did not happen.
    let burst_requests = if burst_ran {
        (opts.burst_users * opts.burst_rounds * 2) as u64
    } else {
        0
    };
    // The load/occupancy snapshot: peaks observed by the sampler plus the
    // end-of-run values (the latter pin "everything drained"). This section
    // must stay *ahead of* `duplicate_burst` in the report: that section
    // nests its own `"stats"` object, and `json_f64`'s section search finds
    // the first occurrence.
    let stats = format!(
        "{{\"peak_in_flight\": {}, \"peak_queued\": {}, \"peak_coalesce_occupancy\": {}, \
         \"final_in_flight\": {in_flight_now}, \"final_queued\": {queued_now}, \
         \"final_coalesce_occupancy\": {}}}",
        peaks.0.load(std::sync::atomic::Ordering::Relaxed),
        peaks.1.load(std::sync::atomic::Ordering::Relaxed),
        peaks.2.load(std::sync::atomic::Ordering::Relaxed),
        server.coalesce_occupancy(),
    );
    // The QSM-tail section: how the Steiner expansion budget was actually
    // spent. `expansion_queries` are SPARQL round trips executed,
    // `queries_saved` are round trips skipped because the neighbor list was
    // already in the shared cross-request NeighborhoodCache (budget still
    // charged — determinism), `degraded_runs` counts reduced-budget runs
    // (must be 0 in this default no-shed posture; serve_check gates it).
    let relax = pum.relax_cache_stats();
    // The memoized alternative-sweep caches ride along: a hit is a whole
    // Jaro-Winkler corpus sweep skipped, the other lever (besides the
    // NeighborhoodCache) that keeps the QSM tail down.
    let alt = pum.alt_cache_stats();
    let qsm_relax = format!(
        "{{\"expansion_queries\": {}, \"queries_saved\": {}, \"neighborhood_hits\": {}, \
         \"neighborhood_misses\": {}, \"neighborhood_fills\": {}, \
         \"neighborhood_evictions\": {}, \"degraded_runs\": {}, \
         \"alt_literal_hits\": {}, \"alt_literal_misses\": {}, \"alt_literal_evictions\": {}, \
         \"alt_predicate_hits\": {}, \"alt_predicate_misses\": {}, \
         \"alt_predicate_evictions\": {}}}",
        relax.queries_executed,
        relax.queries_saved,
        relax.hits,
        relax.misses,
        relax.fills,
        relax.evictions,
        metrics.qsm_degraded_runs,
        alt.literal.hits,
        alt.literal.misses,
        alt.literal.evictions,
        alt.predicate.hits,
        alt.predicate.misses,
        alt.predicate.evictions,
    );
    let mut report = format!(
        "{{\n  \"benchmark\": \"serve_load\",\n  \"config\": {{\"users\": {users}, \
         \"rounds\": {rounds}, \"scale\": \"{scale_label}\", \"triples\": {triple_count}, \
         \"max_in_flight\": {max_in_flight}, \"max_queue_depth\": {max_queue_depth}, \
         \"burst_users\": {}, \"burst_rounds\": {}, \"coalesce_waiters\": {}}},\n  \
         \"stats\": {stats},\n  \
         \"wall_seconds\": {:.3},\n  \"total_throughput_rps\": {:.1},\n  \
         \"qcm\": {},\n  \"qsm\": {},\n  \
         \"duplicate_burst\": {{\"requests\": {burst_requests}, \"wall_seconds\": {:.3}, \
         \"leader_runs\": {}, \"bypass_runs\": {}, \"coalesced_hits\": {}, \"stats\": {}}},\n  \
         \"coalescing\": {{\"coalesced_hits\": {}, \"leader_runs\": {}, \"bypass_runs\": {}, \
         \"fifo_handoffs\": {}}},\n  \
         \"qsm_relax\": {qsm_relax},\n  \
         \"rejected_total\": {},\n  \
         \"completion_cache\": {},\n  \"run_cache\": {},\n  \
         \"sessions_leaked\": {}\n}}",
        opts.burst_users,
        opts.burst_rounds,
        opts.coalesce_waiters,
        wall.as_secs_f64(),
        (qcm.latencies_us.len() + qsm.latencies_us.len()) as f64 / wall.as_secs_f64().max(1e-9),
        qcm.json(wall),
        qsm.json(wall),
        burst_wall.as_secs_f64(),
        metrics.coalesce_leader_runs - before_burst.coalesce_leader_runs,
        metrics.coalesce_bypass_runs - before_burst.coalesce_bypass_runs,
        metrics.coalesced_hits - before_burst.coalesced_hits,
        burst.json(burst_wall),
        metrics.coalesced_hits,
        metrics.coalesce_leader_runs,
        metrics.coalesce_bypass_runs,
        metrics.fifo_handoffs,
        qcm.rejected() + qsm.rejected() + burst.rejected(),
        cache_stats(metrics.completion_cache, metrics.completion_coalesced_hits),
        cache_stats(metrics.run_cache, metrics.run_coalesced_hits),
        metrics.open_sessions,
    );

    // --- Phase 4: evented front-end (own server over the same model) ---
    let frontend_section = (opts.frontend_sessions > 0).then(|| {
        crate::frontend::phase(
            pum,
            &crate::frontend::FrontendPhaseOptions {
                sessions: opts.frontend_sessions,
                workers: opts.frontend_workers,
                queue_wait_ms: opts.queue_wait_ms,
                ..Default::default()
            },
            Some(obs.clone()),
        )
    });

    // --- Phase 5: medium-scale smoke (bigger-rung scatter baseline) ---
    let medium_smoke_section = medium_smoke_phase(opts.medium_smoke_requests);

    // The cross-tier sections snapshot only after EVERY phase has run, so
    // `"stages"` carries the front-end's `frontend_queue`/`end_to_end`
    // observations alongside the single-box and cluster-tier stages.
    let trace_section = format!(
        "{{\"sampling\": {}, \"recorded\": {}, \"dropped\": {}, \"hot_ops\": {hot_ops}, \
         \"hot_rps_untraced\": {hot_rps_untraced:.1}, \"hot_rps_sampled\": {hot_rps_sampled:.1}}}",
        opts.trace_sample,
        obs.recorder().recorded(),
        obs.recorder().evicted(),
    );
    let cut = report.rfind('}').expect("report ends with a brace");
    report.truncate(cut);
    while report.ends_with(char::is_whitespace) {
        report.pop();
    }
    // Executor snapshot after every phase: how much scatter/scan/hedge
    // work the shared pool absorbed that per-request threads used to
    // carry. `spawns_avoided` is the headline — each one is a
    // thread::spawn the steady-state path no longer pays for.
    let exec_stats = sapphire_core::exec::global().stats();
    let exec_section = format!(
        "{{\"workers\": {}, \"tasks_run\": {}, \"inline_runs\": {}, \"steals\": {}, \
         \"spawns_avoided\": {}, \"panicked\": {}, \"queue_p50_us\": {}, \
         \"queue_p95_us\": {}, \"queue_p99_us\": {}, \"queue_max_us\": {}}}",
        exec_stats.workers,
        exec_stats.tasks_run,
        exec_stats.inline_runs,
        exec_stats.steals,
        exec_stats.spawns_avoided,
        exec_stats.panicked,
        exec_stats.queue_p50_us,
        exec_stats.queue_p95_us,
        exec_stats.queue_p99_us,
        exec_stats.queue_max_us,
    );
    report.push_str(&format!(
        ",\n  \"cluster_scatter\": {cluster_section},\n  \"exec\": {exec_section},\n  \
         \"medium_smoke\": {medium_smoke_section},\n  \
         \"stages\": {},\n  \"trace\": {trace_section}",
        obs.stages_json(),
    ));
    // The front-end section stays LAST: its object nests keys that also
    // exist at the top level (`rejected_total`, `sessions_leaked`, `qcm`…),
    // and `json_f64`'s section/key searches resolve to the *first*
    // occurrence — everything above must win unsectioned reads.
    if let Some(section) = frontend_section {
        report.push_str(&format!(",\n  \"frontend\": {section}"));
    }
    report.push_str("\n}");
    if opts.trace_sample > 0 {
        eprintln!(
            "(flight recorder: slowest end-to-end traces)\n{}",
            obs.recorder().dump_slowest(5)
        );
    }
    report
}

/// The `medium`-scale smoke phase: the ROADMAP's bigger-rung baseline at a
/// fixed CI budget, plus the spawn-per-request counterfactual.
///
/// Builds a 4-shard (1 replica) edge over the `medium` dataset and drives
/// `requests_per_arm` **cold** completion scatters through two routers over
/// the *same* shard replicas: one on the shared executor (the product
/// configuration) and one forced onto the old spawn-per-request reference
/// path. Every term is salted unique per arm, so every request misses every
/// cache on both sides and the two arms measure the same all-cold scatter
/// work — the latency delta is the thread-spawn overhead and nothing else.
/// Arms run in alternating chunks so scheduler drift lands on both equally.
///
/// The full `medium` workload is deliberately NOT run here: a single
/// Appendix-B QSM question at `medium` can relax for minutes, which no CI
/// budget survives — that is exactly why the committed baseline stayed
/// `tiny` until now.
fn medium_smoke_phase(requests_per_arm: usize) -> String {
    if requests_per_arm == 0 {
        return "{\"requests_per_arm\": 0}".to_string();
    }
    eprintln!("(medium smoke: generating dataset + initializing 4 shard models…)");
    let bringup_clock = Instant::now();
    let graph = generate(dataset_for("medium"));
    let triples = graph.len();
    let cluster = Cluster::build(
        "medium-edge",
        &graph,
        4,
        1,
        &Lexicon::dbpedia_default(),
        &experiment_config(),
        &ServerConfig::default(),
    )
    .expect("medium shard initialization");
    drop(graph);
    let replicas = cluster.shards().to_vec();
    let bringup_us = bringup_clock.elapsed().as_micros() as u64;

    let executor_router = Arc::new(ClusterRouter::new(cluster, ClusterConfig::default()));
    let mut reference =
        ClusterRouter::new(Cluster::from_replicas(replicas), ClusterConfig::default());
    reference.set_reference_spawns(true);
    let reference_router = Arc::new(reference);

    // Per-arm term lists: real workload prefixes, salted with the arm tag
    // and a sequence number so no term repeats and no term is shared across
    // arms — cold at the edge caches AND the shard caches, symmetrically.
    let mut base: Vec<String> = Vec::new();
    for question in appendix_b() {
        for input in &question.script.rows {
            let keyword = input.object.trim_start_matches('?');
            for end in 1..=keyword.chars().count().min(6) {
                base.push(keyword.chars().take(end).collect());
            }
        }
    }
    let terms_for = |arm: &str| -> Vec<String> {
        (0..requests_per_arm)
            .map(|i| format!("{}~{arm}{i}", base[i % base.len()]))
            .collect()
    };

    let run_chunk = |router: &Arc<ClusterRouter>, terms: &[String]| -> (ClassStats, Duration) {
        let workers = 4.min(terms.len());
        let started = Instant::now();
        let mut stats = ClassStats::default();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for w in 0..workers {
                let router = router.clone();
                handles.push(scope.spawn(move || {
                    let mut s = ClassStats::default();
                    for term in terms.iter().skip(w).step_by(workers) {
                        let t = Instant::now();
                        let r = router.complete("smoke", term).map(|_| ());
                        s.record(t, &crate::cluster::flatten(r));
                    }
                    s
                }));
            }
            for h in handles {
                stats.merge(h.join().expect("no smoke worker panics"));
            }
        });
        (stats, started.elapsed())
    };

    eprintln!("(medium smoke: {requests_per_arm} cold scatters per arm, 4-way fan-out…)");
    let executor_terms = terms_for("e");
    let reference_terms = terms_for("r");
    const CHUNKS: usize = 4;
    let chunk_len = requests_per_arm.div_ceil(CHUNKS);
    let mut executor_stats = ClassStats::default();
    let mut reference_stats = ClassStats::default();
    let (mut executor_wall, mut reference_wall) = (Duration::ZERO, Duration::ZERO);
    for chunk in 0..CHUNKS {
        let range = |terms: &[String]| -> std::ops::Range<usize> {
            (chunk * chunk_len).min(terms.len())..((chunk + 1) * chunk_len).min(terms.len())
        };
        // Alternate which arm goes first so a drifting scheduler taxes both.
        let order: [(
            &Arc<ClusterRouter>,
            &[String],
            &mut ClassStats,
            &mut Duration,
        ); 2] = if chunk % 2 == 0 {
            [
                (
                    &executor_router,
                    &executor_terms[range(&executor_terms)],
                    &mut executor_stats,
                    &mut executor_wall,
                ),
                (
                    &reference_router,
                    &reference_terms[range(&reference_terms)],
                    &mut reference_stats,
                    &mut reference_wall,
                ),
            ]
        } else {
            [
                (
                    &reference_router,
                    &reference_terms[range(&reference_terms)],
                    &mut reference_stats,
                    &mut reference_wall,
                ),
                (
                    &executor_router,
                    &executor_terms[range(&executor_terms)],
                    &mut executor_stats,
                    &mut executor_wall,
                ),
            ]
        };
        for (router, terms, stats, wall) in order {
            let (s, w) = run_chunk(router, terms);
            stats.merge(s);
            *wall += w;
        }
    }

    let p99 = |stats: &ClassStats| -> u64 {
        let mut sorted = stats.latencies_us.clone();
        sorted.sort_unstable();
        match sorted.len() {
            0 => 0,
            n => sorted[(99.0 / 100.0 * (n - 1) as f64).round() as usize],
        }
    };
    let executor_p99 = p99(&executor_stats);
    let reference_p99 = p99(&reference_stats);
    let fanout =
        |router: &Arc<ClusterRouter>| -> u64 { router.metrics().fanout_per_shard.iter().sum() };
    format!(
        "{{\"scale\": \"medium\", \"shards\": 4, \"replicas\": 1, \"triples\": {triples}, \
         \"bringup_us\": {bringup_us}, \"requests_per_arm\": {requests_per_arm}, \
         \"executor_p99_us\": {executor_p99}, \"reference_p99_us\": {reference_p99}, \
         \"executor_fanout_total\": {}, \"reference_fanout_total\": {}, \
         \"executor\": {}, \"spawn_reference\": {}}}",
        fanout(&executor_router),
        fanout(&reference_router),
        executor_stats.json(executor_wall),
        reference_stats.json(reference_wall),
    )
}

/// Pull a numeric field out of a `serve_load` JSON report.
///
/// `section` of `None` searches the whole report; `Some(name)` restricts the
/// search to the whole `{...}` object that follows `"name"`, nested objects
/// included (braces are depth-matched, so a section like `duplicate_burst`
/// that carries an inner `"stats": {...}` is covered wherever the inner
/// object sits). This is not a JSON parser — the build is offline and has no
/// serde — but it is exact for the report shape [`run`] emits, and the tests
/// below pin that shape, nested objects included.
pub fn json_f64(report: &str, section: Option<&str>, key: &str) -> Option<f64> {
    let haystack = match section {
        None => report,
        Some(name) => {
            let at = report.find(&format!("\"{name}\""))?;
            let open = at + report[at..].find('{')?;
            let mut depth = 0usize;
            let close = report[open..].char_indices().find_map(|(i, c)| match c {
                '{' => {
                    depth += 1;
                    None
                }
                '}' => {
                    depth -= 1;
                    (depth == 0).then_some(open + i)
                }
                _ => None,
            })?;
            &report[open..close]
        }
    };
    let at = haystack.find(&format!("\"{key}\""))?;
    let colon = at + haystack[at..].find(':')?;
    let value: String = haystack[colon + 1..]
        .chars()
        .skip_while(|c| c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    value.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Mirrors the real report's structural hazards: duplicate_burst carries
    // a *nested* object, here deliberately placed BEFORE the scalar fields
    // so the extraction is proven to depth-match rather than stop at the
    // first closing brace.
    const REPORT: &str = r#"{
  "benchmark": "serve_load",
  "config": {"users": 32, "rounds": 1},
  "stats": {"peak_in_flight": 8, "peak_queued": 3, "peak_coalesce_occupancy": 2, "final_in_flight": 0, "final_queued": 0, "final_coalesce_occupancy": 0},
  "total_throughput_rps": 36948.1,
  "qcm": {"completed": 26304, "p50_us": 370},
  "qsm": {"completed": 2592, "p50_us": 521},
  "duplicate_burst": {"requests": 256, "stats": {"completed": 256, "p50_us": 24}, "leader_runs": 16, "bypass_runs": 0, "coalesced_hits": 240},
  "qsm_relax": {"expansion_queries": 4199, "queries_saved": 10260, "neighborhood_hits": 5130, "neighborhood_misses": 2887, "neighborhood_fills": 2887, "neighborhood_evictions": 0, "degraded_runs": 0, "alt_literal_hits": 3120, "alt_literal_misses": 84, "alt_literal_evictions": 0, "alt_predicate_hits": 2960, "alt_predicate_misses": 61, "alt_predicate_evictions": 0},
  "rejected_total": 0,
  "completion_cache": {"hits": 26113, "misses": 191, "hit_ratio": 0.993, "effective_hit_ratio": 0.996},
  "run_cache": {"hits": 2490, "misses": 102, "hit_ratio": 0.961, "effective_hit_ratio": 0.978},
  "sessions_leaked": 0,
  "cluster_scatter": {"shards": 2, "requests": 16, "completed": 16, "fanout_total": 16, "merges": 8, "edge_cache_hits": 8},
  "stages": {"admission_wait": {"count": 28896, "p50_us": 1, "p95_us": 3, "p99_us": 7, "max_us": 120}, "qcm_scan": {"count": 207, "p50_us": 255, "p95_us": 511, "p99_us": 1023, "max_us": 980}, "end_to_end": {"count": 28896, "p50_us": 380, "p95_us": 2047, "p99_us": 4095, "max_us": 9100}},
  "trace": {"sampling": 0, "recorded": 625, "dropped": 0, "hot_ops": 40000, "hot_rps_untraced": 412345.1, "hot_rps_sampled": 401234.9}
}"#;

    #[test]
    fn json_f64_reads_top_level_and_sectioned_fields() {
        assert_eq!(
            json_f64(REPORT, None, "total_throughput_rps"),
            Some(36948.1)
        );
        assert_eq!(json_f64(REPORT, None, "rejected_total"), Some(0.0));
        assert_eq!(json_f64(REPORT, None, "sessions_leaked"), Some(0.0));
        assert_eq!(
            json_f64(REPORT, Some("completion_cache"), "hit_ratio"),
            Some(0.993)
        );
        assert_eq!(
            json_f64(REPORT, Some("run_cache"), "hit_ratio"),
            Some(0.961)
        );
        assert_eq!(
            json_f64(REPORT, Some("run_cache"), "effective_hit_ratio"),
            Some(0.978)
        );
        // These two sit *after* the nested "stats" object — the reads that
        // serve_check's burst gate depends on.
        assert_eq!(
            json_f64(REPORT, Some("duplicate_burst"), "leader_runs"),
            Some(16.0)
        );
        assert_eq!(
            json_f64(REPORT, Some("duplicate_burst"), "bypass_runs"),
            Some(0.0)
        );
        assert_eq!(json_f64(REPORT, Some("qcm"), "completed"), Some(26304.0));
        // The QSM-tail section the serve_check gates read. "qsm_relax" must
        // not be shadowed by the "qsm" section search (the quoted-key match
        // is exact) and vice versa.
        assert_eq!(
            json_f64(REPORT, Some("qsm_relax"), "degraded_runs"),
            Some(0.0)
        );
        assert_eq!(
            json_f64(REPORT, Some("qsm_relax"), "queries_saved"),
            Some(10260.0)
        );
        assert_eq!(json_f64(REPORT, Some("qsm"), "p50_us"), Some(521.0));
    }

    #[test]
    fn json_f64_reads_the_observability_sections() {
        // Satellite counters of the QSM tail: the alternative-sweep caches.
        assert_eq!(
            json_f64(REPORT, Some("qsm_relax"), "alt_literal_hits"),
            Some(3120.0)
        );
        assert_eq!(
            json_f64(REPORT, Some("qsm_relax"), "alt_predicate_misses"),
            Some(61.0)
        );
        // Per-stage sections live inside the nested "stages" object; the
        // quoted-key search must reach them and must not confuse
        // "qcm_scan" with the "qcm" class section (or vice versa).
        assert_eq!(json_f64(REPORT, Some("qcm_scan"), "p99_us"), Some(1023.0));
        assert_eq!(json_f64(REPORT, Some("end_to_end"), "max_us"), Some(9100.0));
        assert_eq!(json_f64(REPORT, Some("qcm"), "completed"), Some(26304.0));
        assert_eq!(
            json_f64(REPORT, Some("admission_wait"), "count"),
            Some(28896.0)
        );
        // The tracing gates' reads.
        assert_eq!(json_f64(REPORT, Some("trace"), "dropped"), Some(0.0));
        assert_eq!(
            json_f64(REPORT, Some("trace"), "hot_rps_sampled"),
            Some(401234.9)
        );
        assert_eq!(
            json_f64(REPORT, Some("cluster_scatter"), "fanout_total"),
            Some(16.0)
        );
        // "stats" and "stages" must not shadow each other.
        assert_eq!(json_f64(REPORT, Some("stats"), "peak_in_flight"), Some(8.0));
    }

    #[test]
    fn json_f64_reads_the_top_level_stats_section_not_the_burst_one() {
        // `duplicate_burst` nests its own `"stats"` object; the load/occupancy
        // section must sit earlier in the report so the first-occurrence
        // section search resolves to it.
        assert_eq!(json_f64(REPORT, Some("stats"), "peak_in_flight"), Some(8.0));
        assert_eq!(json_f64(REPORT, Some("stats"), "peak_queued"), Some(3.0));
        assert_eq!(
            json_f64(REPORT, Some("stats"), "peak_coalesce_occupancy"),
            Some(2.0)
        );
        assert_eq!(json_f64(REPORT, Some("stats"), "final_queued"), Some(0.0));
        // The burst's nested stats are still reachable through their parent.
        assert_eq!(
            json_f64(REPORT, Some("duplicate_burst"), "completed"),
            Some(256.0)
        );
    }

    #[test]
    fn json_f64_is_none_for_missing_fields() {
        assert_eq!(json_f64(REPORT, None, "no_such_key"), None);
        assert_eq!(json_f64(REPORT, Some("no_such_section"), "hits"), None);
        // A key outside the requested section must not leak in.
        assert_eq!(json_f64(REPORT, Some("qcm"), "hit_ratio"), None);
    }
}
