//! `FaultProxy`: a byte-level TCP proxy that injects the failures the
//! wire layer claims to survive.
//!
//! It sits between a [`WireClient`](crate::WireClient) and a
//! [`WireServer`](crate::WireServer) and forwards raw bytes, with four
//! independently switchable faults:
//!
//! * **latency** — sleep before forwarding each chunk (both directions);
//! * **drop new** — accepted connections are closed before the upstream
//!   dial, so the client handshake sees an immediate reset;
//! * **one-way partition** — bytes in one direction are read and
//!   discarded (the classic "requests arrive, replies vanish" half-open
//!   failure that turns into client read timeouts);
//! * **kill active** — every live connection pair is shot mid-stream.
//!
//! The proxy knows nothing about frames on purpose: faults land at
//! arbitrary byte boundaries, which is exactly how real networks corrupt
//! a length-prefixed stream (and what [`WireError::ShortRead`] /
//! [`WireError::Timeout`](crate::WireError::Timeout) must classify
//! correctly).
//!
//! [`WireError::ShortRead`]: crate::WireError::ShortRead

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// The switchboard of injectable faults, shared with every pump thread.
#[derive(Debug, Default)]
pub struct FaultPlan {
    /// Microseconds of delay injected before each forwarded chunk.
    latency_us: AtomicU64,
    /// Close newly accepted connections instead of dialing upstream.
    drop_new: AtomicBool,
    /// Discard client→server bytes (requests vanish).
    blackhole_up: AtomicBool,
    /// Discard server→client bytes (replies vanish).
    blackhole_down: AtomicBool,
}

impl FaultPlan {
    /// Inject `d` of latency before each forwarded chunk (each direction).
    pub fn set_latency(&self, d: Duration) {
        self.latency_us
            .store(d.as_micros() as u64, Ordering::Relaxed);
    }

    /// Refuse (close) new connections when `on`.
    pub fn set_drop_new(&self, on: bool) {
        self.drop_new.store(on, Ordering::Relaxed);
    }

    /// One-way partition toward the server: requests are swallowed.
    pub fn set_partition_to_server(&self, on: bool) {
        self.blackhole_up.store(on, Ordering::Relaxed);
    }

    /// One-way partition toward the client: replies are swallowed.
    pub fn set_partition_to_client(&self, on: bool) {
        self.blackhole_down.store(on, Ordering::Relaxed);
    }
}

/// A fault-injecting TCP proxy in front of one upstream address.
pub struct FaultProxy {
    addr: SocketAddr,
    plan: Arc<FaultPlan>,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Listen on an ephemeral loopback port, forwarding to `upstream`.
    pub fn start(upstream: SocketAddr) -> std::io::Result<FaultProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let plan = Arc::new(FaultPlan::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let plan = plan.clone();
            let shutdown = shutdown.clone();
            let conns = conns.clone();
            std::thread::spawn(move || {
                accept_loop(listener, upstream, plan, shutdown, conns);
            })
        };
        Ok(FaultProxy {
            addr,
            plan,
            shutdown,
            conns,
            accept: Some(accept),
        })
    }

    /// The address clients should dial instead of the upstream.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The fault switchboard.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Shoot every live connection pair mid-stream.
    pub fn kill_active(&self) {
        let conns = self.conns.lock().unwrap();
        for c in conns.iter() {
            let _ = c.shutdown(Shutdown::Both);
        }
    }

    /// Stop accepting, kill live connections, join the accept thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.kill_active();
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    plan: Arc<FaultPlan>,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
) {
    loop {
        let client = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        if plan.drop_new.load(Ordering::Relaxed) {
            drop(client);
            continue;
        }
        let server = match TcpStream::connect_timeout(&upstream, Duration::from_secs(1)) {
            Ok(s) => s,
            Err(_) => {
                drop(client);
                continue;
            }
        };
        for s in [&client, &server] {
            if let Ok(h) = s.try_clone() {
                conns.lock().unwrap().push(h);
            }
        }
        // Two pump threads per pair, one per direction.
        spawn_pump(
            client.try_clone().ok(),
            server.try_clone().ok(),
            plan.clone(),
            Direction::Up,
        );
        spawn_pump(Some(server), Some(client), plan.clone(), Direction::Down);
    }
}

#[derive(Clone, Copy)]
enum Direction {
    Up,
    Down,
}

fn spawn_pump(
    from: Option<TcpStream>,
    to: Option<TcpStream>,
    plan: Arc<FaultPlan>,
    dir: Direction,
) {
    let (Some(mut from), Some(mut to)) = (from, to) else {
        return;
    };
    std::thread::spawn(move || {
        let mut buf = [0u8; 16 * 1024];
        loop {
            let n = match from.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => n,
            };
            let latency = plan.latency_us.load(Ordering::Relaxed);
            if latency > 0 {
                std::thread::sleep(Duration::from_micros(latency));
            }
            let blackholed = match dir {
                Direction::Up => plan.blackhole_up.load(Ordering::Relaxed),
                Direction::Down => plan.blackhole_down.load(Ordering::Relaxed),
            };
            if blackholed {
                continue; // read and discard: a half-open partition
            }
            if to.write_all(&buf[..n]).is_err() {
                break;
            }
        }
        // Propagate the close so the other end does not hang forever.
        let _ = to.shutdown(Shutdown::Both);
        let _ = from.shutdown(Shutdown::Both);
    });
}
