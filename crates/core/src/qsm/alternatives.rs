//! Alternative query terms (Algorithm 2, §6.2.1).
//!
//! For every ground predicate in the user's query, find dataset predicates
//! whose Jaro-Winkler similarity to the predicate *or any of its lexica*
//! clears θ; for every ground literal, find similar cached literals in the
//! bins `[|l| − α, |l| + β]`. Each alternative yields a new query differing
//! in exactly one term ("did you mean X instead of Y?"), and the top `k/2`
//! predicate and `k/2` literal queries *that return answers* are suggested,
//! with their answers prefetched.

use std::sync::Arc;

use sapphire_endpoint::FederatedProcessor;
use sapphire_rdf::{Literal, Term};
use sapphire_sparql::{Query, QueryResult, SelectQuery, Solutions, TermPattern};
use sapphire_text::{surface_form, Lexicon};

use crate::cache::{CachedData, ShardedLru};
use crate::config::SapphireConfig;

/// Which position of a triple pattern an alternative replaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlteredPosition {
    /// The predicate was replaced.
    Predicate,
    /// The object literal was replaced.
    Object,
}

/// One "did you mean …?" suggestion.
#[derive(Debug, Clone)]
pub struct TermAlternative {
    /// Index of the altered triple pattern in the query.
    pub triple_index: usize,
    /// Which position changed.
    pub position: AlteredPosition,
    /// Display text of the original term.
    pub original: String,
    /// Display text of the replacement.
    pub replacement: String,
    /// Jaro-Winkler similarity between original (or its lexica) and the
    /// replacement.
    pub similarity: f64,
    /// The full rewritten query.
    pub query: SelectQuery,
    /// Prefetched answers of the rewritten query (§4: answers "are prefetched
    /// so that when the user decides to choose one of the alternatives … the
    /// answers are displayed almost-instantaneously").
    pub answers: Solutions,
}

impl TermAlternative {
    /// Number of prefetched answers.
    pub fn answer_count(&self) -> usize {
        self.answers.len()
    }

    /// The user-facing phrasing of Figure 2.
    pub fn describe(&self) -> String {
        format!(
            "Did you mean \"{}\" instead of \"{}\"? There are {} answers available.",
            self.replacement,
            self.original,
            self.answer_count()
        )
    }
}

/// Finds alternative query terms.
///
/// Both alternative lookups — literal alternatives (a Jaro-Winkler sweep
/// over the cached literal corpus) and predicate alternatives (a sweep per
/// lexicon verbalization) — are pure functions of the immutable model, so
/// their results are memoized in bounded cross-request caches: the sweep
/// runs once per distinct term, and every later query containing that term
/// (any session, any thread) gets the ranked list as a pointer bump. The
/// serving tier's QSM runs 2–3 of these sweeps per *cold* query, and
/// distinct queries share most of their terms, so this is a direct cut to
/// the QSM tail.
pub struct AlternativeFinder {
    cache: Arc<CachedData>,
    lexicon: Lexicon,
    config: SapphireConfig,
    literal_alts: AltCache,
    predicate_alts: AltCache,
}

/// A ranked list of `(text, score)` alternatives, shared across requests.
type AltList = Arc<Vec<(String, f64)>>;

/// A small sharded LRU over ranked alternative lists.
#[derive(Debug)]
struct AltCache {
    shards: ShardedLru<String, AltList>,
}

impl AltCache {
    fn new(shards: usize, capacity_per_shard: usize) -> Self {
        AltCache {
            shards: ShardedLru::new(shards, capacity_per_shard),
        }
    }

    fn get_or_insert(&self, key: &str, compute: impl FnOnce() -> Vec<(String, f64)>) -> AltList {
        if let Some(hit) = self.shards.get(key) {
            return hit;
        }
        // Compute outside the shard lock: the sweep is the expensive part,
        // and a concurrent duplicate sweep is idempotent (pure function).
        let value = Arc::new(compute());
        self.shards.insert(key.to_string(), value.clone());
        value
    }

    fn stats(&self) -> crate::cache::CacheStats {
        self.shards.stats()
    }
}

/// Counter snapshot of the memoized alternative-sweep caches — one
/// [`CacheStats`](crate::cache::CacheStats) per sweep kind. A hit means a
/// whole Jaro-Winkler corpus sweep was skipped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AltCacheStats {
    /// The literal-alternatives cache (bin-banded JW sweep per literal).
    pub literal: crate::cache::CacheStats,
    /// The predicate-alternatives cache (JW sweep per lexicon verbalization).
    pub predicate: crate::cache::CacheStats,
}

impl AlternativeFinder {
    /// Build a finder.
    pub fn new(cache: Arc<CachedData>, lexicon: Lexicon, config: SapphireConfig) -> Self {
        let (shards, capacity) = (
            config.neighborhood_cache_shards,
            config.neighborhood_cache_capacity,
        );
        AlternativeFinder {
            cache,
            lexicon,
            config,
            literal_alts: AltCache::new(shards, capacity),
            predicate_alts: AltCache::new(shards, capacity),
        }
    }

    /// Hit/miss/eviction counters of both memoization caches.
    pub fn alt_cache_stats(&self) -> AltCacheStats {
        AltCacheStats {
            literal: self.literal_alts.stats(),
            predicate: self.predicate_alts.stats(),
        }
    }

    /// Literal alternatives for a single literal value — also used to build
    /// the Steiner seed groups (Algorithm 3 line 3). Memoized across
    /// requests (pure function of the model).
    pub fn literal_alternatives(&self, value: &str) -> Arc<Vec<(String, f64)>> {
        self.literal_alts.get_or_insert(value, || {
            self.cache
                .similar_literals(
                    value,
                    self.config.alpha,
                    self.config.beta,
                    self.config.theta,
                    self.config.processes,
                )
                .into_iter()
                .filter(|(text, _)| text != value)
                .collect()
        })
    }

    /// Predicate alternatives for a predicate IRI, searching its surface form
    /// and all its lexica (Algorithm 2 lines 3–7). Memoized across requests
    /// (pure function of the model).
    pub fn predicate_alternatives(&self, iri: &str) -> Arc<Vec<(String, f64)>> {
        self.predicate_alts.get_or_insert(iri, || {
            let surface = surface_form(iri);
            let mut best: Vec<(String, f64)> = Vec::new();
            for verbalization in self.lexicon.get_lexica(&surface) {
                for (idx, score) in self
                    .cache
                    .similar_predicates(&verbalization, self.config.theta)
                {
                    let alt = &self.cache.predicates[idx];
                    if alt.iri == iri {
                        continue;
                    }
                    match best.iter_mut().find(|(i, _)| i == &alt.iri) {
                        Some((_, s)) if *s < score => *s = score,
                        Some(_) => {}
                        None => best.push((alt.iri.clone(), score)),
                    }
                }
            }
            best.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            best
        })
    }

    /// Run Algorithm 2: collect, rank, execute, and keep the top `k/2`
    /// predicate-alternative and `k/2` literal-alternative queries that
    /// return answers.
    pub fn suggest(&self, query: &SelectQuery, fed: &FederatedProcessor) -> Vec<TermAlternative> {
        let (predicate_candidates, literal_candidates) = self.candidate_lists(query);
        // Lines 23–24: top k/2 of each list *with answers*, prefetched.
        let half = (self.config.k / 2).max(1);
        let mut out = self.top_with_answers(&predicate_candidates, half, fed);
        out.extend(self.top_with_answers(&literal_candidates, half, fed));
        out
    }

    /// The ranked rewrite candidates of Algorithm 2 lines 1–14, *before*
    /// execution: every similar predicate and literal, sorted by similarity,
    /// with empty (not yet prefetched) answers. A cluster edge gathers these
    /// from every shard and applies the "returns answers" cut itself,
    /// against the *global* answer set — a shard cannot apply it locally,
    /// because a rewrite whose answers live on other shards would be dropped
    /// by everyone.
    pub fn candidates(&self, query: &SelectQuery) -> Vec<TermAlternative> {
        let (mut predicates, literals) = self.candidate_lists(query);
        predicates.extend(literals);
        predicates
    }

    /// Candidate generation shared by [`suggest`](Self::suggest) and
    /// [`candidates`](Self::candidates): per-kind lists sorted by similarity.
    pub(crate) fn candidate_lists(
        &self,
        query: &SelectQuery,
    ) -> (Vec<TermAlternative>, Vec<TermAlternative>) {
        let mut predicate_candidates: Vec<TermAlternative> = Vec::new();
        let mut literal_candidates: Vec<TermAlternative> = Vec::new();

        for (ti, triple) in query.pattern.triples.iter().enumerate() {
            // Predicates.
            if let TermPattern::Term(Term::Iri(p_iri)) = &triple.predicate {
                for (alt_iri, score) in self.predicate_alternatives(p_iri).iter() {
                    let mut q = query.clone();
                    q.pattern.triples[ti].predicate = TermPattern::Term(Term::iri(alt_iri.clone()));
                    predicate_candidates.push(TermAlternative {
                        triple_index: ti,
                        position: AlteredPosition::Predicate,
                        original: surface_form(p_iri),
                        replacement: surface_form(alt_iri),
                        similarity: *score,
                        query: q,
                        answers: Solutions::default(),
                    });
                }
            }
            // Literals (objects only; literals cannot be subjects).
            if let TermPattern::Term(Term::Literal(lit)) = &triple.object {
                for (alt_text, score) in self.literal_alternatives(&lit.value).iter() {
                    let mut q = query.clone();
                    q.pattern.triples[ti].object =
                        TermPattern::Term(Term::Literal(self.replacement_literal(lit, alt_text)));
                    literal_candidates.push(TermAlternative {
                        triple_index: ti,
                        position: AlteredPosition::Object,
                        original: lit.value.clone(),
                        replacement: alt_text.clone(),
                        similarity: *score,
                        query: q,
                        answers: Solutions::default(),
                    });
                }
            }
        }

        // Lines 13–14: sort by similarity.
        let by_score = |a: &TermAlternative, b: &TermAlternative| {
            b.similarity
                .partial_cmp(&a.similarity)
                .unwrap_or(std::cmp::Ordering::Equal)
        };
        predicate_candidates.sort_by(by_score);
        literal_candidates.sort_by(by_score);
        (predicate_candidates, literal_candidates)
    }

    /// Cached literals were retrieved with the configured language filter, so
    /// replacements keep the original's language tag (or gain the configured
    /// one) — this is what makes the rewritten query ground-match the data.
    fn replacement_literal(&self, original: &Literal, alt_text: &str) -> Literal {
        match (&original.lang, &original.datatype) {
            (Some(lang), _) => Literal::lang_tagged(alt_text, lang.clone()),
            (None, Some(_)) | (None, None) => {
                Literal::lang_tagged(alt_text, self.config.language.clone())
            }
        }
    }

    /// Borrows the candidate slice and clones only the entries it keeps, so
    /// callers can hand the full (shared) candidate list around without a
    /// wholesale copy per scan.
    pub(crate) fn top_with_answers(
        &self,
        candidates: &[TermAlternative],
        take: usize,
        fed: &FederatedProcessor,
    ) -> Vec<TermAlternative> {
        let mut kept: Vec<TermAlternative> = Vec::new();
        for cand in candidates {
            if kept.len() >= take {
                break;
            }
            let result = fed.execute_parsed(&Query::Select(cand.query.clone()));
            if let Ok(QueryResult::Solutions(answers)) = result {
                if !answers.is_empty() {
                    let mut kept_cand = cand.clone();
                    kept_cand.answers = answers;
                    kept.push(kept_cand);
                }
            }
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapphire_endpoint::{Endpoint, EndpointLimits, LocalEndpoint};
    use sapphire_rdf::turtle;
    use sapphire_sparql::parse_select;

    const DATA: &str = r#"
res:JFK a dbo:Person ; dbo:surname "Kennedy"@en ; dbo:spouse res:Jackie .
res:RFK a dbo:Person ; dbo:surname "Kennedy"@en .
res:Jackie a dbo:Person ; dbo:surname "Kennedy Onassis"@en .
res:Ada a dbo:Person ; dbo:surname "Lovelace"@en ; dbo:almaMater res:UoL .
res:UoL a dbo:University ; dbo:name "University of London"@en .
"#;

    fn setup() -> (AlternativeFinder, FederatedProcessor) {
        let config = SapphireConfig {
            processes: 2,
            ..SapphireConfig::for_tests()
        };
        let graph = turtle::parse(DATA).unwrap();
        let ep: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
            "test",
            graph,
            EndpointLimits::warehouse(),
        ));
        let fed = FederatedProcessor::single(ep);
        let cache = CachedData::from_raw(
            vec![
                ("http://dbpedia.org/ontology/surname".into(), 4),
                ("http://dbpedia.org/ontology/spouse".into(), 0),
                ("http://dbpedia.org/ontology/almaMater".into(), 0),
                ("http://dbpedia.org/ontology/name".into(), 1),
            ],
            vec![
                ("Kennedy".into(), 10),
                ("Kennedy Onassis".into(), 3),
                ("Lovelace".into(), 1),
                ("University of London".into(), 5),
            ],
            &config,
        );
        (
            AlternativeFinder::new(Arc::new(cache), Lexicon::dbpedia_default(), config.clone()),
            fed,
        )
    }

    #[test]
    fn kennedys_suggestion_matches_figure_2() {
        let (finder, fed) = setup();
        // The paper's running example: surname "Kennedys" returns nothing;
        // the QSM suggests "Kennedy".
        let q = parse_select(r#"SELECT ?p WHERE { ?p dbo:surname "Kennedys"@en }"#).unwrap();
        let suggestions = finder.suggest(&q, &fed);
        let lit = suggestions
            .iter()
            .find(|s| s.position == AlteredPosition::Object)
            .expect("literal alternative expected");
        assert_eq!(lit.replacement, "Kennedy");
        assert_eq!(lit.answer_count(), 2, "JFK and RFK");
        assert!(lit.describe().contains("instead of \"Kennedys\""));
    }

    #[test]
    fn lexicon_maps_wife_to_spouse() {
        let (finder, _) = setup();
        // A predicate verbalized as "wife" should reach dbo:spouse through
        // the lexicon even though JW("wife", "spouse") < θ.
        let alts = finder.predicate_alternatives("http://dbpedia.org/ontology/wife");
        assert!(
            alts.iter()
                .any(|(iri, _)| iri == "http://dbpedia.org/ontology/spouse"),
            "{alts:?}"
        );
    }

    #[test]
    fn jw_finds_misspelled_predicates() {
        let (finder, _) = setup();
        let alts = finder.predicate_alternatives("http://dbpedia.org/ontology/surnames");
        assert_eq!(alts[0].0, "http://dbpedia.org/ontology/surname");
    }

    #[test]
    fn suggestions_only_with_answers() {
        let (finder, fed) = setup();
        let q = parse_select(r#"SELECT ?p WHERE { ?p dbo:surname "Lovelacey"@en }"#).unwrap();
        let suggestions = finder.suggest(&q, &fed);
        for s in &suggestions {
            assert!(
                s.answer_count() > 0,
                "suggested queries must return answers"
            );
        }
        assert!(suggestions.iter().any(|s| s.replacement == "Lovelace"));
    }

    #[test]
    fn at_most_k_over_2_per_kind() {
        let (finder, fed) = setup();
        let q = parse_select(r#"SELECT ?p WHERE { ?p dbo:surname "Kennedy Onasis"@en }"#).unwrap();
        let suggestions = finder.suggest(&q, &fed);
        let k = 10;
        let lits = suggestions
            .iter()
            .filter(|s| s.position == AlteredPosition::Object)
            .count();
        let preds = suggestions
            .iter()
            .filter(|s| s.position == AlteredPosition::Predicate)
            .count();
        assert!(lits <= k / 2);
        assert!(preds <= k / 2);
    }

    #[test]
    fn literal_alternatives_respect_length_band() {
        let (finder, _) = setup();
        // |"Kennedy"| = 7; α=2, β=3 ⇒ lengths 5..=10. "Kennedy Onassis" (15)
        // is out of range even though similar.
        let alts = finder.literal_alternatives("Kennedyx");
        assert!(alts.iter().any(|(t, _)| t == "Kennedy"));
        assert!(alts.iter().all(|(t, _)| t != "Kennedy Onassis"));
    }
}
