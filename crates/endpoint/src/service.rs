//! Shared query services and the server-backed endpoint adapter.
//!
//! A [`LocalEndpoint`](crate::LocalEndpoint) is a *dataset* — it owns a graph
//! and answers queries with per-query limits. A [`QueryService`] is a
//! *serving tier* on top: one shared, concurrently used query processor with
//! service-level admission control (queue depth, per-tenant budgets). The
//! [`ServiceEndpoint`] adapter lets any such service stand wherever an
//! [`Endpoint`] is expected — in particular inside a
//! [`FederatedProcessor`](crate::FederatedProcessor), so one Sapphire server
//! can federate over other Sapphire servers.

use std::sync::Arc;

use sapphire_sparql::{Query, QueryResult};

use crate::endpoint::{Endpoint, EndpointError};

/// Typed failures of a shared query service. Mirrors [`EndpointError`] where
/// the semantics coincide and adds the service-level overload rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Admission control turned the request away: the in-flight limit and
    /// wait queue were both full.
    Overloaded {
        /// Requests in flight when this one arrived.
        in_flight: usize,
        /// Requests already waiting in the admission queue.
        queue_depth: usize,
    },
    /// The request was admitted but exceeded a work budget while executing.
    Timeout {
        /// Work units consumed before the service gave up.
        work_used: u64,
    },
    /// The request waited in the service's admission queue past its
    /// deadline without ever getting a slot — saturation, not a work limit.
    QueueTimeout {
        /// How long the request waited, in milliseconds.
        waited_ms: u64,
    },
    /// A tenant exhausted its work budget for the current accounting window.
    QuotaExhausted {
        /// The tenant whose budget ran out.
        tenant: String,
        /// Work units charged so far in this window.
        used: u64,
        /// The tenant's per-window budget.
        budget: u64,
    },
    /// The backend endpoint (or federation) failed.
    Backend(EndpointError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded {
                in_flight,
                queue_depth,
            } => write!(
                f,
                "service overloaded ({in_flight} in flight, {queue_depth} queued)"
            ),
            ServiceError::Timeout { work_used } => {
                write!(f, "service timeout after {work_used} work units")
            }
            ServiceError::QueueTimeout { waited_ms } => {
                write!(f, "service admission queue timeout after {waited_ms}ms")
            }
            ServiceError::QuotaExhausted {
                tenant,
                used,
                budget,
            } => {
                write!(
                    f,
                    "tenant {tenant:?} exhausted budget ({used}/{budget} work units)"
                )
            }
            ServiceError::Backend(e) => write!(f, "backend error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<ServiceError> for EndpointError {
    fn from(e: ServiceError) -> Self {
        match e {
            ServiceError::Overloaded { in_flight, .. } => EndpointError::Overloaded { in_flight },
            ServiceError::Timeout { work_used } => EndpointError::Timeout { work_used },
            // A queue-deadline miss is a saturation signal; the service no
            // longer knows its in-flight count at conversion time.
            ServiceError::QueueTimeout { .. } => EndpointError::Overloaded { in_flight: 0 },
            ServiceError::QuotaExhausted { used, .. } => EndpointError::Rejected {
                estimated_cost: used,
            },
            ServiceError::Backend(e) => e,
        }
    }
}

/// Canonical fingerprint of a parsed query, shared across serving hops.
///
/// Two queries with the same fingerprint are the *same request* to a shared
/// query service: a coalescing service (the Sapphire server single-flights
/// identical in-flight queries on exactly this key) deduplicates them, and
/// every federation hop that forwards a query unchanged forwards its
/// fingerprint unchanged too — so a burst of identical queries fanning out
/// through a multi-tier topology collapses to one backend execution per tier.
/// The rendering is the AST's structural debug form, which is stable and
/// canonical for parsed queries (prefixes are expanded at parse time).
pub fn query_fingerprint(query: &Query) -> String {
    format!("svc\u{1}{query:?}")
}

/// A shared, admission-controlled query processor.
///
/// Implementations must be usable from many threads at once; the bound is
/// `Send + Sync` for the same reason [`Endpoint`]'s is.
pub trait QueryService: Send + Sync {
    /// The service's registered name.
    fn service_name(&self) -> &str;

    /// Execute a query on behalf of `tenant`, subject to the service's
    /// admission control and budgets.
    fn execute_query(&self, tenant: &str, query: &Query) -> Result<QueryResult, ServiceError>;

    /// Execute a query with a *requested* degradation tier. Tier 0 demands
    /// full fidelity; a higher tier tells the service that output degraded
    /// up to that tier is acceptable in exchange for a smaller work budget
    /// (in Sapphire, a shallower Steiner relaxation sweep). A cluster edge
    /// under queue pressure or a shrinking deadline uses this to shed work
    /// on the shards it scatters to, instead of each shard discovering
    /// overload on its own.
    ///
    /// The tier is a ceiling on fidelity, not a floor on effort: an
    /// implementation may execute at a *deeper* tier than requested (its own
    /// overload machinery still applies), but it must never satisfy a tier-0
    /// request with degraded output, and any response caching it performs
    /// must be keyed by the tier it actually honored — degraded and full
    /// payloads never share a cache or coalescer entry. The default
    /// implementation ignores the request and executes at full fidelity,
    /// which is correct for services with no degraded mode (a raw SPARQL
    /// backend has no relaxation to shed).
    fn execute_query_tiered(
        &self,
        tenant: &str,
        query: &Query,
        tier: usize,
    ) -> Result<QueryResult, ServiceError> {
        let _ = tier;
        self.execute_query(tenant, query)
    }
}

/// Adapter presenting a [`QueryService`] as an [`Endpoint`] for one tenant.
///
/// This is how a Sapphire server becomes a *backend* of another Sapphire
/// deployment: wrap the server in a `ServiceEndpoint` and register it with a
/// `FederatedProcessor`. Service-level rejections surface as the typed
/// [`EndpointError::Overloaded`] / [`EndpointError::Timeout`] variants, so
/// federation code can distinguish overload from data errors.
///
/// The adapter is deliberately stateless beyond its `Arc` and tenant name —
/// and therefore [`Clone`] — so one downstream service can stand behind any
/// number of federation workers. Identical queries forwarded concurrently
/// through *different* clones still deduplicate at the service: the
/// downstream server single-flights them by [`query_fingerprint`], so a
/// burst of users asking the same question at an edge tier costs the
/// warehouse tier one execution, not one per clone.
pub struct ServiceEndpoint<S: QueryService> {
    service: Arc<S>,
    tenant: String,
}

impl<S: QueryService> Clone for ServiceEndpoint<S> {
    fn clone(&self) -> Self {
        ServiceEndpoint {
            service: Arc::clone(&self.service),
            tenant: self.tenant.clone(),
        }
    }
}

impl<S: QueryService> ServiceEndpoint<S> {
    /// Present `service` as an endpoint whose queries are billed to `tenant`.
    pub fn new(service: Arc<S>, tenant: impl Into<String>) -> Self {
        ServiceEndpoint {
            service,
            tenant: tenant.into(),
        }
    }

    /// The wrapped service.
    pub fn service(&self) -> &Arc<S> {
        &self.service
    }
}

impl<S: QueryService> Endpoint for ServiceEndpoint<S> {
    fn name(&self) -> &str {
        self.service.service_name()
    }

    fn execute_parsed(&self, query: &Query) -> Result<QueryResult, EndpointError> {
        self.service
            .execute_query(&self.tenant, query)
            .map_err(EndpointError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{EndpointLimits, LocalEndpoint};
    use sapphire_sparql::parse_query;

    /// A service that alternates between answering and shedding load.
    struct FlakyService {
        inner: LocalEndpoint,
        admitted: std::sync::Mutex<bool>,
    }

    impl QueryService for FlakyService {
        fn service_name(&self) -> &str {
            "flaky"
        }

        fn execute_query(&self, _tenant: &str, query: &Query) -> Result<QueryResult, ServiceError> {
            let mut admit = self.admitted.lock().unwrap();
            *admit = !*admit;
            if *admit {
                self.inner
                    .execute_parsed(query)
                    .map_err(ServiceError::Backend)
            } else {
                Err(ServiceError::Overloaded {
                    in_flight: 7,
                    queue_depth: 3,
                })
            }
        }
    }

    #[test]
    fn service_endpoint_maps_typed_errors() {
        let g = sapphire_rdf::turtle::parse("res:A a dbo:Thing .").unwrap();
        let service = Arc::new(FlakyService {
            inner: LocalEndpoint::new("inner", g, EndpointLimits::warehouse()),
            admitted: std::sync::Mutex::new(false),
        });
        let ep = ServiceEndpoint::new(service, "tenant-1");
        let q = parse_query("SELECT ?s WHERE { ?s a dbo:Thing }").unwrap();
        assert!(matches!(ep.execute_parsed(&q), Ok(QueryResult::Solutions(s)) if s.len() == 1));
        assert_eq!(
            ep.execute_parsed(&q).unwrap_err(),
            EndpointError::Overloaded { in_flight: 7 }
        );
        assert_eq!(ep.name(), "flaky");
    }

    #[test]
    fn query_fingerprints_identify_identical_queries() {
        let a = parse_query("SELECT ?s WHERE { ?s a dbo:Thing }").unwrap();
        let b = parse_query("SELECT ?s WHERE { ?s a dbo:Thing }").unwrap();
        let c = parse_query("SELECT ?s WHERE { ?s a dbo:Person }").unwrap();
        assert_eq!(query_fingerprint(&a), query_fingerprint(&b));
        assert_ne!(query_fingerprint(&a), query_fingerprint(&c));
    }

    #[test]
    fn service_endpoint_clones_share_the_service() {
        let g = sapphire_rdf::turtle::parse("res:A a dbo:Thing .").unwrap();
        let service = Arc::new(FlakyService {
            inner: LocalEndpoint::new("inner", g, EndpointLimits::warehouse()),
            admitted: std::sync::Mutex::new(false),
        });
        let ep = ServiceEndpoint::new(service.clone(), "tenant-1");
        let ep2 = ep.clone();
        assert_eq!(Arc::strong_count(&service), 3, "one service, two adapters");
        let q = parse_query("SELECT ?s WHERE { ?s a dbo:Thing }").unwrap();
        // The flaky flip-flop state lives in the shared service, not the
        // clone: alternating outcomes interleave across both adapters.
        assert!(ep.execute_parsed(&q).is_ok());
        assert!(ep2.execute_parsed(&q).is_err());
    }

    /// A service with a real degraded mode: it records the deepest tier it
    /// honored and sheds the (fake) expensive half of its work past tier 0.
    struct TieredService {
        inner: LocalEndpoint,
        deepest: std::sync::atomic::AtomicUsize,
    }

    impl QueryService for TieredService {
        fn service_name(&self) -> &str {
            "tiered"
        }

        fn execute_query(&self, tenant: &str, query: &Query) -> Result<QueryResult, ServiceError> {
            self.execute_query_tiered(tenant, query, 0)
        }

        fn execute_query_tiered(
            &self,
            _tenant: &str,
            query: &Query,
            tier: usize,
        ) -> Result<QueryResult, ServiceError> {
            self.deepest
                .fetch_max(tier, std::sync::atomic::Ordering::Relaxed);
            self.inner
                .execute_parsed(query)
                .map_err(ServiceError::Backend)
        }
    }

    #[test]
    fn tiered_surface_defaults_to_full_fidelity_and_lets_services_honor_tiers() {
        let g = sapphire_rdf::turtle::parse("res:A a dbo:Thing .").unwrap();
        // The default implementation ignores the tier entirely.
        let flaky = Arc::new(FlakyService {
            inner: LocalEndpoint::new("inner", g, EndpointLimits::warehouse()),
            admitted: std::sync::Mutex::new(false),
        });
        let q = parse_query("SELECT ?s WHERE { ?s a dbo:Thing }").unwrap();
        assert!(matches!(
            flaky.execute_query_tiered("t", &q, 2),
            Ok(QueryResult::Solutions(s)) if s.len() == 1
        ));
        // A tier-honoring service sees exactly the requested tier.
        let g = sapphire_rdf::turtle::parse("res:A a dbo:Thing .").unwrap();
        let tiered = TieredService {
            inner: LocalEndpoint::new("inner", g, EndpointLimits::warehouse()),
            deepest: std::sync::atomic::AtomicUsize::new(0),
        };
        assert!(tiered.execute_query_tiered("t", &q, 1).is_ok());
        assert!(tiered.execute_query("t", &q).is_ok());
        assert_eq!(
            tiered.deepest.load(std::sync::atomic::Ordering::Relaxed),
            1,
            "tier 1 was honored; the untiered call requested tier 0"
        );
    }

    #[test]
    fn service_error_conversions() {
        let e: EndpointError = ServiceError::Timeout { work_used: 42 }.into();
        assert_eq!(e, EndpointError::Timeout { work_used: 42 });
        let e: EndpointError = ServiceError::QueueTimeout { waited_ms: 250 }.into();
        assert_eq!(
            e,
            EndpointError::Overloaded { in_flight: 0 },
            "queue-deadline miss converts to overload, never to fabricated work units"
        );
        let e: EndpointError = ServiceError::QuotaExhausted {
            tenant: "t".into(),
            used: 9,
            budget: 8,
        }
        .into();
        assert_eq!(e, EndpointError::Rejected { estimated_cost: 9 });
        let display = ServiceError::Overloaded {
            in_flight: 1,
            queue_depth: 2,
        }
        .to_string();
        assert!(display.contains("overloaded"));
    }
}
