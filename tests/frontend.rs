//! Front-end-vs-oracle contracts: the evented tier (sessions multiplexed on
//! a small worker pool, non-blocking admission) must be *indistinguishable
//! in content* from the thread-per-request tier it replaces.
//!
//! The comparison contract: every session's response stream, rendered
//! canonically (timing fields and the run-to-run `cached` flag excluded —
//! they depend on scheduling, not on answers), must be byte-identical
//! between a `SapphireServer` driven directly and the same workload
//! submitted through a [`Frontend`] — per session, in submission order,
//! with submissions interleaved across sessions so the multiplexing is
//! real.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use sapphire_cluster::{Cluster, ClusterConfig, ClusterRouter};
use sapphire_core::session::Modifiers;
use sapphire_core::{InitMode, PredictiveUserModel, SapphireConfig};
use sapphire_datagen::workload::appendix_b;
use sapphire_datagen::{generate, DatasetConfig};
use sapphire_endpoint::{EndpointLimits, QueryService};
use sapphire_server::frontend::{FrontRequest, FrontResponse};
use sapphire_server::{
    Frontend, FrontendConfig, SapphireServer, ServerConfig, ServerError, SessionId,
};
use sapphire_text::Lexicon;

fn pum() -> Arc<PredictiveUserModel> {
    Arc::new(
        PredictiveUserModel::initialize_local(
            "oracle",
            generate(DatasetConfig::tiny(42)),
            EndpointLimits::warehouse(),
            Lexicon::dbpedia_default(),
            SapphireConfig {
                processes: 2,
                ..SapphireConfig::default()
            },
            InitMode::Federated,
        )
        .unwrap(),
    )
}

/// A roomy serving posture: the oracle comparison must never shed load
/// (rejections are timing-dependent and would fail the byte comparison for
/// the wrong reason).
fn roomy_config() -> ServerConfig {
    ServerConfig {
        max_in_flight: 8,
        max_queue_depth: 1024,
        queue_wait: std::time::Duration::from_secs(30),
        ..ServerConfig::for_tests()
    }
}

/// The per-session request script: the Appendix-B workload exactly as
/// `serve_load` types it — per-keystroke completions, row edits, modifiers,
/// a run per question, and an accept attempt after each run.
fn session_script(offset: usize) -> Vec<FrontRequest> {
    let questions = appendix_b();
    let mut script = Vec::new();
    for qi in 0..questions.len() {
        let q = &questions[(qi + offset) % questions.len()];
        for (row, input) in q.script.rows.iter().enumerate() {
            let keyword = input.object.trim_start_matches('?');
            for end in 1..=keyword.chars().count().min(4) {
                script.push(FrontRequest::Complete {
                    typed: keyword.chars().take(end).collect(),
                });
            }
            script.push(FrontRequest::SetRow {
                idx: row,
                input: input.clone(),
            });
        }
        script.push(FrontRequest::SetModifiers {
            modifiers: Modifiers {
                distinct: false,
                order_by: q.script.order_by.clone(),
                limit: q.script.limit,
                count: q.script.count,
                filters: q.script.filters.clone(),
            },
        });
        script.push(FrontRequest::Run);
        // Accept the top "did you mean" when one exists; the typed
        // `UnknownSuggestion` answer when none does is part of the
        // transcript too.
        script.push(FrontRequest::ApplyAlternative { index: 0 });
    }
    script
}

/// Canonical rendering: everything answer-determined, nothing
/// timing-determined.
fn render(result: &Result<FrontResponse, ServerError>) -> String {
    match result {
        Ok(FrontResponse::Completion(c)) => format!(
            "C|{:?}|{}|{}",
            c.suggestions, c.tree_hit, c.residual_candidates
        ),
        Ok(FrontResponse::Run(out)) => format!(
            "R|{:?}|{:?}|{:?}|{}|{}",
            out.answers,
            out.suggestions.alternatives,
            out.suggestions.relaxations,
            out.executed,
            out.attempts
        ),
        Ok(FrontResponse::Table(t)) => format!("T|{t:?}"),
        Ok(FrontResponse::Query(q)) => format!("Q|{q:?}"),
        Ok(FrontResponse::Ack) => "A".to_string(),
        Ok(FrontResponse::Closed) => "X".to_string(),
        Err(e) => format!("E|{e}"),
    }
}

/// Drive one session's script through the thread-per-request surface.
fn oracle_transcript(
    server: &SapphireServer,
    tenant: &str,
    script: &[FrontRequest],
) -> Vec<String> {
    let id = server.open_session(tenant).unwrap();
    let mut transcript = Vec::new();
    for request in script {
        let rendered = match request {
            FrontRequest::Complete { typed } => {
                render(&server.complete(id, typed).map(FrontResponse::Completion))
            }
            FrontRequest::Run => render(&server.run(id).map(FrontResponse::Run)),
            FrontRequest::SetRow { idx, input } => render(
                &server
                    .set_row(id, *idx, input.clone())
                    .map(|()| FrontResponse::Ack),
            ),
            FrontRequest::SetModifiers { modifiers } => render(
                &server
                    .set_modifiers(id, modifiers.clone())
                    .map(|()| FrontResponse::Ack),
            ),
            FrontRequest::ApplyAlternative { index } => render(
                &server
                    .apply_alternative(id, *index)
                    .map(FrontResponse::Table),
            ),
            FrontRequest::Query { .. } | FrontRequest::Close => unreachable!("not scripted"),
        };
        transcript.push(rendered);
    }
    server.close_session(id);
    transcript
}

/// Clone a script request (FrontRequest is deliberately not `Clone`-derived
/// for callbacks' sake; the script variants all are).
fn clone_request(r: &FrontRequest) -> FrontRequest {
    match r {
        FrontRequest::Complete { typed } => FrontRequest::Complete {
            typed: typed.clone(),
        },
        FrontRequest::Run => FrontRequest::Run,
        FrontRequest::SetRow { idx, input } => FrontRequest::SetRow {
            idx: *idx,
            input: input.clone(),
        },
        FrontRequest::SetModifiers { modifiers } => FrontRequest::SetModifiers {
            modifiers: modifiers.clone(),
        },
        FrontRequest::ApplyAlternative { index } => {
            FrontRequest::ApplyAlternative { index: *index }
        }
        FrontRequest::Query { query } => FrontRequest::Query {
            query: query.clone(),
        },
        FrontRequest::Close => FrontRequest::Close,
    }
}

/// The tentpole oracle: N sessions' scripts, submissions interleaved
/// round-robin across sessions onto a 4-worker front-end, must produce
/// byte-identical per-session transcripts to the sequential
/// thread-per-request oracle.
#[test]
fn evented_tier_is_byte_identical_to_the_thread_per_request_oracle() {
    const SESSIONS: usize = 4;
    let pum = pum();
    let oracle = SapphireServer::new(pum.clone(), roomy_config());
    let fe = Frontend::new(
        Arc::new(SapphireServer::new(pum, roomy_config())),
        FrontendConfig {
            workers: 4,
            session_queue_depth: 100_000,
            shed_ready_threshold: None,
        },
    );

    let scripts: Vec<Vec<FrontRequest>> = (0..SESSIONS).map(session_script).collect();
    let expected: Vec<Vec<String>> = scripts
        .iter()
        .enumerate()
        .map(|(u, script)| oracle_transcript(&oracle, &format!("user-{u}"), script))
        .collect();

    // Evented side: open every session, then interleave submissions
    // round-robin so many sessions are in flight at once — the multiplexing
    // the reactor exists for. Responses append to per-session transcripts
    // in callback order, which the front-end guarantees is submission order
    // per session.
    let ids: Vec<SessionId> = (0..SESSIONS)
        .map(|u| fe.open_session(&format!("user-{u}")).unwrap())
        .collect();
    let transcripts: Vec<Arc<Mutex<Vec<String>>>> = (0..SESSIONS)
        .map(|_| Arc::new(Mutex::new(Vec::new())))
        .collect();
    let longest = scripts.iter().map(Vec::len).max().unwrap();
    for step in 0..longest {
        for (u, script) in scripts.iter().enumerate() {
            let Some(request) = script.get(step) else {
                continue;
            };
            let transcript = transcripts[u].clone();
            fe.submit(
                ids[u],
                clone_request(request),
                Box::new(move |result| transcript.lock().unwrap().push(render(&result))),
            )
            .expect("roomy queue accepts the whole script");
        }
    }
    let metrics = fe.shutdown();
    assert_eq!(metrics.completed, metrics.submitted, "drained completely");

    for (u, expected) in expected.iter().enumerate() {
        let got = transcripts[u].lock().unwrap();
        for (step, (g, e)) in got.iter().zip(expected.iter()).enumerate() {
            assert_eq!(
                g, e,
                "session user-{u} step {step}: evented transcript diverged from the oracle"
            );
        }
        assert_eq!(got.len(), expected.len(), "session user-{u}: length");
    }
}

/// Shutdown drain: every submitted request is answered, no session leaks,
/// and the final queues are empty — the front-end's mirror of serve_check's
/// final-queue gate.
#[test]
fn shutdown_drains_queues_and_leaks_no_sessions() {
    const SESSIONS: usize = 16;
    let fe = Frontend::new(
        Arc::new(SapphireServer::new(pum(), roomy_config())),
        FrontendConfig {
            workers: 3,
            session_queue_depth: 1024,
            shed_ready_threshold: None,
        },
    );
    let answered = Arc::new(AtomicUsize::new(0));
    let mut submitted = 0u64;
    for u in 0..SESSIONS {
        let id = fe.open_session(&format!("user-{u}")).unwrap();
        for request in session_script(u).into_iter().take(24) {
            let answered = answered.clone();
            fe.submit(
                id,
                request,
                Box::new(move |_| {
                    answered.fetch_add(1, Ordering::SeqCst);
                }),
            )
            .unwrap();
            submitted += 1;
        }
        // The close rides the same queue: everything before it answers
        // first, then the session is gone.
        let answered = answered.clone();
        fe.submit(
            id,
            FrontRequest::Close,
            Box::new(move |r| {
                assert!(matches!(r, Ok(FrontResponse::Closed)));
                answered.fetch_add(1, Ordering::SeqCst);
            }),
        )
        .unwrap();
        submitted += 1;
    }
    let server = fe.server().clone();
    let metrics = fe.shutdown();
    assert_eq!(metrics.submitted, submitted);
    assert_eq!(metrics.completed, submitted, "every request answered");
    assert_eq!(answered.load(Ordering::SeqCst) as u64, submitted);
    assert_eq!(metrics.ready, 0, "final ready queue drained");
    assert_eq!(metrics.parked, 0, "no admission ticket left parked");
    assert_eq!(server.metrics().open_sessions, 0, "no leaked sessions");
}

/// The front-end drives a cluster edge router through the same loop: raw
/// queries go to the router (a `QueryService`), session requests to the
/// local server — and the answers match a direct router call byte for byte.
#[test]
fn cluster_router_is_drivable_from_the_front_end_loop() {
    let pum = pum();
    let server = Arc::new(SapphireServer::new(pum, roomy_config()));
    let router = Arc::new(ClusterRouter::new(
        Cluster::from_replicas(vec![vec![server.clone()]]),
        ClusterConfig {
            hedge_after: None,
            ..ClusterConfig::for_tests()
        },
    ));
    let raw: Arc<dyn QueryService> = router.clone();
    let fe = Frontend::with_raw_service(server, raw, FrontendConfig::for_tests());
    let id = fe.open_session("alice").unwrap();

    let query =
        sapphire_sparql::parse_query(r#"SELECT ?p WHERE { ?p dbo:surname "Kennedy"@en }"#).unwrap();
    let direct = router.execute_query("alice", &query).unwrap();
    let through_frontend = match fe.call(id, FrontRequest::Query { query }) {
        Ok(FrontResponse::Query(result)) => result,
        other => panic!("unexpected response {other:?}"),
    };
    assert_eq!(
        format!("{direct:?}"),
        format!("{through_frontend:?}"),
        "same loop, same bytes"
    );
    fe.shutdown();
}
