//! `MetricsHub`: one snapshot surface over every tier's metric struct.
//!
//! The serving stack grew five shapes of counters (`ServerMetrics`,
//! `ClusterMetrics`, `FrontendMetrics`, `NeighborhoodStats`, the AltCache
//! stats) with five ad-hoc readouts. The hub is the neutral meeting point:
//! each tier converts its own struct into named sections of typed fields,
//! and the hub renders the lot as JSON (hand-rolled, same discipline as the
//! bench's `json_f64` parser — the build has no serde) or Prometheus-style
//! text exposition. The hub holds no references — it is a snapshot, safe to
//! build under load and ship across threads.

use std::fmt::Write as _;

/// One metric value. Floats render with three decimals so JSON consumers
/// (and `json_f64`) always see a number, never `NaN`/`inf` (both clamp).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    F64(f64),
    Text(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Text(v)
    }
}

/// A named group of fields (one tier, one cache, one stage, …).
#[derive(Debug, Clone, Default)]
pub struct Section {
    name: String,
    fields: Vec<(String, Value)>,
}

impl Section {
    /// Append a field (insertion order is render order).
    pub fn field(&mut self, name: &str, value: impl Into<Value>) -> &mut Section {
        self.fields.push((name.to_string(), value.into()));
        self
    }
}

/// An ordered collection of [`Section`]s with JSON and Prometheus readouts.
#[derive(Debug, Clone, Default)]
pub struct MetricsHub {
    sections: Vec<Section>,
}

impl MetricsHub {
    pub fn new() -> MetricsHub {
        MetricsHub::default()
    }

    /// Start (or extend) the section called `name` and return it for
    /// field-chaining.
    pub fn section(&mut self, name: &str) -> &mut Section {
        if let Some(i) = self.sections.iter().position(|s| s.name == name) {
            return &mut self.sections[i];
        }
        self.sections.push(Section {
            name: name.to_string(),
            fields: Vec::new(),
        });
        self.sections.last_mut().unwrap()
    }

    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Render as one JSON object: `{"section": {"field": value, …}, …}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (si, section) in self.sections.iter().enumerate() {
            if si > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {{", section.name);
            for (fi, (name, value)) in section.fields.iter().enumerate() {
                if fi > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{name}\": ");
                match value {
                    Value::U64(v) => {
                        let _ = write!(out, "{v}");
                    }
                    Value::F64(v) => {
                        let clamped = if v.is_finite() { *v } else { 0.0 };
                        let _ = write!(out, "{clamped:.3}");
                    }
                    Value::Text(v) => {
                        let _ = write!(out, "\"{}\"", escape(v));
                    }
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }

    /// Render as Prometheus-style text exposition: one
    /// `<prefix>_<section>_<field> <value>` gauge line per numeric field;
    /// text fields become `*_info{value="…"} 1` marker series.
    pub fn to_prometheus(&self, prefix: &str) -> String {
        let mut out = String::new();
        for section in &self.sections {
            for (name, value) in &section.fields {
                let metric = format!(
                    "{}_{}_{}",
                    sanitize(prefix),
                    sanitize(&section.name),
                    sanitize(name)
                );
                match value {
                    Value::U64(v) => {
                        let _ = writeln!(out, "# TYPE {metric} gauge");
                        let _ = writeln!(out, "{metric} {v}");
                    }
                    Value::F64(v) => {
                        let clamped = if v.is_finite() { *v } else { 0.0 };
                        let _ = writeln!(out, "# TYPE {metric} gauge");
                        let _ = writeln!(out, "{metric} {clamped:.6}");
                    }
                    Value::Text(v) => {
                        let _ = writeln!(out, "# TYPE {metric}_info gauge");
                        let _ = writeln!(out, "{metric}_info{{value=\"{}\"}} 1", escape(v));
                    }
                }
            }
        }
        out
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect()
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; map the rest to `_`.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_renders_sections_in_order() {
        let mut hub = MetricsHub::new();
        hub.section("server")
            .field("completed", 42u64)
            .field("hit_ratio", 0.9934_f64);
        hub.section("cluster").field("scale", "tiny");
        assert_eq!(
            hub.to_json(),
            "{\"server\": {\"completed\": 42, \"hit_ratio\": 0.993}, \
             \"cluster\": {\"scale\": \"tiny\"}}"
        );
    }

    #[test]
    fn section_extends_in_place() {
        let mut hub = MetricsHub::new();
        hub.section("a").field("x", 1u64);
        hub.section("b").field("y", 2u64);
        hub.section("a").field("z", 3u64);
        assert_eq!(
            hub.to_json(),
            "{\"a\": {\"x\": 1, \"z\": 3}, \"b\": {\"y\": 2}}"
        );
    }

    #[test]
    fn non_finite_floats_clamp_to_zero() {
        let mut hub = MetricsHub::new();
        hub.section("s")
            .field("bad", f64::NAN)
            .field("inf", f64::INFINITY);
        assert_eq!(hub.to_json(), "{\"s\": {\"bad\": 0.000, \"inf\": 0.000}}");
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut hub = MetricsHub::new();
        hub.section("qsm scan").field("p99_us", 6977u64);
        hub.section("meta").field("scale", "tiny");
        let text = hub.to_prometheus("sapphire");
        assert!(text.contains("# TYPE sapphire_qsm_scan_p99_us gauge\n"));
        assert!(text.contains("sapphire_qsm_scan_p99_us 6977\n"));
        assert!(text.contains("sapphire_meta_scale_info{value=\"tiny\"} 1\n"));
    }

    #[test]
    fn text_values_escape_quotes() {
        let mut hub = MetricsHub::new();
        hub.section("s").field("q", "a\"b\\c");
        assert_eq!(hub.to_json(), "{\"s\": {\"q\": \"a\\\"b\\\\c\"}}");
    }
}
