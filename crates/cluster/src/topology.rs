//! Cluster construction: partition a dataset, stand up shard servers.
//!
//! A [`Cluster`] is the *data tier* of a sharded deployment: `shards × replicas`
//! [`SapphireServer`]s, where shard `i`'s replicas all serve the same
//! shard-local slice (data triples hashed to `i` by subject, plus the
//! replicated schema slice) through one shared shard-local
//! [`PredictiveUserModel`]. Replicas share the model `Arc` — the redundancy a
//! replica buys is *serving* capacity (its own admission gate, caches,
//! coalescers), not storage, exactly like processes of one shard behind a
//! load balancer.

use std::sync::Arc;

use sapphire_core::{InitMode, PredictiveUserModel, PumError, SapphireConfig};
use sapphire_endpoint::EndpointLimits;
use sapphire_rdf::{Graph, Partitioner};
use sapphire_server::{SapphireServer, ServerConfig};
use sapphire_text::Lexicon;

/// A sharded, replicated set of Sapphire servers over one partitioned
/// dataset.
pub struct Cluster {
    shards: Vec<Vec<Arc<SapphireServer>>>,
    schema_triples: usize,
    data_triples: Vec<usize>,
}

impl Cluster {
    /// Partition `graph` into `shards` subject-hashed slices and stand up
    /// `replicas` servers per shard, each shard's replicas sharing one
    /// shard-local model initialized with the standard §5 pipeline.
    ///
    /// Replica `r` of shard `s` is named `{name}-s{s}r{r}` so typed errors
    /// and service names identify the exact process they came from.
    pub fn build(
        name: &str,
        graph: &Graph,
        shards: usize,
        replicas: usize,
        lexicon: &Lexicon,
        sapphire_config: &SapphireConfig,
        server_config: &ServerConfig,
    ) -> Result<Self, PumError> {
        let partition = Partitioner::new(shards).split(graph);
        Self::build_from_shards(
            name,
            partition.shards,
            partition.schema_triples,
            partition.data_triples,
            replicas,
            lexicon,
            sapphire_config,
            server_config,
        )
    }

    /// Stand up a cluster over **pre-built** shard graphs — the bring-up path
    /// for snapshot loading, where each shard slice was partitioned earlier
    /// (possibly by another process) and arrives as a ready [`Graph`] instead
    /// of being re-split from the full dataset here. `schema_triples` /
    /// `data_triples` are the partition statistics to report (pass zeros if
    /// unknown). Naming matches [`Cluster::build`] exactly, so answers are
    /// byte-identical whichever constructor ran.
    #[allow(clippy::too_many_arguments)]
    pub fn build_from_shards(
        name: &str,
        shard_graphs: Vec<Graph>,
        schema_triples: usize,
        data_triples: Vec<usize>,
        replicas: usize,
        lexicon: &Lexicon,
        sapphire_config: &SapphireConfig,
        server_config: &ServerConfig,
    ) -> Result<Self, PumError> {
        let mut tiers = Vec::with_capacity(shard_graphs.len());
        for (i, shard_graph) in shard_graphs.into_iter().enumerate() {
            let pum = Arc::new(PredictiveUserModel::initialize_local(
                format!("{name}-s{i}"),
                shard_graph,
                EndpointLimits::warehouse(),
                lexicon.clone(),
                sapphire_config.clone(),
                InitMode::Federated,
            )?);
            let replicas: Vec<Arc<SapphireServer>> = (0..replicas.max(1))
                .map(|r| {
                    let config = ServerConfig {
                        name: format!("{name}-s{i}r{r}"),
                        ..server_config.clone()
                    };
                    Arc::new(SapphireServer::new(pum.clone(), config))
                })
                .collect();
            tiers.push(replicas);
        }
        Ok(Cluster {
            shards: tiers,
            schema_triples,
            data_triples,
        })
    }

    /// Assemble a cluster from explicit replica sets — the test hook for
    /// heterogeneous replicas (e.g. one artificially saturated replica per
    /// shard). Every inner vec must be non-empty.
    pub fn from_replicas(shards: Vec<Vec<Arc<SapphireServer>>>) -> Self {
        assert!(
            !shards.is_empty() && shards.iter().all(|r| !r.is_empty()),
            "a cluster needs at least one replica per shard"
        );
        let data = vec![0; shards.len()];
        Cluster {
            shards,
            schema_triples: 0,
            data_triples: data,
        }
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Replica servers of one shard.
    pub fn replicas(&self, shard: usize) -> &[Arc<SapphireServer>] {
        &self.shards[shard]
    }

    /// All shards' replica sets.
    pub fn shards(&self) -> &[Vec<Arc<SapphireServer>>] {
        &self.shards
    }

    /// Triples replicated to every shard by the partitioner.
    pub fn schema_triples(&self) -> usize {
        self.schema_triples
    }

    /// Hash-assigned data triples per shard.
    pub fn data_triples(&self) -> &[usize] {
        &self.data_triples
    }
}
