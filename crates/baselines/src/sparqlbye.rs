//! SPARQLByE [4, 11] — reverse-engineering SPARQL queries from examples.
//!
//! The user supplies example answers; the system induces the query capturing
//! their commonalities and iterates with positive/negative feedback. The
//! paper's criticism — "the user needs to know a set of examples that satisfy
//! her query, which is often not practical" — is reproduced structurally:
//! the harness can only run this baseline on questions with enough gold
//! answers to spare two as examples, and questions whose answers are bare
//! literals (dates, counts) defeat example-based induction.

use std::collections::BTreeMap;

use sapphire_endpoint::{Endpoint, FederatedProcessor};
use sapphire_sparql::Solutions;

/// The SPARQLByE reimplementation.
pub struct SparqlByE {
    fed: FederatedProcessor,
    /// Maximum feedback rounds ("until it finds the correct query or cannot
    /// learn any more").
    pub max_rounds: usize,
}

impl SparqlByE {
    /// Build over an endpoint.
    pub fn build(endpoint: std::sync::Arc<dyn Endpoint>) -> Self {
        SparqlByE {
            fed: FederatedProcessor::single(endpoint),
            max_rounds: 3,
        }
    }

    /// Constraints of one entity: type IRIs and (predicate, object) pairs.
    fn constraints_of(&self, entity: &str) -> BTreeMap<(String, String), ()> {
        let mut out = BTreeMap::new();
        if let Ok(s) = self
            .fed
            .select(&format!("SELECT ?p ?o WHERE {{ <{entity}> ?p ?o }}"))
        {
            for r in 0..s.len() {
                if let (Some(p), Some(o)) = (s.get(r, "p"), s.get(r, "o")) {
                    // Constraints shared by everything carry no signal; the
                    // original prunes them by selectivity.
                    if o.lexical() == sapphire_rdf::vocab::owl::THING
                        || o.lexical().ends_with("Agent")
                    {
                        continue;
                    }
                    out.insert((p.lexical().to_string(), o.to_string()), ());
                }
            }
        }
        out
    }

    /// Induce a query from example entity IRIs and return its answers.
    /// `oracle` supplies feedback: whether a candidate answer is correct.
    /// Returns `None` when no common constraints exist (cannot learn).
    pub fn learn(&self, examples: &[String], oracle: &dyn Fn(&str) -> bool) -> Option<Solutions> {
        if examples.len() < 2 {
            return None;
        }
        // Literal examples (dates, numbers) cannot be probed for properties.
        if examples.iter().any(|e| !e.starts_with("http")) {
            return None;
        }
        // Common constraints across all examples.
        let mut common = self.constraints_of(&examples[0]);
        for e in &examples[1..] {
            let other = self.constraints_of(e);
            common.retain(|k, _| other.contains_key(k));
        }
        if common.is_empty() {
            return None;
        }

        let mut banned: Vec<String> = Vec::new();
        for _ in 0..self.max_rounds {
            let mut query = String::from("SELECT DISTINCT ?x WHERE { ");
            for (p, o) in common.keys() {
                query.push_str(&format!("?x <{p}> {o} . "));
            }
            query.push('}');
            let Ok(candidates) = self.fed.select(&query) else {
                return None;
            };
            if candidates.is_empty() {
                return None;
            }
            // Feedback: find a wrong candidate; try to exclude it by adding a
            // constraint the examples share but the wrong candidate lacks.
            let wrong: Vec<String> = candidates
                .values("x")
                .map(|t| t.lexical().to_string())
                .filter(|c| !oracle(c) && !banned.contains(c))
                .collect();
            if wrong.is_empty() {
                return Some(candidates);
            }
            let wrong_constraints = self.constraints_of(&wrong[0]);
            let all_example_constraints: Vec<(String, String)> = {
                // Anything shared by examples beyond `common` was already
                // included, so look for discriminating constraints among the
                // *pairwise* shared ones (none exist in this hypothesis
                // class) — the system "cannot learn any more".
                common
                    .keys()
                    .filter(|k| !wrong_constraints.contains_key(*k))
                    .cloned()
                    .collect()
            };
            if all_example_constraints.is_empty() {
                // Cannot discriminate further; return what we have.
                return Some(candidates);
            }
            banned.push(wrong[0].clone());
        }
        // Rounds exhausted: emit the last hypothesis.
        let mut query = String::from("SELECT DISTINCT ?x WHERE { ");
        for (p, o) in common.keys() {
            query.push_str(&format!("?x <{p}> {o} . "));
        }
        query.push('}');
        self.fed.select(&query).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sapphire_datagen::{generate, DatasetConfig};
    use sapphire_endpoint::{EndpointLimits, LocalEndpoint};
    use std::sync::Arc;

    fn bye() -> SparqlByE {
        let ep: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
            "dbpedia",
            generate(DatasetConfig::tiny(42)),
            EndpointLimits::warehouse(),
        ));
        SparqlByE::build(ep)
    }

    fn resource(local: &str) -> String {
        format!("http://dbpedia.org/resource/{local}")
    }

    #[test]
    fn learns_kerouac_viking_books_from_examples() {
        let b = bye();
        let examples = vec![resource("On_The_Road"), resource("Door_Wide_Open")];
        let gold = examples.clone();
        let oracle = |c: &str| gold.iter().any(|g| g == c);
        let answers = b.learn(&examples, &oracle).expect("learns a query");
        let found: Vec<String> = answers
            .values("x")
            .map(|t| t.lexical().to_string())
            .collect();
        assert!(found.contains(&resource("On_The_Road")));
        assert!(found.contains(&resource("Door_Wide_Open")));
        // Doctor Sax shares the author but not the publisher; the common
        // constraints exclude it.
        assert!(!found.contains(&resource("Doctor_Sax")), "{found:?}");
    }

    #[test]
    fn refuses_single_example() {
        let b = bye();
        assert!(b.learn(&[resource("On_The_Road")], &|_| true).is_none());
    }

    #[test]
    fn refuses_literal_examples() {
        let b = bye();
        // Birthdays are literals: no properties to probe.
        assert!(b
            .learn(
                &["1972-12-19".to_string(), "1973-12-03".to_string()],
                &|_| true
            )
            .is_none());
    }

    #[test]
    fn unrelated_examples_cannot_learn() {
        let b = bye();
        // A book and a city share no (predicate, value) pairs.
        let got = b.learn(&[resource("On_The_Road"), resource("Sydney")], &|_| true);
        assert!(got.is_none());
    }
}
