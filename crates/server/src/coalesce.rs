//! Single-flight request coalescing.
//!
//! The response cache absorbs *repeats* of a request, but a **burst** of
//! identical not-yet-cached requests — many users typing the same prefix at
//! the same instant — still costs one full model scan per request, because
//! every one of them misses the cache before the first scan finishes. The
//! [`Coalescer`] closes that gap: the first miss for a key becomes the
//! *leader* and executes the scan; every concurrent duplicate becomes a
//! *follower* that blocks until the leader publishes its `Arc`'d result (or
//! its typed error — failure is propagated, never a hang).
//!
//! Three properties keep coalescing from becoming a new failure mode:
//!
//! * **Typed leader-failure propagation** — the leader completes its flight
//!   with a `Result`; an `Err` is cloned to every follower, so a failing
//!   backend fails the whole burst loudly instead of hanging it.
//! * **Per-key waiter cap** — a flight accepts at most
//!   `max_waiters_per_key` followers; once full, further duplicates *bypass*
//!   coalescing and run their own scan. A hot key can therefore never grow
//!   an unbounded queue of blocked requests behind one slow leader. A cap of
//!   `0` disables coalescing entirely (every duplicate bypasses), which the
//!   load generator uses to measure the before/after difference.
//! * **Abandoned-leader recovery** — if a leader unwinds without completing
//!   (a panic in the scan), its flight is marked abandoned and every
//!   follower retries from the top, one of them becoming the new leader.
//!   Followers can block only while some leader is actually running.
//!
//! The coalescer is keyed by the same normalized request keys as the
//! response cache ([`sapphire_core::completion_request_key`] /
//! [`sapphire_core::run_request_key`] /
//! [`sapphire_endpoint::query_fingerprint`]), so the two layers agree
//! exactly on which requests are "identical".

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::response_cache::shard_index;

/// One in-flight execution of a keyed request.
#[derive(Debug)]
struct Flight<V, E> {
    state: Mutex<FlightState<V, E>>,
    done: Condvar,
}

#[derive(Debug)]
enum FlightState<V, E> {
    /// The leader is executing; `waiters` followers are blocked on `done`.
    Running { waiters: usize },
    /// The leader finished; followers receive a clone of this outcome.
    Done(Result<Arc<V>, E>),
    /// The leader unwound without completing; followers must retry.
    Abandoned,
}

impl<V, E> Flight<V, E> {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Running { waiters: 0 }),
            done: Condvar::new(),
        }
    }
}

/// Cumulative [`Coalescer`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoalesceStats {
    /// Flights led (the caller was first in and executed the work).
    pub leaders: u64,
    /// Requests that received a concurrent leader's result (or error).
    pub followers: u64,
    /// Requests that found the flight's waiter cap full and ran their own
    /// work instead of blocking.
    pub bypasses: u64,
    /// Follower wake-ups caused by an abandoned leader; each retried and
    /// re-joined (or led) a fresh flight.
    pub abandoned_retries: u64,
}

/// What [`Coalescer::join`] decided about this request.
#[derive(Debug)]
pub enum Join<'a, V, E> {
    /// First in: the caller must execute the work and then
    /// [`complete`](LeaderToken::complete) the flight — on both success and
    /// failure — so followers are released.
    Leader(LeaderToken<'a, V, E>),
    /// A concurrent leader already executed the work; this is its outcome.
    Follower(Result<Arc<V>, E>),
    /// The flight's waiter cap is full; the caller should execute the work
    /// itself without coalescing.
    Bypass,
}

/// One shard of the in-flight map: key → its live flight.
type FlightShard<V, E> = Mutex<HashMap<String, Arc<Flight<V, E>>>>;

/// Single-flight deduplication of identical concurrent requests.
///
/// Sharded like the response cache so hot coalescing traffic never funnels
/// through one lock. `V` is the shared result payload, `E` the typed error a
/// leader propagates to its followers.
#[derive(Debug)]
pub struct Coalescer<V, E> {
    shards: Vec<FlightShard<V, E>>,
    max_waiters_per_key: usize,
    leaders: AtomicU64,
    followers: AtomicU64,
    bypasses: AtomicU64,
    abandoned_retries: AtomicU64,
}

impl<V, E> Coalescer<V, E> {
    /// A coalescer allowing at most `max_waiters_per_key` followers to block
    /// behind one leader (`0` disables coalescing: every duplicate bypasses).
    pub fn new(shards: usize, max_waiters_per_key: usize) -> Self {
        let shards = shards.clamp(1, 1024);
        Coalescer {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            max_waiters_per_key,
            leaders: AtomicU64::new(0),
            followers: AtomicU64::new(0),
            bypasses: AtomicU64::new(0),
            abandoned_retries: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &FlightShard<V, E> {
        &self.shards[shard_index(key, self.shards.len())]
    }

    /// Followers currently blocked on `key`'s flight (observability/tests).
    pub fn waiting(&self, key: &str) -> usize {
        let map = self.shard(key).lock().unwrap();
        match map.get(key) {
            Some(flight) => match *flight.state.lock().unwrap() {
                FlightState::Running { waiters } => waiters,
                _ => 0,
            },
            None => 0,
        }
    }

    /// Keys with a live in-flight execution right now, across all shards —
    /// the coalescer's shard occupancy. Cheap (one uncontended lock per
    /// shard), so load probes and bench reports can poll it.
    pub fn occupancy(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> CoalesceStats {
        CoalesceStats {
            leaders: self.leaders.load(Ordering::Relaxed),
            followers: self.followers.load(Ordering::Relaxed),
            bypasses: self.bypasses.load(Ordering::Relaxed),
            abandoned_retries: self.abandoned_retries.load(Ordering::Relaxed),
        }
    }
}

impl<V, E: Clone> Coalescer<V, E> {
    /// Join the flight for `key`: become its leader, block as a follower
    /// until the leader completes, or bypass if the waiter cap is full.
    ///
    /// Followers block with no timeout of their own — the leader is an
    /// already-admitted request doing bounded work, and an abandoned leader
    /// wakes every follower for a retry, so a follower can never outlive the
    /// work it waits for.
    pub fn join(&self, key: &str) -> Join<'_, V, E> {
        loop {
            let shard = self.shard(key);
            let flight = {
                let mut map = shard.lock().unwrap();
                match map.get(key) {
                    Some(flight) => flight.clone(),
                    None => {
                        let flight = Arc::new(Flight::new());
                        map.insert(key.to_string(), flight.clone());
                        drop(map);
                        self.leaders.fetch_add(1, Ordering::Relaxed);
                        return Join::Leader(LeaderToken {
                            coalescer: self,
                            key: key.to_string(),
                            flight,
                            completed: false,
                        });
                    }
                }
            };
            let mut state = flight.state.lock().unwrap();
            match &mut *state {
                FlightState::Running { waiters } if *waiters >= self.max_waiters_per_key => {
                    self.bypasses.fetch_add(1, Ordering::Relaxed);
                    return Join::Bypass;
                }
                FlightState::Running { waiters } => {
                    *waiters += 1;
                    loop {
                        state = flight.done.wait(state).unwrap();
                        match &*state {
                            FlightState::Running { .. } => continue,
                            FlightState::Done(outcome) => {
                                self.followers.fetch_add(1, Ordering::Relaxed);
                                return Join::Follower(outcome.clone());
                            }
                            FlightState::Abandoned => {
                                self.abandoned_retries.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                        }
                    }
                }
                // Publication removes the flight from the map *before*
                // flipping its state, so a flight found in the map is
                // normally Running; these arms only cover the window where a
                // just-published flight was cloned out of the map a moment
                // before its removal.
                FlightState::Done(outcome) => {
                    self.followers.fetch_add(1, Ordering::Relaxed);
                    return Join::Follower(outcome.clone());
                }
                FlightState::Abandoned => {}
            }
            // Abandoned (either arm): retry — the next iteration starts or
            // joins a fresh flight.
        }
    }
}

/// Proof of flight leadership for one key.
///
/// The holder must call [`complete`](Self::complete) with the work's
/// outcome. Dropping the token without completing (a panic unwinding through
/// the scan) marks the flight abandoned, which wakes every follower to retry
/// — leadership can never be silently lost with followers still blocked.
#[derive(Debug)]
pub struct LeaderToken<'a, V, E> {
    coalescer: &'a Coalescer<V, E>,
    key: String,
    flight: Arc<Flight<V, E>>,
    completed: bool,
}

impl<V, E> LeaderToken<'_, V, E> {
    /// Publish the leader's outcome: followers receive a clone of `outcome`,
    /// and later requests for the key start a fresh flight.
    pub fn complete(mut self, outcome: Result<Arc<V>, E>) {
        self.publish(FlightState::Done(outcome));
        self.completed = true;
    }

    fn publish(&self, terminal: FlightState<V, E>) {
        // Remove from the map first so a new request that misses the cache
        // after this flight starts its own — only then flip the state, so
        // anything that found the flight in the map observes a terminal
        // state at worst one step later.
        {
            let mut map = self.coalescer.shard(&self.key).lock().unwrap();
            if let Some(current) = map.get(&self.key) {
                if Arc::ptr_eq(current, &self.flight) {
                    map.remove(&self.key);
                }
            }
        }
        let mut state = self.flight.state.lock().unwrap();
        *state = terminal;
        drop(state);
        self.flight.done.notify_all();
    }
}

impl<V, E> Drop for LeaderToken<'_, V, E> {
    fn drop(&mut self) {
        if !self.completed {
            self.publish(FlightState::Abandoned);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;
    use std::time::Duration;

    type TestCoalescer = Coalescer<u64, String>;

    /// A burst of identical requests executes the work exactly once: the
    /// leader blocks until every follower is registered, then publishes, and
    /// all of them receive the same `Arc`'d value.
    #[test]
    fn burst_executes_work_exactly_once() {
        const FOLLOWERS: usize = 6;
        let coalescer = Arc::new(TestCoalescer::new(4, 64));
        let work_runs = Arc::new(AtomicUsize::new(0));
        let (leader_go_tx, leader_go_rx) = mpsc::channel::<()>();

        let leader = {
            let coalescer = coalescer.clone();
            let work_runs = work_runs.clone();
            std::thread::spawn(move || {
                let Join::Leader(token) = coalescer.join("k") else {
                    panic!("first join must lead");
                };
                // Hold the "scan" open until the test has piled followers on.
                leader_go_rx.recv().unwrap();
                work_runs.fetch_add(1, Ordering::SeqCst);
                token.complete(Ok(Arc::new(42)));
                42u64
            })
        };
        // Wait for leadership, then pile on followers and wait until every
        // one of them is blocked on the flight.
        while coalescer.stats().leaders == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let followers: Vec<_> = (0..FOLLOWERS)
            .map(|_| {
                let coalescer = coalescer.clone();
                std::thread::spawn(move || match coalescer.join("k") {
                    Join::Follower(Ok(v)) => *v,
                    other => panic!("expected follower result, got {other:?}"),
                })
            })
            .collect();
        while coalescer.waiting("k") < FOLLOWERS {
            std::thread::sleep(Duration::from_millis(1));
        }
        leader_go_tx.send(()).unwrap();
        assert_eq!(leader.join().unwrap(), 42);
        for f in followers {
            assert_eq!(f.join().unwrap(), 42);
        }
        assert_eq!(work_runs.load(Ordering::SeqCst), 1, "exactly one scan");
        let stats = coalescer.stats();
        assert_eq!(stats.leaders, 1);
        assert_eq!(stats.followers, FOLLOWERS as u64);
        assert_eq!(stats.bypasses, 0);
    }

    /// A failing leader fails its followers with the same typed error — no
    /// follower ever hangs on a flight whose work already died.
    #[test]
    fn leader_failure_propagates_typed_to_followers() {
        let coalescer = Arc::new(TestCoalescer::new(1, 64));
        let Join::Leader(token) = coalescer.join("k") else {
            panic!("first join must lead");
        };
        let follower = {
            let coalescer = coalescer.clone();
            std::thread::spawn(move || match coalescer.join("k") {
                Join::Follower(outcome) => outcome,
                other => panic!("expected a follower, got {other:?}"),
            })
        };
        while coalescer.waiting("k") == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        token.complete(Err("backend exploded".to_string()));
        assert_eq!(
            follower.join().unwrap().unwrap_err(),
            "backend exploded",
            "the leader's typed error reaches the follower"
        );
    }

    /// The waiter cap bounds how many requests can block behind one leader;
    /// the overflow bypasses (runs its own work) instead of queueing.
    #[test]
    fn waiter_cap_overflows_to_bypass() {
        let coalescer = Arc::new(TestCoalescer::new(1, 1));
        let Join::Leader(token) = coalescer.join("k") else {
            panic!("first join must lead");
        };
        let follower = {
            let coalescer = coalescer.clone();
            std::thread::spawn(move || match coalescer.join("k") {
                Join::Follower(outcome) => outcome,
                other => panic!("expected a follower, got {other:?}"),
            })
        };
        while coalescer.waiting("k") < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Cap reached: the next duplicate must not block.
        assert!(matches!(coalescer.join("k"), Join::Bypass));
        token.complete(Ok(Arc::new(7)));
        assert_eq!(*follower.join().unwrap().unwrap(), 7);
        assert_eq!(coalescer.stats().bypasses, 1);
    }

    /// A cap of zero disables coalescing: every duplicate runs its own work.
    #[test]
    fn zero_cap_disables_coalescing() {
        let coalescer = TestCoalescer::new(1, 0);
        let Join::Leader(token) = coalescer.join("k") else {
            panic!("first join must lead");
        };
        assert!(matches!(coalescer.join("k"), Join::Bypass));
        token.complete(Ok(Arc::new(1)));
    }

    /// An abandoned leader (panic in the scan) wakes its followers, and one
    /// of them re-leads the flight instead of hanging forever.
    #[test]
    fn abandoned_leader_hands_off_to_a_follower() {
        let coalescer = Arc::new(TestCoalescer::new(1, 64));
        let Join::Leader(token) = coalescer.join("k") else {
            panic!("first join must lead");
        };
        let follower = {
            let coalescer = coalescer.clone();
            std::thread::spawn(move || match coalescer.join("k") {
                // The retry makes the follower the new leader; it completes.
                Join::Leader(token) => {
                    token.complete(Ok(Arc::new(99)));
                    99u64
                }
                other => panic!("expected re-lead after abandonment, got {other:?}"),
            })
        };
        while coalescer.waiting("k") == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        drop(token); // leader unwinds without completing
        assert_eq!(follower.join().unwrap(), 99);
        let stats = coalescer.stats();
        assert_eq!(stats.abandoned_retries, 1);
        assert_eq!(stats.leaders, 2, "original leader + re-leading follower");
    }

    /// After a completed flight, the key starts fresh — no state leaks from
    /// one burst to the next.
    #[test]
    fn completed_flights_reset_the_key() {
        let coalescer = TestCoalescer::new(1, 8);
        for round in 0..3u64 {
            let Join::Leader(token) = coalescer.join("k") else {
                panic!("round {round} must lead");
            };
            token.complete(Ok(Arc::new(round)));
        }
        assert_eq!(coalescer.stats().leaders, 3);
        assert_eq!(coalescer.waiting("k"), 0);
    }
}
