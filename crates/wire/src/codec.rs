//! Hand-rolled binary codec for the edge↔shard request/reply types.
//!
//! The repo takes no serde dependency, so the wire format is written out by
//! hand — which also keeps it honest: every byte is accounted for, and the
//! decoder is total (any byte sequence either decodes or returns
//! [`WireError::Corrupt`]; nothing panics, nothing blocks).
//!
//! Conventions, all little-endian:
//!
//! * integers — `u8` tags, `u32` lengths and counts, `u64` for `usize` and
//!   wide counters (`usize` is range-checked on decode);
//! * `f64` — IEEE 754 bits as `u64` (exact round trip, no text);
//! * strings — `u32` byte length + UTF-8 bytes, validated on decode;
//! * `Option<T>` — presence byte (0/1) then the value;
//! * `Vec<T>` — `u32` count then elements, with the count bounded by the
//!   bytes actually remaining so a corrupt count cannot drive a huge
//!   allocation;
//! * enums — `u8` discriminant in declaration order; unknown discriminants
//!   are `Corrupt`, never a default.

use std::sync::Arc;
use std::time::Duration;

use sapphire_core::qcm::{Completion, CompletionResult};
use sapphire_core::qsm::{
    AlteredPosition, QsmOutput, RelaxedQuery, StructureSuggestion, TermAlternative,
};
use sapphire_core::session::SessionError;
use sapphire_core::MatchSource;
use sapphire_rdf::{Literal, Term};
use sapphire_server::registry::SessionId;
use sapphire_server::{RunPayload, ServerError};
use sapphire_sparql::{
    Aggregate, CmpOp, Expr, GraphPattern, OrderKey, Projection, Query, QueryResult, SelectItem,
    SelectQuery, Solutions, TermPattern, TriplePattern,
};

use crate::frame::WireError;

/// One stateless edge→shard request — the wire form of the cluster
/// router's internal scatter shapes, with the degradation tier and the
/// remaining deadline budget travelling with the query.
#[derive(Debug, Clone, PartialEq)]
pub enum WireRequest {
    /// QCM completion with an explicit over-fetch budget.
    Complete {
        /// Requesting tenant (billing identity at the shard).
        tenant: String,
        /// The typed prefix.
        term: String,
        /// How many suggestions to return.
        fetch: usize,
    },
    /// Stateless QSM run with edge-requested degradation.
    Run {
        /// Requesting tenant.
        tenant: String,
        /// The query to run.
        query: SelectQuery,
        /// Degradation tier the edge requests (shards may deepen, never
        /// shallow, exactly as in-process).
        tier: usize,
        /// Deadline budget remaining at the edge when the scatter started.
        budget: Option<Duration>,
    },
    /// Raw query execution (the federated bound-join building block).
    Raw {
        /// Requesting tenant.
        tenant: String,
        /// The query.
        query: Query,
    },
}

/// One shard→edge reply body (the success arm; errors travel as an encoded
/// [`ServerError`]).
#[derive(Debug, Clone)]
pub enum WireReply {
    /// Reply to [`WireRequest::Complete`].
    Completion(CompletionResult),
    /// Reply to [`WireRequest::Run`]. Owned here; the client re-wraps it in
    /// an `Arc` for the router's payload sharing.
    Run(RunPayload),
    /// Reply to [`WireRequest::Raw`].
    Raw(QueryResult),
}

/// Replica load piggybacked on every reply frame, so the edge's load-aware
/// replica ordering and shed-tier probes cost zero extra round trips.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadHeader {
    /// Requests in flight at the replica when the reply was written.
    pub in_flight: u32,
    /// Requests queued in admission at the replica.
    pub queued: u32,
    /// The shed tier the replica's backlog argues for.
    pub pressure: u8,
}

// ---------------------------------------------------------------- writer --

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    put_u8(out, v as u8);
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_opt_str(out: &mut Vec<u8>, s: &Option<String>) {
    match s {
        None => put_u8(out, 0),
        Some(s) => {
            put_u8(out, 1);
            put_str(out, s);
        }
    }
}

fn put_opt_usize(out: &mut Vec<u8>, v: &Option<usize>) {
    match v {
        None => put_u8(out, 0),
        Some(v) => {
            put_u8(out, 1);
            put_usize(out, *v);
        }
    }
}

fn put_duration(out: &mut Vec<u8>, d: Duration) {
    put_u64(out, d.as_secs());
    put_u32(out, d.subsec_nanos());
}

fn put_len(out: &mut Vec<u8>, n: usize) {
    put_u32(out, n as u32);
}

// ---------------------------------------------------------------- reader --

/// Deepest expression nesting the decoder accepts. The decoder recurses
/// over `Expr`, so without a bound a frame of nested unary tags (one byte
/// per level — ~40KB of `Not` bytes fits trivially under the frame cap)
/// would overflow the worker's stack and abort the process, breaking the
/// "total decoder" contract. Real filters are a handful of levels deep;
/// anything past this bound is rejected as [`WireError::Corrupt`].
const MAX_EXPR_DEPTH: usize = 128;

/// Cap on the bytes any single decode-side `Vec` pre-allocation may claim.
/// [`Reader::len`] bounds the element *count* by the bytes remaining, but
/// for wide element types (a `TermAlternative` is hundreds of bytes) a
/// count that passes that check can still multiply into a multi-GB
/// *capacity* request before the first element fails to decode. Past this
/// cap the vector grows by `push`; the per-element bounds checks fail long
/// before memory does.
const MAX_PREALLOC_BYTES: usize = 1 << 20;

/// `Vec::with_capacity` for decode paths, with the capacity byte-bounded
/// by [`MAX_PREALLOC_BYTES`] so a hostile count cannot drive a huge
/// allocation.
fn bounded_vec<T>(n: usize) -> Vec<T> {
    Vec::with_capacity(n.min(MAX_PREALLOC_BYTES / std::mem::size_of::<T>().max(1)))
}

/// Bounds-checked cursor over one frame payload. Every read is validated
/// against the remaining bytes before it happens.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn corrupt(what: &str) -> WireError {
        WireError::Corrupt(what.to_string())
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Corrupt(format!(
                "{what}: need {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn usize(&mut self, what: &str) -> Result<usize, WireError> {
        usize::try_from(self.u64(what)?).map_err(|_| Self::corrupt(what))
    }

    fn bool(&mut self, what: &str) -> Result<bool, WireError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(Self::corrupt(what)),
        }
    }

    fn f64(&mut self, what: &str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    fn str(&mut self, what: &str) -> Result<String, WireError> {
        let n = self.u32(what)? as usize;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::Corrupt(format!("{what}: invalid UTF-8")))
    }

    fn opt_str(&mut self, what: &str) -> Result<Option<String>, WireError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.str(what)?)),
            _ => Err(Self::corrupt(what)),
        }
    }

    fn opt_usize(&mut self, what: &str) -> Result<Option<usize>, WireError> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.usize(what)?)),
            _ => Err(Self::corrupt(what)),
        }
    }

    fn duration(&mut self, what: &str) -> Result<Duration, WireError> {
        let secs = self.u64(what)?;
        let nanos = self.u32(what)?;
        if nanos >= 1_000_000_000 {
            return Err(Self::corrupt(what));
        }
        Ok(Duration::new(secs, nanos))
    }

    /// Collection count, bounded by the bytes remaining (every element of
    /// every collection we encode is at least one byte), so a corrupt count
    /// fails here instead of sizing an allocation.
    fn len(&mut self, what: &str) -> Result<usize, WireError> {
        let n = self.u32(what)? as usize;
        if n > self.remaining() {
            return Err(WireError::Corrupt(format!(
                "{what}: count {n} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    fn done(&self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Corrupt(format!(
                "{} trailing bytes after message",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ------------------------------------------------------------- RDF terms --

fn put_term(out: &mut Vec<u8>, t: &Term) {
    match t {
        Term::Iri(s) => {
            put_u8(out, 0);
            put_str(out, s);
        }
        Term::Literal(l) => {
            put_u8(out, 1);
            put_str(out, &l.value);
            put_opt_str(out, &l.lang);
            put_opt_str(out, &l.datatype);
        }
        Term::Blank(s) => {
            put_u8(out, 2);
            put_str(out, s);
        }
    }
}

fn get_term(r: &mut Reader) -> Result<Term, WireError> {
    match r.u8("term tag")? {
        0 => Ok(Term::Iri(r.str("iri")?)),
        1 => Ok(Term::Literal(Literal {
            value: r.str("literal value")?,
            lang: r.opt_str("literal lang")?,
            datatype: r.opt_str("literal datatype")?,
        })),
        2 => Ok(Term::Blank(r.str("blank label")?)),
        _ => Err(Reader::corrupt("term tag")),
    }
}

fn put_opt_term(out: &mut Vec<u8>, t: &Option<Term>) {
    match t {
        None => put_u8(out, 0),
        Some(t) => {
            put_u8(out, 1);
            put_term(out, t);
        }
    }
}

fn get_opt_term(r: &mut Reader) -> Result<Option<Term>, WireError> {
    match r.u8("opt term")? {
        0 => Ok(None),
        1 => Ok(Some(get_term(r)?)),
        _ => Err(Reader::corrupt("opt term")),
    }
}

// -------------------------------------------------------------- AST types --

fn put_term_pattern(out: &mut Vec<u8>, p: &TermPattern) {
    match p {
        TermPattern::Var(v) => {
            put_u8(out, 0);
            put_str(out, v);
        }
        TermPattern::Term(t) => {
            put_u8(out, 1);
            put_term(out, t);
        }
    }
}

fn get_term_pattern(r: &mut Reader) -> Result<TermPattern, WireError> {
    match r.u8("term pattern tag")? {
        0 => Ok(TermPattern::Var(r.str("var")?)),
        1 => Ok(TermPattern::Term(get_term(r)?)),
        _ => Err(Reader::corrupt("term pattern tag")),
    }
}

fn put_triple_pattern(out: &mut Vec<u8>, t: &TriplePattern) {
    put_term_pattern(out, &t.subject);
    put_term_pattern(out, &t.predicate);
    put_term_pattern(out, &t.object);
}

fn get_triple_pattern(r: &mut Reader) -> Result<TriplePattern, WireError> {
    Ok(TriplePattern {
        subject: get_term_pattern(r)?,
        predicate: get_term_pattern(r)?,
        object: get_term_pattern(r)?,
    })
}

fn put_cmp_op(out: &mut Vec<u8>, op: CmpOp) {
    put_u8(
        out,
        match op {
            CmpOp::Eq => 0,
            CmpOp::Ne => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Gt => 4,
            CmpOp::Ge => 5,
        },
    );
}

fn get_cmp_op(r: &mut Reader) -> Result<CmpOp, WireError> {
    Ok(match r.u8("cmp op")? {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        _ => return Err(Reader::corrupt("cmp op")),
    })
}

fn put_expr(out: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::Var(v) => {
            put_u8(out, 0);
            put_str(out, v);
        }
        Expr::Const(t) => {
            put_u8(out, 1);
            put_term(out, t);
        }
        Expr::And(a, b) => {
            put_u8(out, 2);
            put_expr(out, a);
            put_expr(out, b);
        }
        Expr::Or(a, b) => {
            put_u8(out, 3);
            put_expr(out, a);
            put_expr(out, b);
        }
        Expr::Not(a) => {
            put_u8(out, 4);
            put_expr(out, a);
        }
        Expr::Cmp(op, a, b) => {
            put_u8(out, 5);
            put_cmp_op(out, *op);
            put_expr(out, a);
            put_expr(out, b);
        }
        Expr::IsLiteral(a) => {
            put_u8(out, 6);
            put_expr(out, a);
        }
        Expr::IsIri(a) => {
            put_u8(out, 7);
            put_expr(out, a);
        }
        Expr::Lang(a) => {
            put_u8(out, 8);
            put_expr(out, a);
        }
        Expr::Str(a) => {
            put_u8(out, 9);
            put_expr(out, a);
        }
        Expr::StrLen(a) => {
            put_u8(out, 10);
            put_expr(out, a);
        }
        Expr::Contains(a, b) => {
            put_u8(out, 11);
            put_expr(out, a);
            put_expr(out, b);
        }
        Expr::StrStarts(a, b) => {
            put_u8(out, 12);
            put_expr(out, a);
            put_expr(out, b);
        }
        Expr::Regex(a, pattern, ci) => {
            put_u8(out, 13);
            put_expr(out, a);
            put_str(out, pattern);
            put_bool(out, *ci);
        }
        Expr::LCase(a) => {
            put_u8(out, 14);
            put_expr(out, a);
        }
        Expr::UCase(a) => {
            put_u8(out, 15);
            put_expr(out, a);
        }
        Expr::Year(a) => {
            put_u8(out, 16);
            put_expr(out, a);
        }
        Expr::Bound(v) => {
            put_u8(out, 17);
            put_str(out, v);
        }
    }
}

fn get_expr(r: &mut Reader) -> Result<Expr, WireError> {
    get_expr_at(r, 0)
}

fn get_expr_at(r: &mut Reader, depth: usize) -> Result<Expr, WireError> {
    if depth > MAX_EXPR_DEPTH {
        return Err(Reader::corrupt("expr nested too deep"));
    }
    fn boxed(r: &mut Reader, depth: usize) -> Result<Box<Expr>, WireError> {
        Ok(Box::new(get_expr_at(r, depth + 1)?))
    }
    Ok(match r.u8("expr tag")? {
        0 => Expr::Var(r.str("expr var")?),
        1 => Expr::Const(get_term(r)?),
        2 => Expr::And(boxed(r, depth)?, boxed(r, depth)?),
        3 => Expr::Or(boxed(r, depth)?, boxed(r, depth)?),
        4 => Expr::Not(boxed(r, depth)?),
        5 => Expr::Cmp(get_cmp_op(r)?, boxed(r, depth)?, boxed(r, depth)?),
        6 => Expr::IsLiteral(boxed(r, depth)?),
        7 => Expr::IsIri(boxed(r, depth)?),
        8 => Expr::Lang(boxed(r, depth)?),
        9 => Expr::Str(boxed(r, depth)?),
        10 => Expr::StrLen(boxed(r, depth)?),
        11 => Expr::Contains(boxed(r, depth)?, boxed(r, depth)?),
        12 => Expr::StrStarts(boxed(r, depth)?, boxed(r, depth)?),
        13 => Expr::Regex(
            boxed(r, depth)?,
            r.str("regex pattern")?,
            r.bool("regex ci")?,
        ),
        14 => Expr::LCase(boxed(r, depth)?),
        15 => Expr::UCase(boxed(r, depth)?),
        16 => Expr::Year(boxed(r, depth)?),
        17 => Expr::Bound(r.str("bound var")?),
        _ => return Err(Reader::corrupt("expr tag")),
    })
}

fn put_aggregate(out: &mut Vec<u8>, a: &Aggregate) {
    match a {
        Aggregate::Count { distinct, var } => {
            put_u8(out, 0);
            put_bool(out, *distinct);
            put_opt_str(out, var);
        }
        Aggregate::Sum(v) => {
            put_u8(out, 1);
            put_str(out, v);
        }
        Aggregate::Min(v) => {
            put_u8(out, 2);
            put_str(out, v);
        }
        Aggregate::Max(v) => {
            put_u8(out, 3);
            put_str(out, v);
        }
        Aggregate::Avg(v) => {
            put_u8(out, 4);
            put_str(out, v);
        }
    }
}

fn get_aggregate(r: &mut Reader) -> Result<Aggregate, WireError> {
    Ok(match r.u8("aggregate tag")? {
        0 => Aggregate::Count {
            distinct: r.bool("count distinct")?,
            var: r.opt_str("count var")?,
        },
        1 => Aggregate::Sum(r.str("sum var")?),
        2 => Aggregate::Min(r.str("min var")?),
        3 => Aggregate::Max(r.str("max var")?),
        4 => Aggregate::Avg(r.str("avg var")?),
        _ => return Err(Reader::corrupt("aggregate tag")),
    })
}

fn put_projection(out: &mut Vec<u8>, p: &Projection) {
    match p {
        Projection::Star => put_u8(out, 0),
        Projection::Items(items) => {
            put_u8(out, 1);
            put_len(out, items.len());
            for item in items {
                match item {
                    SelectItem::Var(v) => {
                        put_u8(out, 0);
                        put_str(out, v);
                    }
                    SelectItem::Agg { agg, alias } => {
                        put_u8(out, 1);
                        put_aggregate(out, agg);
                        put_str(out, alias);
                    }
                }
            }
        }
    }
}

fn get_projection(r: &mut Reader) -> Result<Projection, WireError> {
    match r.u8("projection tag")? {
        0 => Ok(Projection::Star),
        1 => {
            let n = r.len("projection items")?;
            let mut items = bounded_vec(n);
            for _ in 0..n {
                items.push(match r.u8("select item tag")? {
                    0 => SelectItem::Var(r.str("select var")?),
                    1 => SelectItem::Agg {
                        agg: get_aggregate(r)?,
                        alias: r.str("agg alias")?,
                    },
                    _ => return Err(Reader::corrupt("select item tag")),
                });
            }
            Ok(Projection::Items(items))
        }
        _ => Err(Reader::corrupt("projection tag")),
    }
}

fn put_graph_pattern(out: &mut Vec<u8>, p: &GraphPattern) {
    put_len(out, p.triples.len());
    for t in &p.triples {
        put_triple_pattern(out, t);
    }
    put_len(out, p.filters.len());
    for f in &p.filters {
        put_expr(out, f);
    }
}

fn get_graph_pattern(r: &mut Reader) -> Result<GraphPattern, WireError> {
    let nt = r.len("triples")?;
    let mut triples = bounded_vec(nt);
    for _ in 0..nt {
        triples.push(get_triple_pattern(r)?);
    }
    let nf = r.len("filters")?;
    let mut filters = bounded_vec(nf);
    for _ in 0..nf {
        filters.push(get_expr(r)?);
    }
    Ok(GraphPattern { triples, filters })
}

fn put_select_query(out: &mut Vec<u8>, q: &SelectQuery) {
    put_bool(out, q.distinct);
    put_projection(out, &q.projection);
    put_graph_pattern(out, &q.pattern);
    put_len(out, q.group_by.len());
    for g in &q.group_by {
        put_str(out, g);
    }
    put_len(out, q.order_by.len());
    for k in &q.order_by {
        put_expr(out, &k.expr);
        put_bool(out, k.descending);
    }
    put_opt_usize(out, &q.limit);
    put_opt_usize(out, &q.offset);
}

fn get_select_query(r: &mut Reader) -> Result<SelectQuery, WireError> {
    let distinct = r.bool("distinct")?;
    let projection = get_projection(r)?;
    let pattern = get_graph_pattern(r)?;
    let ng = r.len("group by")?;
    let mut group_by = bounded_vec(ng);
    for _ in 0..ng {
        group_by.push(r.str("group var")?);
    }
    let no = r.len("order by")?;
    let mut order_by = bounded_vec(no);
    for _ in 0..no {
        order_by.push(OrderKey {
            expr: get_expr(r)?,
            descending: r.bool("descending")?,
        });
    }
    Ok(SelectQuery {
        distinct,
        projection,
        pattern,
        group_by,
        order_by,
        limit: r.opt_usize("limit")?,
        offset: r.opt_usize("offset")?,
    })
}

fn put_query(out: &mut Vec<u8>, q: &Query) {
    match q {
        Query::Select(s) => {
            put_u8(out, 0);
            put_select_query(out, s);
        }
        Query::Ask(p) => {
            put_u8(out, 1);
            put_graph_pattern(out, p);
        }
    }
}

fn get_query(r: &mut Reader) -> Result<Query, WireError> {
    match r.u8("query tag")? {
        0 => Ok(Query::Select(get_select_query(r)?)),
        1 => Ok(Query::Ask(get_graph_pattern(r)?)),
        _ => Err(Reader::corrupt("query tag")),
    }
}

// ------------------------------------------------------------- solutions --

fn put_solutions(out: &mut Vec<u8>, s: &Solutions) {
    put_len(out, s.vars.len());
    for v in &s.vars {
        put_str(out, v);
    }
    put_len(out, s.rows.len());
    for row in &s.rows {
        put_len(out, row.len());
        for cell in row {
            put_opt_term(out, cell);
        }
    }
}

fn get_solutions(r: &mut Reader) -> Result<Solutions, WireError> {
    let nv = r.len("vars")?;
    let mut vars = bounded_vec(nv);
    for _ in 0..nv {
        vars.push(r.str("var name")?);
    }
    let nr = r.len("rows")?;
    let mut rows = bounded_vec(nr);
    for _ in 0..nr {
        let nc = r.len("row cells")?;
        let mut row = bounded_vec(nc);
        for _ in 0..nc {
            row.push(get_opt_term(r)?);
        }
        rows.push(row);
    }
    Ok(Solutions { vars, rows })
}

fn put_query_result(out: &mut Vec<u8>, qr: &QueryResult) {
    match qr {
        QueryResult::Solutions(s) => {
            put_u8(out, 0);
            put_solutions(out, s);
        }
        QueryResult::Boolean(b) => {
            put_u8(out, 1);
            put_bool(out, *b);
        }
    }
}

fn get_query_result(r: &mut Reader) -> Result<QueryResult, WireError> {
    match r.u8("query result tag")? {
        0 => Ok(QueryResult::Solutions(get_solutions(r)?)),
        1 => Ok(QueryResult::Boolean(r.bool("ask result")?)),
        _ => Err(Reader::corrupt("query result tag")),
    }
}

// ------------------------------------------------------------ QCM payload --

fn put_completion_result(out: &mut Vec<u8>, c: &CompletionResult) {
    put_len(out, c.suggestions.len());
    for s in &c.suggestions {
        put_str(out, &s.text);
        put_opt_str(out, &s.predicate_iri);
        put_u8(
            out,
            match s.source {
                MatchSource::SuffixTree => 0,
                MatchSource::ResidualBins => 1,
            },
        );
    }
    put_bool(out, c.tree_hit);
    put_duration(out, c.tree_time);
    put_duration(out, c.bins_time);
    put_usize(out, c.residual_candidates);
}

fn get_completion_result(r: &mut Reader) -> Result<CompletionResult, WireError> {
    let n = r.len("suggestions")?;
    let mut suggestions = bounded_vec(n);
    for _ in 0..n {
        suggestions.push(Completion {
            text: r.str("suggestion text")?,
            predicate_iri: r.opt_str("suggestion iri")?,
            source: match r.u8("match source")? {
                0 => MatchSource::SuffixTree,
                1 => MatchSource::ResidualBins,
                _ => return Err(Reader::corrupt("match source")),
            },
        });
    }
    Ok(CompletionResult {
        suggestions,
        tree_hit: r.bool("tree hit")?,
        tree_time: r.duration("tree time")?,
        bins_time: r.duration("bins time")?,
        residual_candidates: r.usize("residual candidates")?,
    })
}

// ------------------------------------------------------------ QSM payload --

fn put_term_alternative(out: &mut Vec<u8>, a: &TermAlternative) {
    put_usize(out, a.triple_index);
    put_u8(
        out,
        match a.position {
            AlteredPosition::Predicate => 0,
            AlteredPosition::Object => 1,
        },
    );
    put_str(out, &a.original);
    put_str(out, &a.replacement);
    put_f64(out, a.similarity);
    put_select_query(out, &a.query);
    put_solutions(out, &a.answers);
}

fn get_term_alternative(r: &mut Reader) -> Result<TermAlternative, WireError> {
    Ok(TermAlternative {
        triple_index: r.usize("triple index")?,
        position: match r.u8("altered position")? {
            0 => AlteredPosition::Predicate,
            1 => AlteredPosition::Object,
            _ => return Err(Reader::corrupt("altered position")),
        },
        original: r.str("original")?,
        replacement: r.str("replacement")?,
        similarity: r.f64("similarity")?,
        query: get_select_query(r)?,
        answers: get_solutions(r)?,
    })
}

fn put_alternatives(out: &mut Vec<u8>, alts: &[TermAlternative]) {
    put_len(out, alts.len());
    for a in alts {
        put_term_alternative(out, a);
    }
}

fn get_alternatives(r: &mut Reader) -> Result<Vec<TermAlternative>, WireError> {
    let n = r.len("alternatives")?;
    let mut alts = bounded_vec(n);
    for _ in 0..n {
        alts.push(get_term_alternative(r)?);
    }
    Ok(alts)
}

fn put_qsm_output(out: &mut Vec<u8>, q: &QsmOutput) {
    put_alternatives(out, &q.alternatives);
    put_len(out, q.relaxations.len());
    for s in &q.relaxations {
        put_select_query(out, &s.relaxed.query);
        put_len(out, s.relaxed.tree.len());
        for (a, b, c) in &s.relaxed.tree {
            put_term(out, a);
            put_term(out, b);
            put_term(out, c);
        }
        put_len(out, s.relaxed.terminals.len());
        for t in &s.relaxed.terminals {
            put_term(out, t);
        }
        put_usize(out, s.relaxed.queries_used);
        put_bool(out, s.relaxed.complete);
        put_solutions(out, &s.answers);
    }
    put_alternatives(out, &q.candidates);
    put_duration(out, q.elapsed);
    put_usize(out, q.tier);
    put_bool(out, q.degraded);
}

fn get_qsm_output(r: &mut Reader) -> Result<QsmOutput, WireError> {
    let alternatives = get_alternatives(r)?;
    let nr = r.len("relaxations")?;
    let mut relaxations = bounded_vec(nr);
    for _ in 0..nr {
        let query = get_select_query(r)?;
        let ne = r.len("tree edges")?;
        let mut tree = bounded_vec(ne);
        for _ in 0..ne {
            tree.push((get_term(r)?, get_term(r)?, get_term(r)?));
        }
        let nt = r.len("terminals")?;
        let mut terminals = bounded_vec(nt);
        for _ in 0..nt {
            terminals.push(get_term(r)?);
        }
        let queries_used = r.usize("queries used")?;
        let complete = r.bool("relaxation complete")?;
        let answers = get_solutions(r)?;
        relaxations.push(StructureSuggestion {
            relaxed: RelaxedQuery {
                query,
                tree,
                terminals,
                queries_used,
                complete,
            },
            answers,
        });
    }
    Ok(QsmOutput {
        alternatives,
        relaxations,
        candidates: Arc::new(get_alternatives(r)?),
        elapsed: r.duration("elapsed")?,
        tier: r.usize("tier")?,
        degraded: r.bool("degraded")?,
    })
}

fn put_run_payload(out: &mut Vec<u8>, p: &RunPayload) {
    put_solutions(out, &p.answers);
    put_bool(out, p.executed);
    put_qsm_output(out, &p.suggestions);
}

fn get_run_payload(r: &mut Reader) -> Result<RunPayload, WireError> {
    Ok(RunPayload {
        answers: get_solutions(r)?,
        executed: r.bool("executed")?,
        suggestions: Arc::new(get_qsm_output(r)?),
    })
}

// ------------------------------------------------------------ ServerError --

fn put_server_error(out: &mut Vec<u8>, e: &ServerError) {
    match e {
        ServerError::Overloaded {
            in_flight,
            queue_depth,
        } => {
            put_u8(out, 0);
            put_usize(out, *in_flight);
            put_usize(out, *queue_depth);
        }
        ServerError::QueueTimeout { waited_ms } => {
            put_u8(out, 1);
            put_u64(out, *waited_ms);
        }
        ServerError::Timeout { work_used } => {
            put_u8(out, 2);
            put_u64(out, *work_used);
        }
        ServerError::QuotaExhausted {
            tenant,
            used,
            budget,
        } => {
            put_u8(out, 3);
            put_str(out, tenant);
            put_u64(out, *used);
            put_u64(out, *budget);
        }
        ServerError::UnknownSession(id) => {
            put_u8(out, 4);
            put_u64(out, id.0);
        }
        ServerError::SessionLimit { open, limit } => {
            put_u8(out, 5);
            put_usize(out, *open);
            put_usize(out, *limit);
        }
        ServerError::UnknownSuggestion { index, available } => {
            put_u8(out, 6);
            put_usize(out, *index);
            put_usize(out, *available);
        }
        ServerError::ShuttingDown => put_u8(out, 7),
        ServerError::Session(se) => {
            put_u8(out, 8);
            match se {
                SessionError::InvalidSubject(s) => {
                    put_u8(out, 0);
                    put_str(out, s);
                }
                SessionError::UnknownPredicate(s) => {
                    put_u8(out, 1);
                    put_str(out, s);
                }
                SessionError::EmptyQuery => put_u8(out, 2),
            }
        }
        ServerError::Unreachable { reason } => {
            put_u8(out, 9);
            put_str(out, reason);
        }
        ServerError::Backend(m) => {
            put_u8(out, 10);
            put_str(out, m);
        }
    }
}

fn get_server_error(r: &mut Reader) -> Result<ServerError, WireError> {
    Ok(match r.u8("server error tag")? {
        0 => ServerError::Overloaded {
            in_flight: r.usize("in flight")?,
            queue_depth: r.usize("queue depth")?,
        },
        1 => ServerError::QueueTimeout {
            waited_ms: r.u64("waited ms")?,
        },
        2 => ServerError::Timeout {
            work_used: r.u64("work used")?,
        },
        3 => ServerError::QuotaExhausted {
            tenant: r.str("tenant")?,
            used: r.u64("used")?,
            budget: r.u64("budget")?,
        },
        4 => ServerError::UnknownSession(SessionId(r.u64("session id")?)),
        5 => ServerError::SessionLimit {
            open: r.usize("open")?,
            limit: r.usize("limit")?,
        },
        6 => ServerError::UnknownSuggestion {
            index: r.usize("index")?,
            available: r.usize("available")?,
        },
        7 => ServerError::ShuttingDown,
        8 => ServerError::Session(match r.u8("session error tag")? {
            0 => SessionError::InvalidSubject(r.str("invalid subject")?),
            1 => SessionError::UnknownPredicate(r.str("unknown predicate")?),
            2 => SessionError::EmptyQuery,
            _ => return Err(Reader::corrupt("session error tag")),
        }),
        9 => ServerError::Unreachable {
            reason: r.str("reason")?,
        },
        10 => ServerError::Backend(r.str("backend message")?),
        _ => return Err(Reader::corrupt("server error tag")),
    })
}

// -------------------------------------------------------- frame payloads --

/// Encode a [`WireRequest`] as a REQUEST frame payload.
pub fn encode_request(req: &WireRequest) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        WireRequest::Complete {
            tenant,
            term,
            fetch,
        } => {
            put_u8(&mut out, 0);
            put_str(&mut out, tenant);
            put_str(&mut out, term);
            put_usize(&mut out, *fetch);
        }
        WireRequest::Run {
            tenant,
            query,
            tier,
            budget,
        } => {
            put_u8(&mut out, 1);
            put_str(&mut out, tenant);
            put_select_query(&mut out, query);
            put_usize(&mut out, *tier);
            match budget {
                None => put_u8(&mut out, 0),
                Some(d) => {
                    put_u8(&mut out, 1);
                    put_duration(&mut out, *d);
                }
            }
        }
        WireRequest::Raw { tenant, query } => {
            put_u8(&mut out, 2);
            put_str(&mut out, tenant);
            put_query(&mut out, query);
        }
    }
    out
}

/// Decode a REQUEST frame payload.
pub fn decode_request(buf: &[u8]) -> Result<WireRequest, WireError> {
    let mut r = Reader::new(buf);
    let req = match r.u8("request tag")? {
        0 => WireRequest::Complete {
            tenant: r.str("tenant")?,
            term: r.str("term")?,
            fetch: r.usize("fetch")?,
        },
        1 => WireRequest::Run {
            tenant: r.str("tenant")?,
            query: get_select_query(&mut r)?,
            tier: r.usize("tier")?,
            budget: match r.u8("budget present")? {
                0 => None,
                1 => Some(r.duration("budget")?),
                _ => return Err(Reader::corrupt("budget present")),
            },
        },
        2 => WireRequest::Raw {
            tenant: r.str("tenant")?,
            query: get_query(&mut r)?,
        },
        _ => return Err(Reader::corrupt("request tag")),
    };
    r.done()?;
    Ok(req)
}

/// Encode a REPLY frame payload: load header, ok/err tag, then the body.
pub fn encode_reply(load: LoadHeader, result: &Result<WireReply, ServerError>) -> Vec<u8> {
    let mut out = Vec::new();
    put_u32(&mut out, load.in_flight);
    put_u32(&mut out, load.queued);
    put_u8(&mut out, load.pressure);
    match result {
        Ok(reply) => {
            put_u8(&mut out, 1);
            match reply {
                WireReply::Completion(c) => {
                    put_u8(&mut out, 0);
                    put_completion_result(&mut out, c);
                }
                WireReply::Run(p) => {
                    put_u8(&mut out, 1);
                    put_run_payload(&mut out, p);
                }
                WireReply::Raw(qr) => {
                    put_u8(&mut out, 2);
                    put_query_result(&mut out, qr);
                }
            }
        }
        Err(e) => {
            put_u8(&mut out, 0);
            put_server_error(&mut out, e);
        }
    }
    out
}

/// Decode a REPLY frame payload.
pub fn decode_reply(buf: &[u8]) -> Result<(LoadHeader, Result<WireReply, ServerError>), WireError> {
    let mut r = Reader::new(buf);
    let load = LoadHeader {
        in_flight: r.u32("load in flight")?,
        queued: r.u32("load queued")?,
        pressure: r.u8("load pressure")?,
    };
    let result = match r.u8("reply ok tag")? {
        0 => Err(get_server_error(&mut r)?),
        1 => Ok(match r.u8("reply body tag")? {
            0 => WireReply::Completion(get_completion_result(&mut r)?),
            1 => WireReply::Run(get_run_payload(&mut r)?),
            2 => WireReply::Raw(get_query_result(&mut r)?),
            _ => return Err(Reader::corrupt("reply body tag")),
        }),
        _ => return Err(Reader::corrupt("reply ok tag")),
    };
    r.done()?;
    Ok((load, result))
}

/// Encode a HELLO frame payload: the newest protocol version the client
/// speaks (a v1-only client sends 1; a pipelining-capable one sends 2).
pub fn encode_hello(version: u32) -> Vec<u8> {
    version.to_le_bytes().to_vec()
}

/// Decode a HELLO frame payload.
pub fn decode_hello(buf: &[u8]) -> Result<u32, WireError> {
    let mut r = Reader::new(buf);
    let v = r.u32("hello version")?;
    r.done()?;
    Ok(v)
}

/// Encode a HELLO_OK frame payload: the replica's name, its model's top-k,
/// and the largest frame it will accept.
///
/// `chosen_version` is the negotiated protocol version, appended as a
/// trailing `u32` **only when it is not 1**: a v1 client's
/// [`decode_hello_ok`] rejects trailing bytes, so the server keeps the
/// legacy shape exactly when the client asked for v1 — that is what keeps
/// old peers working.
pub fn encode_hello_ok(name: &str, k: usize, max_frame: u32, chosen_version: u32) -> Vec<u8> {
    let mut out = Vec::new();
    put_str(&mut out, name);
    put_usize(&mut out, k);
    put_u32(&mut out, max_frame);
    if chosen_version != 1 {
        put_u32(&mut out, chosen_version);
    }
    out
}

/// Decode a HELLO_OK frame payload. Returns
/// `(name, k, max_frame, chosen_version)` — a payload without the trailing
/// version field (a v1 server, or a v2 server answering a v1 client) means
/// version 1.
pub fn decode_hello_ok(buf: &[u8]) -> Result<(String, usize, u32, u32), WireError> {
    let mut r = Reader::new(buf);
    let name = r.str("replica name")?;
    let k = r.usize("top k")?;
    let max_frame = r.u32("max frame")?;
    let chosen_version = if r.remaining() > 0 {
        r.u32("chosen version")?
    } else {
        1
    };
    r.done()?;
    Ok((name, k, max_frame, chosen_version))
}
