//! Open-loop overload harness: `serve_load --overload` and the CI
//! graceful-degradation smoke gate.
//!
//! The closed-loop harnesses ([`crate::serve`], [`crate::cluster`])
//! self-throttle: a simulated user never issues its next request until the
//! previous one returns, so the *offered* load silently adapts to capacity
//! and the system is never pushed past saturation — coordinated omission
//! by construction. This module drives the opposite posture. A
//! deterministic-seed Poisson process ([`poisson_schedule`]) fixes every
//! arrival instant up front at a configured offered rate; a launcher pool
//! fires each arrival at its scheduled time whether or not earlier
//! requests have completed; and the offered rate is swept across multiples
//! of the measured closed-loop capacity, past saturation. Latency is
//! measured from the *scheduled* arrival, not the launch, so a backed-up
//! launcher pool cannot hide queueing delay.
//!
//! Past saturation the contract is *graceful degradation*, and the
//! `overload` report section measures exactly that, per sweep step:
//!
//! * **goodput** — completed requests per second (degraded answers count:
//!   they are correct, just shallower);
//! * **typed rejections** — `Overloaded` / `QueueTimeout` / quota per
//!   class; anything untyped is a failure the CI gate holds at zero;
//! * **degraded tiers** — merges served at QSM shed tier 1/2, from the
//!   router-requested degradation loop ([`DegradePolicy`] at the edge,
//!   [`qsm_shed_budget`](sapphire_server::ServerConfig::qsm_shed_budget)
//!   on the shards);
//! * **stage tails** — p99 `admission_wait`, `coalesce_wait`, and
//!   `end_to_end` over the step interval, from histogram snapshot
//!   differences ([`Snapshot::diff`]) across the edge and every shard
//!   replica;
//! * **tier hygiene** — after the sweep drains, a sample of the queries
//!   that were served degraded is re-issued at tier 0; a degraded answer
//!   then means a tier-keyed cache leaked across tiers
//!   (`tier_mix_violations`, gated at zero).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sapphire_cluster::{Cluster, ClusterConfig, ClusterRouter, DegradePolicy};
use sapphire_core::exec::Executor;
use sapphire_core::session::{Modifiers, Session, TripleInput};
use sapphire_core::PredictiveUserModel;
use sapphire_datagen::generate;
use sapphire_datagen::workload::appendix_b;
use sapphire_endpoint::Backoff;
use sapphire_obs::{Snapshot, Stage};
use sapphire_server::ServerConfig;
use sapphire_sparql::SelectQuery;
use sapphire_text::Lexicon;

use crate::cluster::flatten;
use crate::serve::ClassStats;
use crate::{dataset_for, experiment_config};

/// Everything the open-loop harness can be asked to do.
#[derive(Debug, Clone)]
pub struct OverloadOptions {
    /// Dataset scale (`tiny`/`small`/`medium`).
    pub scale: String,
    /// Data shards.
    pub shards: usize,
    /// Replicas per shard.
    pub replicas: usize,
    /// Launcher threads firing scheduled arrivals. This bounds *concurrent*
    /// requests, not offered load — when every launcher is stuck waiting on
    /// a saturated shard, later arrivals launch late and the lateness is
    /// counted (`late_launches`), not hidden.
    pub launchers: usize,
    /// Offered load at each sweep step, as a multiple of the calibrated
    /// closed-loop capacity. Must be non-decreasing and should extend well
    /// past `1.0` — the whole point is to observe the past-saturation side
    /// of the curve.
    pub steps: Vec<f64>,
    /// Wall-clock length of each sweep step's arrival schedule.
    pub step: Duration,
    /// Closed-loop requests used to measure capacity before the sweep.
    pub calibration_requests: usize,
    /// Seed of the arrival process (each step derives its own stream).
    pub seed: u64,
    /// Edge deadline budget per request ([`DegradePolicy::deadline`]).
    pub deadline: Duration,
    /// Degraded-served queries re-issued at tier 0 after the sweep drains,
    /// to prove tier-keyed caches never leak across tiers.
    pub tier_mix_sample: usize,
}

impl Default for OverloadOptions {
    fn default() -> Self {
        OverloadOptions {
            scale: "tiny".to_string(),
            shards: 2,
            replicas: 2,
            launchers: 64,
            steps: vec![0.5, 1.0, 1.5, 2.5, 4.0],
            step: Duration::from_millis(2_000),
            calibration_requests: 256,
            seed: 42,
            deadline: Duration::from_millis(250),
            tier_mix_sample: 16,
        }
    }
}

impl OverloadOptions {
    /// The bounded configuration the CI smoke gate runs: a 2x2 cluster,
    /// short steps, a small calibration phase — seconds, not minutes.
    pub fn smoke() -> Self {
        OverloadOptions {
            launchers: 32,
            steps: vec![0.5, 1.0, 2.0, 3.0],
            step: Duration::from_millis(500),
            calibration_requests: 64,
            ..Self::default()
        }
    }
}

/// Deterministic xorshift64* stream for the arrival process. Not a crypto
/// PRNG and not `rand` — the schedule must be reproducible byte-for-byte
/// from the seed alone, on every platform, with no external dependency.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    state: u64,
}

impl ArrivalGen {
    /// A generator seeded from `seed` (`| 1` keeps the state nonzero —
    /// xorshift fixes at zero).
    pub fn new(seed: u64) -> Self {
        ArrivalGen { state: seed | 1 }
    }

    fn next_u64(&mut self) -> u64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform on `(0, 1]` — the open end at zero matters because the
    /// exponential transform takes `ln(u)`.
    fn next_unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 / 9_007_199_254_740_992.0
    }

    /// The next exponential inter-arrival gap in nanoseconds at `rate_rps`.
    pub fn next_gap_ns(&mut self, rate_rps: f64) -> f64 {
        -self.next_unit().ln() / rate_rps * 1e9
    }
}

/// The full arrival schedule for one sweep step: nanosecond offsets from
/// the step start, strictly within `horizon`, Poisson at `rate_rps`.
///
/// Offsets accumulate in `f64` nanoseconds (53-bit mantissa — exact to the
/// nanosecond for any realistic step length), so the schedule has no
/// cumulative drift: the arrival *count* over the horizon concentrates at
/// `rate * horizon` even at millions of arrivals per second, instead of
/// drifting with per-gap rounding error.
pub fn poisson_schedule(seed: u64, rate_rps: f64, horizon: Duration) -> Vec<u64> {
    let mut gen = ArrivalGen::new(seed);
    let horizon_ns = horizon.as_nanos() as f64;
    let mut at = 0.0f64;
    let mut out = Vec::new();
    loop {
        at += gen.next_gap_ns(rate_rps);
        if at >= horizon_ns {
            return out;
        }
        out.push(at as u64);
    }
}

/// Builds a unique, *relaxable* query per arrival.
///
/// Uniqueness cannot come from modifiers: the scatter strips projection
/// and slice before the shard hop (`star_pattern_query`), so two arrivals
/// differing only in `LIMIT` would collapse onto one shard run-cache key
/// and measure the cache, not the serving path. Instead each arrival
/// mutates one *object literal* of an Appendix-B question (suffix `~N`) —
/// a distinct query that misses every cache, executes, and exercises the
/// QSM alternative/relaxation machinery the shed ladder actually degrades.
/// Only questions with at least two literal rows qualify (fewer and the
/// QSM has nothing to relax, so the tier is forced to 0 and degradation
/// would be invisible).
struct QueryFactory {
    models: Vec<Arc<PredictiveUserModel>>,
    bases: Vec<(Vec<TripleInput>, Modifiers)>,
    fallbacks: Vec<SelectQuery>,
}

impl QueryFactory {
    fn build(cluster: &Cluster) -> QueryFactory {
        let models: Vec<Arc<PredictiveUserModel>> = (0..cluster.shard_count())
            .map(|s| cluster.replicas(s)[0].model().clone())
            .collect();
        let mut bases = Vec::new();
        let mut fallbacks = Vec::new();
        for q in appendix_b() {
            let literal_rows = q
                .script
                .rows
                .iter()
                .filter(|r| !r.object.starts_with('?'))
                .count();
            if literal_rows < 2 {
                continue;
            }
            let modifiers = Modifiers {
                distinct: false,
                order_by: q.script.order_by.clone(),
                limit: q.script.limit,
                count: q.script.count,
                filters: q.script.filters.clone(),
            };
            if let Some(query) = Self::resolve(&models, &q.script.rows, &modifiers) {
                bases.push((q.script.rows.clone(), modifiers));
                fallbacks.push(query);
            }
        }
        assert!(
            !bases.is_empty(),
            "the Appendix-B workload has relaxable (>= 2 literal rows) questions"
        );
        QueryFactory {
            models,
            bases,
            fallbacks,
        }
    }

    /// Walk the shard models in order and take the first that resolves the
    /// script (a rare predicate can be missing from one shard's slice).
    fn resolve(
        models: &[Arc<PredictiveUserModel>],
        rows: &[TripleInput],
        modifiers: &Modifiers,
    ) -> Option<SelectQuery> {
        models.iter().find_map(|m| {
            Session::resume(m, rows.to_vec(), modifiers.clone(), 0)
                .build_query()
                .ok()
        })
    }

    /// The query for arrival number `serial` (process-wide, so no two
    /// arrivals in any phase share a cache key).
    fn unique(&self, serial: usize) -> SelectQuery {
        let slot = serial % self.bases.len();
        let (rows, modifiers) = &self.bases[slot];
        let mut rows = rows.clone();
        if let Some(row) = rows.iter_mut().rev().find(|r| !r.object.starts_with('?')) {
            row.object = format!("{}~{serial}", row.object);
        }
        Self::resolve(&self.models, &rows, modifiers)
            .unwrap_or_else(|| self.fallbacks[slot].clone())
    }
}

/// One sweep step's measured outcome.
struct StepOutcome {
    offered_rps: f64,
    arrivals: usize,
    stats: ClassStats,
    wall: Duration,
    late_launches: u64,
    degraded: u64,
    degraded_by_tier: Vec<u64>,
    admission_p99_us: u64,
    coalesce_p99_us: u64,
    end_to_end_p99_us: u64,
}

/// A stage histogram summed across the edge and every shard replica — the
/// interval view (`Snapshot::diff` of two of these) localizes which tier a
/// step saturated.
fn cluster_stage_snapshot(router: &ClusterRouter, stage: Stage) -> Snapshot {
    let mut snap = router.obs().stage_snapshot(stage);
    for shard in router.cluster().shards() {
        for replica in shard {
            snap.merge(&replica.obs().stage_snapshot(stage));
        }
    }
    snap
}

/// Fire one step's schedule through the launcher pool and measure it. The
/// pool is a dedicated [`Executor`] sized to the launcher count and reused
/// across calibration and every sweep step — the pre-executor code spawned
/// `launchers` scoped threads per phase.
#[allow(clippy::too_many_arguments)]
fn run_step(
    exec: &Executor,
    router: &Arc<ClusterRouter>,
    factory: &QueryFactory,
    schedule: &[u64],
    offered_rps: f64,
    serial_base: usize,
    launchers: usize,
    degraded_sample: &Mutex<Vec<usize>>,
    sample_cap: usize,
) -> StepOutcome {
    // Prebuild every arrival's query so model resolution never delays a
    // launch; the launcher loop only sleeps, fires, and records.
    let arrivals: Vec<SelectQuery> = (0..schedule.len())
        .map(|i| factory.unique(serial_base + i))
        .collect();
    let admission_before = cluster_stage_snapshot(router, Stage::AdmissionWait);
    let coalesce_before = cluster_stage_snapshot(router, Stage::CoalesceWait);
    let end_to_end_before = cluster_stage_snapshot(router, Stage::EndToEnd);
    let metrics_before = router.metrics();

    let next = AtomicUsize::new(0);
    let late = AtomicU64::new(0);
    let degraded = AtomicU64::new(0);
    let started = Instant::now();
    let mut stats = ClassStats::default();
    let launcher_outs = exec.run(launchers, |launcher| {
        let tenant = format!("open-{launcher}");
        let mut stats = ClassStats::default();
        let mut sampled = Vec::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= arrivals.len() {
                return (stats, sampled);
            }
            let target = started + Duration::from_nanos(schedule[i]);
            let now = Instant::now();
            if now < target {
                std::thread::sleep(target - now);
            } else if now > target + Duration::from_millis(5) {
                late.fetch_add(1, Ordering::Relaxed);
            }
            let outcome = router.run(&tenant, &arrivals[i]);
            if let Ok(run) = &outcome {
                if run.degraded {
                    degraded.fetch_add(1, Ordering::Relaxed);
                    if sampled.len() < 4 {
                        sampled.push(i);
                    }
                }
            }
            // Latency from the *scheduled* arrival: a late launch is
            // queueing delay the client would have seen, not noise.
            stats.record(target, &flatten(outcome.map(|_| ())));
        }
    });
    for (s, sampled) in launcher_outs {
        stats.merge(s);
        let mut sample = degraded_sample.lock().expect("sample lock");
        for i in sampled {
            if sample.len() >= sample_cap {
                break;
            }
            sample.push(serial_base + i);
        }
    }
    let wall = started.elapsed();

    let metrics_after = router.metrics();
    let degraded_by_tier: Vec<u64> = metrics_after
        .degraded_by_tier
        .iter()
        .zip(metrics_before.degraded_by_tier.iter())
        .map(|(now, then)| now.saturating_sub(*then))
        .collect();
    StepOutcome {
        offered_rps,
        arrivals: schedule.len(),
        stats,
        wall,
        late_launches: late.load(Ordering::Relaxed),
        degraded: degraded.load(Ordering::Relaxed),
        degraded_by_tier,
        admission_p99_us: cluster_stage_snapshot(router, Stage::AdmissionWait)
            .diff(&admission_before)
            .percentile(99.0),
        coalesce_p99_us: cluster_stage_snapshot(router, Stage::CoalesceWait)
            .diff(&coalesce_before)
            .percentile(99.0),
        end_to_end_p99_us: cluster_stage_snapshot(router, Stage::EndToEnd)
            .diff(&end_to_end_before)
            .percentile(99.0),
    }
}

/// Run the calibration phase plus the offered-load sweep and return the
/// JSON report (with the `overload` section the CI gate reads).
pub fn run(opts: &OverloadOptions) -> String {
    assert!(
        opts.steps.windows(2).all(|w| w[0] <= w[1]),
        "the offered-load sweep must be non-decreasing"
    );
    let dataset = dataset_for(&opts.scale);
    eprintln!(
        "(generating dataset + initializing {} shard models x {} replicas…)",
        opts.shards, opts.replicas
    );
    let graph = generate(dataset);
    let triple_count = graph.len();
    // Small, hardware-independent admission gates: the sweep must be able
    // to reach saturation on any CI box, so capacity is bounded by
    // configuration, not cores. Shards opt into the local shed ladder —
    // the router-requested tier and the shard's own pressure tier compose.
    let server_config = ServerConfig {
        max_in_flight: 4,
        max_queue_depth: 16,
        queue_wait: Duration::from_millis(100),
        qsm_shed_budget: true,
        ..ServerConfig::default()
    };
    let cluster = Cluster::build(
        "overload-edge",
        &graph,
        opts.shards,
        opts.replicas,
        &Lexicon::dbpedia_default(),
        &experiment_config(),
        &server_config,
    )
    .expect("shard initialization");
    // The edge requests degradation itself (queue pressure + remaining
    // deadline) and propagates the budget; hedging is off and retry
    // minimal so each request's lifetime stays bounded under overload —
    // the launcher pool must keep draining.
    let router = Arc::new(ClusterRouter::new(
        cluster,
        ClusterConfig {
            hedge_after: None,
            backoff: Backoff {
                max_retries: 1,
                ..Backoff::default()
            },
            degrade: Some(DegradePolicy {
                deadline: opts.deadline,
            }),
            ..ClusterConfig::default()
        },
    ));
    let factory = QueryFactory::build(router.cluster());
    let mut serial = 0usize;
    // One launcher pool for the whole run — calibration and every sweep
    // step reuse it instead of spawning a fresh scoped pool per phase.
    let exec = Executor::new(opts.launchers);

    // --- Calibration: closed-loop capacity under the same unique-query
    // workload. Sets the sweep's rate scale; the sweep re-measures goodput.
    eprintln!(
        "(calibrating closed-loop capacity over {} requests…)",
        opts.calibration_requests
    );
    let calibration: Vec<SelectQuery> = (0..opts.calibration_requests)
        .map(|i| factory.unique(serial + i))
        .collect();
    serial += opts.calibration_requests;
    let next = AtomicUsize::new(0);
    let calibrated = Instant::now();
    let completed: u64 = exec
        .run(opts.launchers.min(opts.calibration_requests), |launcher| {
            let tenant = format!("calibrate-{launcher}");
            let mut done = 0u64;
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= calibration.len() {
                    return done;
                }
                if router.run(&tenant, &calibration[i]).is_ok() {
                    done += 1;
                }
            }
        })
        .into_iter()
        .sum();
    let calibrated_rps = (completed as f64 / calibrated.elapsed().as_secs_f64().max(1e-9)).max(1.0);
    eprintln!("(calibrated capacity: {calibrated_rps:.1} rps)");

    // --- The sweep: one open-loop step per capacity multiple.
    let degraded_sample = Mutex::new(Vec::new());
    let mut outcomes: Vec<StepOutcome> = Vec::new();
    for (step_index, multiple) in opts.steps.iter().enumerate() {
        let offered = (calibrated_rps * multiple).max(1.0);
        let schedule = poisson_schedule(
            opts.seed.wrapping_add(step_index as u64),
            offered,
            opts.step,
        );
        eprintln!(
            "(step {step_index}: {:.2}x capacity = {offered:.1} rps offered, {} arrivals…)",
            multiple,
            schedule.len()
        );
        let outcome = run_step(
            &exec,
            &router,
            &factory,
            &schedule,
            offered,
            serial,
            opts.launchers,
            &degraded_sample,
            opts.tier_mix_sample,
        );
        serial += schedule.len();
        outcomes.push(outcome);
    }

    // --- Tier hygiene: the sweep has drained (every launcher joined), so a
    // tier-0 re-issue of a query that was served degraded must come back at
    // full fidelity — the degraded payload lives under a different cache
    // key at every layer, or this counts a violation.
    let sample = degraded_sample.into_inner().expect("sample lock");
    let mut tier_mix_violations = 0u64;
    for serial in &sample {
        let query = factory.unique(*serial);
        match router.run("tier-audit", &query) {
            Ok(run) => {
                if run.degraded || run.tier != 0 {
                    tier_mix_violations += 1;
                }
            }
            Err(_) => tier_mix_violations += 1,
        }
    }

    // --- The report.
    let goodputs: Vec<f64> = outcomes
        .iter()
        .map(|o| o.stats.latencies_us.len() as f64 / o.wall.as_secs_f64().max(1e-9))
        .collect();
    let peak_goodput = goodputs.iter().cloned().fold(0.0f64, f64::max);
    let past_saturation_goodput = goodputs.last().copied().unwrap_or(0.0);
    let goodput_floor_ratio = if peak_goodput > 0.0 {
        past_saturation_goodput / peak_goodput
    } else {
        0.0
    };
    let monotone_offered = outcomes
        .windows(2)
        .all(|w| w[0].offered_rps <= w[1].offered_rps) as u8;
    let untyped_failures: u64 = outcomes.iter().map(|o| o.stats.typed_counts().3).sum();
    let late_launches: u64 = outcomes.iter().map(|o| o.late_launches).sum();
    let metrics = router.metrics();
    let steps_json: Vec<String> = outcomes
        .iter()
        .zip(goodputs.iter())
        .map(|(o, goodput)| {
            let (overloaded, queue_timeout, quota, invalid) = o.stats.typed_counts();
            let tiers: String = o
                .degraded_by_tier
                .iter()
                .enumerate()
                .skip(1)
                .map(|(tier, runs)| format!(", \"degraded_tier{tier}\": {runs}"))
                .collect();
            format!(
                "{{\"offered_rps\": {:.1}, \"arrivals\": {}, \"completed\": {}, \
                 \"goodput_rps\": {goodput:.1}, \"wall_seconds\": {:.3}, \
                 \"degraded\": {}{tiers}, \"rejected_overloaded\": {overloaded}, \
                 \"rejected_queue_timeout\": {queue_timeout}, \
                 \"rejected_quota\": {quota}, \"untyped\": {invalid}, \
                 \"late_launches\": {}, \"admission_wait_p99_us\": {}, \
                 \"coalesce_wait_p99_us\": {}, \"end_to_end_p99_us\": {}}}",
                o.offered_rps,
                o.arrivals,
                o.stats.latencies_us.len(),
                o.wall.as_secs_f64(),
                o.degraded,
                o.late_launches,
                o.admission_p99_us,
                o.coalesce_p99_us,
                o.end_to_end_p99_us,
            )
        })
        .collect();
    let degraded_tiers: String = metrics
        .degraded_by_tier
        .iter()
        .enumerate()
        .skip(1)
        .map(|(tier, runs)| format!(", \"degraded_tier{tier}\": {runs}"))
        .collect();
    format!(
        "{{\n  \"benchmark\": \"serve_overload\",\n  \"config\": {{\"scale\": \"{}\", \
         \"shards\": {}, \"replicas\": {}, \"launchers\": {}, \"seed\": {}, \
         \"step_ms\": {}, \"deadline_ms\": {}, \"calibration_requests\": {}, \
         \"triples\": {triple_count}}},\n  \
         \"calibrated_rps\": {calibrated_rps:.1},\n  \
         \"overload\": {{\n    \"peak_goodput_rps\": {peak_goodput:.1},\n    \
         \"past_saturation_goodput_rps\": {past_saturation_goodput:.1},\n    \
         \"goodput_floor_ratio\": {goodput_floor_ratio:.3},\n    \
         \"untyped_failures\": {untyped_failures},\n    \
         \"tier_mix_violations\": {tier_mix_violations},\n    \
         \"tier_mix_sample\": {},\n    \
         \"monotone_offered\": {monotone_offered},\n    \
         \"late_launches\": {late_launches},\n    \
         \"degraded_runs\": {}{degraded_tiers},\n    \
         \"steps\": [\n      {}\n    ]\n  }},\n  \
         \"routing\": {{\"replica_retries\": {}, \"rejected_after_retry\": {}}},\n  \
         \"stages\": {}\n}}",
        opts.scale,
        opts.shards,
        opts.replicas,
        opts.launchers,
        opts.seed,
        opts.step.as_millis(),
        opts.deadline.as_millis(),
        opts.calibration_requests,
        sample.len(),
        metrics.degraded_runs,
        steps_json.join(",\n      "),
        metrics.replica_retries,
        metrics.rejected_after_retry,
        router.obs().stages_json(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let a = poisson_schedule(7, 500.0, Duration::from_millis(200));
        let b = poisson_schedule(7, 500.0, Duration::from_millis(200));
        assert_eq!(a, b, "same seed, same schedule, byte for byte");
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "offsets are ordered");
        assert!(
            *a.last().unwrap() < 200_000_000,
            "every offset stays inside the horizon"
        );
    }

    #[test]
    fn schedules_diverge_across_seeds() {
        let a = poisson_schedule(1, 500.0, Duration::from_millis(200));
        let b = poisson_schedule(2, 500.0, Duration::from_millis(200));
        assert_ne!(a, b, "different seeds must give different arrival streams");
    }

    #[test]
    fn high_rate_schedule_has_no_cumulative_drift() {
        // A drifting accumulator would show up as a biased arrival count;
        // at 1M arrivals/s over one second the Poisson count concentrates
        // tightly (sigma = 1000), so +/- 1% is a > 10-sigma corridor that
        // only systematic drift can escape.
        let rate = 1_000_000.0;
        let schedule = poisson_schedule(42, rate, Duration::from_secs(1));
        let n = schedule.len() as f64;
        assert!(
            (n - rate).abs() < rate * 0.01,
            "expected ~{rate} arrivals, got {n}"
        );
        // And the schedule keeps nanosecond-exact ordering to the end.
        assert!(schedule.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn unit_samples_stay_in_the_open_interval() {
        let mut gen = ArrivalGen::new(0); // `| 1` rescues the all-zero seed
        for _ in 0..10_000 {
            let u = gen.next_unit();
            assert!(u > 0.0 && u <= 1.0, "u = {u}");
        }
    }
}
