//! CI benchmark-regression gate for the serving tier.
//!
//! Runs the `serve_load` workload (via [`sapphire_bench::serve`], the same
//! code the `serve_load` binary runs) and **fails the build** — exit code 1
//! — instead of asking a human to eyeball the JSON, enforcing:
//!
//! * `rejected_total == 0` — the fixed-seed workload fits the default gate;
//!   any shedding is a regression in admission or a stall in the hot path.
//! * `sessions_leaked == 0` — every load-generator session closed.
//! * both cache hit ratios ≥ 0.90 — the paper's >90% hit-ratio claim, kept
//!   true under the serving tier. (The check runs two rounds: the
//!   Appendix-B list has ~12% unique queries per round, so a single round
//!   *by construction* cannot exceed ~0.88 on the run cache even with a
//!   perfect cache — one round fills, the second must hit.)
//! * `leader_runs + bypass_runs ≤ 2 × burst_rounds` in the duplicate-burst
//!   phase — a burst of identical cold requests must cost ~one model scan
//!   per request class per round, not one per user (bypass scans count, so
//!   a broken waiter cap cannot pass on leader count alone).
//! * throughput ≥ 50% of the committed `BENCH_serve.json` baseline — loose
//!   enough for noisy shared CI runners, tight enough to catch a serializing
//!   lock or an accidental O(n) on the hot path.
//!
//! Usage: `cargo run --release -p sapphire-bench --bin serve_check
//!         [--rounds 2] [--baseline BENCH_serve.json]`
//!
//! The committed baseline is read *before* the run and never rewritten here;
//! regenerating it after an intentional perf change is `serve_load`'s job.

use sapphire_bench::serve::{self, arg_string, arg_usize, json_f64, ServeLoadOptions};

struct Gate {
    failures: u32,
}

impl Gate {
    fn check(&mut self, name: &str, pass: bool, detail: String) {
        if pass {
            eprintln!("PASS {name}: {detail}");
        } else {
            self.failures += 1;
            eprintln!("FAIL {name}: {detail}");
        }
    }
}

fn main() {
    let baseline_path = arg_string("--baseline").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "FAIL baseline: cannot read {baseline_path}: {e}\n\
                 (regenerate with `cargo run --release -p sapphire-bench --bin serve_load` \
                 and commit the result)"
            );
            std::process::exit(1);
        }
    };
    let baseline_rps = match json_f64(&baseline, None, "total_throughput_rps") {
        Some(v) if v > 0.0 => v,
        _ => {
            eprintln!("FAIL baseline: {baseline_path} has no total_throughput_rps");
            std::process::exit(1);
        }
    };

    let opts = ServeLoadOptions {
        rounds: arg_usize("--rounds", 2),
        // A relaxed queue deadline: the zero-rejection gate must catch real
        // admission regressions, not a noisy CI runner descheduling one
        // thread past the serving posture's 100ms for a moment.
        queue_wait_ms: 1_000,
        ..ServeLoadOptions::default()
    };
    let report = serve::run(&opts);
    println!("{report}");

    let num = |section: Option<&str>, key: &str| -> f64 {
        match json_f64(&report, section, key) {
            Some(v) => v,
            None => {
                eprintln!("FAIL report: missing field {key:?} (section {section:?})");
                std::process::exit(1);
            }
        }
    };

    let mut gate = Gate { failures: 0 };
    let rejected = num(None, "rejected_total");
    gate.check(
        "rejected_total",
        rejected == 0.0,
        format!("{rejected} (must be 0)"),
    );
    let leaked = num(None, "sessions_leaked");
    gate.check(
        "sessions_leaked",
        leaked == 0.0,
        format!("{leaked} (must be 0)"),
    );
    let completion_ratio = num(Some("completion_cache"), "hit_ratio");
    gate.check(
        "completion_cache.hit_ratio",
        completion_ratio >= 0.90,
        format!("{completion_ratio:.3} (floor 0.90)"),
    );
    let run_ratio = num(Some("run_cache"), "hit_ratio");
    gate.check(
        "run_cache.hit_ratio",
        run_ratio >= 0.90,
        format!("{run_ratio:.3} (floor 0.90)"),
    );
    // Single-flight contract: a burst of identical cold requests costs one
    // scan per request class per round (QCM + QSM), give or take nothing.
    // Bypass scans count too — a regression that made every duplicate
    // bypass (e.g. a broken waiter cap) must not pass on leader count alone.
    let burst_rounds = num(Some("config"), "burst_rounds");
    let burst_scans =
        num(Some("duplicate_burst"), "leader_runs") + num(Some("duplicate_burst"), "bypass_runs");
    gate.check(
        "duplicate_burst scans",
        burst_scans <= 2.0 * burst_rounds,
        format!(
            "{burst_scans} scans for {burst_rounds} burst rounds (cap {})",
            2.0 * burst_rounds
        ),
    );
    let rps = num(None, "total_throughput_rps");
    let floor = baseline_rps * 0.5;
    gate.check(
        "total_throughput_rps",
        rps >= floor,
        format!("{rps:.1} vs baseline {baseline_rps:.1} (floor {floor:.1})"),
    );

    if gate.failures > 0 {
        eprintln!("serve_check: {} gate(s) FAILED", gate.failures);
        std::process::exit(1);
    }
    eprintln!("serve_check: all gates passed");
}
