//! `WireServer`: hosts a [`ShardService`] behind a TCP listener.
//!
//! The threading model is deliberately boring — one accept thread, one
//! thread per connection, a hard cap on concurrent connections — because
//! the hard bounds the paper's serving story cares about (in-flight limit,
//! queue depth, queue deadline) already live in the [`SapphireServer`]'s
//! admission controller behind the service. The wire layer only has to
//! avoid *adding* an unbounded queue in front of it, which the connection
//! cap does: an edge with `max_pool` connections per replica can never
//! hold more than `max_pool` requests open against one replica socket-side.
//!
//! Protocol v2 (pipelined connections) keeps that shape but decouples
//! reading from serving: the connection thread stays in its frame loop,
//! while each correlated request runs as a task on the shared
//! [`exec`] pool and writes its reply — tagged with the request's
//! correlation id, in whatever order it finishes — under the connection's
//! write lock. Backlog per connection is bounded by
//! [`WireServerConfig::pipeline_depth`]: past the cap the connection
//! thread serves the oldest unstarted request inline, so a saturated
//! executor degrades to the v1 serial behavior instead of queueing
//! without bound. If the executor has no idle worker the request also
//! runs inline — the connection thread is itself a worker of last resort,
//! so replies never depend on executor capacity.
//!
//! Shutdown comes in two flavors, both needed by the fault drills:
//!
//! * [`WireServer::shutdown`] — graceful drain: stop accepting, let every
//!   connection finish the request it is currently serving, then join all
//!   threads.
//! * [`WireServer::kill_connections`] — abrupt replica loss: every live
//!   socket is shot mid-stream (clients see resets/short reads, exactly
//!   what a crashed process produces), while the listener keeps running.
//!   Pair with `shutdown` to simulate a full crash where subsequent dials
//!   are refused.
//!
//! [`SapphireServer`]: sapphire_server::SapphireServer

use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sapphire_core::exec;
use sapphire_server::ShardService;

use crate::codec::{
    decode_hello, decode_request, encode_hello_ok, encode_reply, LoadHeader, WireReply, WireRequest,
};
use crate::frame::{self, kind, WireError, MAX_FRAME, WIRE_VERSION, WIRE_VERSION_PIPELINED};

/// Tuning knobs for a [`WireServer`].
#[derive(Debug, Clone)]
pub struct WireServerConfig {
    /// Maximum concurrent connections; accepts beyond this are closed
    /// immediately (the edge's reconnect pool treats that as "reset" and
    /// its router retries elsewhere).
    pub max_connections: usize,
    /// How often an idle connection thread wakes to check for shutdown.
    pub idle_poll: Duration,
    /// Largest frame payload accepted from a client.
    pub max_frame: u32,
    /// Newest protocol version this server will negotiate. Defaults to
    /// [`frame::WIRE_VERSION_MAX`]; pin to 1 to force every connection onto
    /// the legacy serial request/reply protocol.
    pub max_version: u32,
    /// Per-connection cap on pipelined (v2) requests admitted before their
    /// reply is written. When a connection exceeds it, the connection
    /// thread executes the oldest unstarted request inline instead of
    /// queueing more work onto the executor.
    pub pipeline_depth: usize,
}

impl Default for WireServerConfig {
    fn default() -> Self {
        WireServerConfig {
            max_connections: 64,
            idle_poll: Duration::from_millis(50),
            max_frame: MAX_FRAME,
            max_version: frame::WIRE_VERSION_MAX,
            pipeline_depth: 32,
        }
    }
}

/// Counters a hosted replica accumulates (server side of the transport).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireServerStats {
    /// Connections accepted and handshaken.
    pub accepted: u64,
    /// Connections refused because the cap was reached.
    pub refused: u64,
    /// Requests served (ok or typed error).
    pub requests: u64,
    /// Connections dropped for protocol violations.
    pub corrupt_frames: u64,
}

struct Shared {
    service: Arc<dyn ShardService>,
    config: WireServerConfig,
    shutdown: AtomicBool,
    active: AtomicUsize,
    // try_clone handles of every live connection keyed by a per-connection
    // token, so kill_connections can shoot them mid-stream from outside
    // their threads. Workers remove their own entry on exit — a long-lived
    // replica under reconnect churn must not accumulate dead descriptors.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn: AtomicU64,
    workers: Mutex<Vec<JoinHandle<()>>>,
    accepted: AtomicU64,
    refused: AtomicU64,
    requests: AtomicU64,
    corrupt: AtomicU64,
}

/// A [`ShardService`] hosted behind a TCP listener. See the module docs.
pub struct WireServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and serve `service`
    /// until [`shutdown`](Self::shutdown).
    pub fn serve(
        service: Arc<dyn ShardService>,
        addr: &str,
        config: WireServerConfig,
    ) -> std::io::Result<WireServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service,
            config,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
            accepted: AtomicU64::new(0),
            refused: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
        });
        let accept = {
            let shared = shared.clone();
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(WireServer {
            addr,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server-side transport counters.
    pub fn stats(&self) -> WireServerStats {
        WireServerStats {
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            refused: self.shared.refused.load(Ordering::Relaxed),
            requests: self.shared.requests.load(Ordering::Relaxed),
            corrupt_frames: self.shared.corrupt.load(Ordering::Relaxed),
        }
    }

    /// Shoot every live connection mid-stream (simulated crash); the
    /// listener keeps accepting. See the module docs.
    pub fn kill_connections(&self) {
        let conns = self.shared.conns.lock().unwrap();
        for c in conns.values() {
            let _ = c.shutdown(Shutdown::Both);
        }
    }

    /// Connections currently registered (their worker has not exited).
    /// Closed connections deregister themselves, so under reconnect churn
    /// this tracks live peers, not accept history.
    pub fn live_connections(&self) -> usize {
        self.shared.conns.lock().unwrap().len()
    }

    /// Graceful drain: stop accepting, finish in-flight requests, join all
    /// threads. After this returns, dials to the old address are refused.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop; it re-checks the flag per iteration.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let workers = std::mem::take(&mut *self.shared.workers.lock().unwrap());
        for h in workers {
            let _ = h.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        if self.accept.is_some() {
            self.stop();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        if shared.active.load(Ordering::SeqCst) >= shared.config.max_connections {
            shared.refused.fetch_add(1, Ordering::Relaxed);
            drop(stream);
            continue;
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        shared.accepted.fetch_add(1, Ordering::Relaxed);
        let token = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if let Ok(handle) = stream.try_clone() {
            shared.conns.lock().unwrap().insert(token, handle);
        }
        let worker = {
            let shared = shared.clone();
            std::thread::spawn(move || {
                serve_connection(stream, &shared);
                // Deregister before the active count drops: once a slot
                // frees up, this connection's clone must already be gone.
                shared.conns.lock().unwrap().remove(&token);
                shared.active.fetch_sub(1, Ordering::SeqCst);
            })
        };
        let mut workers = shared.workers.lock().unwrap();
        workers.push(worker);
        // Reap finished workers so a long-running replica under client
        // reconnect churn does not accumulate join handles without bound.
        let mut live = Vec::with_capacity(workers.len());
        for h in workers.drain(..) {
            if h.is_finished() {
                let _ = h.join();
            } else {
                live.push(h);
            }
        }
        *workers = live;
    }
}

fn serve_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    if frame::set_deadline(&stream, Some(shared.config.idle_poll)).is_err() {
        return;
    }
    // The write half is shared with pipelined request tasks, which reply
    // out of order under this lock once the connection negotiates v2. On
    // a v1 connection only this thread ever touches it.
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    // Set when a pipelined task hits an unrecoverable error (corrupt
    // request, reply write failure) from outside this thread; the frame
    // loop checks it every poll tick and drops the connection.
    let failed = Arc::new(AtomicBool::new(false));
    let mut version = WIRE_VERSION;
    // Pipelined requests admitted but not yet known-started, oldest first.
    let mut inflight: Vec<exec::TaskHandle> = Vec::new();
    // The idle_poll deadline doubles as the shutdown-check tick, so it can
    // fire mid-frame when a client's frame arrives in chunks spaced wider
    // than the poll interval (large payloads, congestion, injected
    // latency). The FrameReader keeps partial progress across those ticks;
    // a one-shot read would desync the stream and drop the client.
    let mut reader = frame::FrameReader::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) || failed.load(Ordering::SeqCst) {
            drain_inflight(&mut inflight);
            return;
        }
        let (kind, corr, payload) =
            match reader.read_frame_corr(&mut stream, shared.config.max_frame) {
                Ok(f) => f,
                Err(WireError::Timeout) => {
                    // Poll tick: the connection is idle on the read side, so
                    // help the executor along — run the oldest unstarted
                    // pipelined request inline and forget handles whose job
                    // a worker has already claimed.
                    if let Some(h) = inflight.first() {
                        h.run_now();
                    }
                    inflight.retain(|h| !h.started());
                    continue; // progress kept
                }
                Err(WireError::Corrupt(_)) | Err(WireError::TooLarge { .. }) => {
                    shared.corrupt.fetch_add(1, Ordering::Relaxed);
                    drain_inflight(&mut inflight);
                    return; // protocol violation: drop the connection
                }
                Err(_) => {
                    drain_inflight(&mut inflight);
                    return; // closed / reset / short read
                }
            };
        let outcome = match kind {
            kind::HELLO => match handle_hello(&writer, shared, &payload) {
                Ok(chosen) => {
                    version = chosen;
                    if version >= WIRE_VERSION_PIPELINED {
                        // Safe: read_frame_corr returned a whole frame, so
                        // the reader sits at a frame boundary.
                        reader.set_version(version);
                    }
                    Ok(())
                }
                Err(e) => Err(e),
            },
            kind::REQUEST if version >= WIRE_VERSION_PIPELINED => {
                submit_request(&writer, shared, &failed, &mut inflight, corr, payload);
                Ok(())
            }
            kind::REQUEST => handle_request(&writer, shared, &payload),
            _ => {
                shared.corrupt.fetch_add(1, Ordering::Relaxed);
                drain_inflight(&mut inflight);
                return;
            }
        };
        if outcome.is_err() {
            drain_inflight(&mut inflight);
            return;
        }
    }
}

/// Finish every admitted pipelined request this connection still owes a
/// reply for. Unclaimed jobs run inline here; claimed ones are already on
/// an executor worker and own everything they touch (`Arc`s of the shared
/// state and the write half), so they complete safely even after the
/// connection thread exits.
fn drain_inflight(inflight: &mut Vec<exec::TaskHandle>) {
    for h in inflight.drain(..) {
        h.run_now();
    }
}

/// Run one pipelined request as an executor task (inline when the pool has
/// no idle worker), bounding this connection's unstarted backlog by
/// `pipeline_depth`.
fn submit_request(
    writer: &Arc<Mutex<TcpStream>>,
    shared: &Arc<Shared>,
    failed: &Arc<AtomicBool>,
    inflight: &mut Vec<exec::TaskHandle>,
    corr: u64,
    payload: Vec<u8>,
) {
    inflight.retain(|h| !h.started());
    while inflight.len() >= shared.config.pipeline_depth.max(1) {
        // Over the depth cap: serve the oldest unstarted request on this
        // thread instead of queueing deeper.
        let h = inflight.remove(0);
        h.run_now();
        inflight.retain(|h| !h.started());
    }
    let job = {
        let writer = writer.clone();
        let shared = shared.clone();
        let failed = failed.clone();
        move || {
            if serve_one(&writer, &shared, Some(corr), &payload).is_err() {
                failed.store(true, Ordering::SeqCst);
                // Wake the connection thread out of its poll wait so the
                // failure is noticed within one tick even on an idle link.
                let _ = writer.lock().unwrap().shutdown(Shutdown::Both);
            }
        }
    };
    match exec::global().try_spawn(job) {
        Ok(handle) => inflight.push(handle),
        // No idle worker: the connection thread is the worker of last
        // resort, same guarantee the depth cap relies on.
        Err(job) => job(),
    }
}

/// Decode, dispatch, and answer one request. `corr` is `Some` on a v2
/// connection — the reply carries it in a v2 header — and `None` on v1,
/// where the reply keeps the legacy 6-byte header.
fn serve_one(
    writer: &Arc<Mutex<TcpStream>>,
    shared: &Shared,
    corr: Option<u64>,
    payload: &[u8],
) -> Result<(), WireError> {
    let req = match decode_request(payload) {
        Ok(r) => r,
        Err(_) => {
            shared.corrupt.fetch_add(1, Ordering::Relaxed);
            return Err(WireError::Corrupt("request".into()));
        }
    };
    let result = dispatch(&*shared.service, req);
    shared.requests.fetch_add(1, Ordering::Relaxed);
    let (in_flight, queued) = shared.service.admission_load();
    let load = LoadHeader {
        in_flight: in_flight.min(u32::MAX as usize) as u32,
        queued: queued.min(u32::MAX as usize) as u32,
        pressure: shared.service.shed_pressure_tier().min(u8::MAX as usize) as u8,
    };
    let reply = encode_reply(load, &result);
    let mut w = writer.lock().unwrap();
    match corr {
        Some(corr) => frame::write_frame_corr(&mut *w, kind::REPLY, corr, &reply),
        None => frame::write_frame(&mut *w, kind::REPLY, &reply),
    }
}

fn handle_hello(
    writer: &Arc<Mutex<TcpStream>>,
    shared: &Shared,
    payload: &[u8],
) -> Result<u32, WireError> {
    let client_max = match decode_hello(payload) {
        Ok(v) => v,
        Err(_) => {
            shared.corrupt.fetch_add(1, Ordering::Relaxed);
            return Err(WireError::Corrupt("hello".into()));
        }
    };
    if client_max < WIRE_VERSION {
        // A peer below our floor would misparse every frame we send;
        // disconnecting is the only safe answer.
        return Err(WireError::Corrupt(format!("version {client_max}")));
    }
    // Negotiate down to the newer peer's floor. The HELLO_OK echoes the
    // choice only when the client offered v2+ (a v1 client rejects
    // trailing bytes — see `encode_hello_ok`), and is always v1-framed:
    // the version switch takes effect on the *next* frame.
    let chosen = client_max.min(shared.config.max_version).max(WIRE_VERSION);
    let hello_ok = encode_hello_ok(
        &shared.service.shard_name(),
        shared.service.top_k(),
        shared.config.max_frame,
        chosen,
    );
    let mut w = writer.lock().unwrap();
    frame::write_frame(&mut *w, kind::HELLO_OK, &hello_ok)?;
    Ok(chosen)
}

fn handle_request(
    writer: &Arc<Mutex<TcpStream>>,
    shared: &Shared,
    payload: &[u8],
) -> Result<(), WireError> {
    serve_one(writer, shared, None, payload)
}

fn dispatch(
    service: &dyn ShardService,
    req: WireRequest,
) -> Result<WireReply, sapphire_server::ServerError> {
    match req {
        WireRequest::Complete {
            tenant,
            term,
            fetch,
        } => service
            .complete_top(&tenant, &term, fetch)
            .map(WireReply::Completion),
        WireRequest::Run {
            tenant,
            query,
            tier,
            budget,
        } => service
            .run_select_tiered(&tenant, &query, tier, budget)
            .map(|payload| WireReply::Run((*payload).clone())),
        WireRequest::Raw { tenant, query } => {
            service.execute_raw(&tenant, &query).map(WireReply::Raw)
        }
    }
}
