//! The synthetic dataset's ontology and its hand-anchored entities.
//!
//! The random generator produces bulk entities with DBpedia-like shape; this
//! module pins down (a) the class hierarchy and predicate vocabulary, and
//! (b) the *anchor entities* that the Appendix-B user-study questions ask
//! about (Ganges, JFK, Jack Kerouac, …), so every workload question has a
//! well-defined gold answer in the generated data.

/// `(class local name, parent local name)` pairs of the `dbo:` hierarchy.
/// Parents are in the `dbo:` namespace except the root `owl:Thing`.
pub const CLASS_HIERARCHY: &[(&str, &str)] = &[
    ("Agent", "Thing"),
    ("Person", "Agent"),
    ("Scientist", "Person"),
    ("Politician", "Person"),
    ("President", "Politician"),
    ("Actor", "Person"),
    ("Writer", "Person"),
    ("ChessPlayer", "Person"),
    ("MusicalArtist", "Person"),
    ("Organisation", "Agent"),
    ("University", "Organisation"),
    ("Company", "Organisation"),
    ("Publisher", "Organisation"),
    ("Place", "Thing"),
    ("City", "Place"),
    ("Country", "Place"),
    ("Lake", "Place"),
    ("River", "Place"),
    ("Bridge", "Place"),
    ("MilitaryBase", "Place"),
    ("Work", "Thing"),
    ("Book", "Work"),
    ("Film", "Work"),
    ("TelevisionShow", "Work"),
    ("Website", "Work"),
    ("Currency", "Thing"),
];

/// Predicate local names in the `dbo:` namespace used by the generator.
pub const PREDICATES: &[&str] = &[
    "name",
    "surname",
    "nickname",
    "birthDate",
    "deathDate",
    "birthPlace",
    "deathPlace",
    "spouse",
    "child",
    "parent",
    "almaMater",
    "affiliation",
    "vicePresident",
    "instrument",
    "office",
    "author",
    "publisher",
    "director",
    "starring",
    "writer",
    "numberOfPages",
    "budget",
    "population",
    "country",
    "capital",
    "timeZone",
    "currency",
    "designer",
    "creator",
    "depth",
    "industry",
    "state",
    "sourceCountry",
];

/// Hand-authored anchor triples: one cluster per Appendix-B question.
/// Types here are leaf types; the generator materializes superclasses.
pub const ANCHORS: &str = r#"
# --- Easy 1: Country in which the Ganges starts ---
res:Ganges a dbo:River ; dbo:name "Ganges"@en ; dbo:sourceCountry res:India .
res:India a dbo:Country ; dbo:name "India"@en .

# --- Easy 2: John F. Kennedy's vice president ---
res:John_F._Kennedy a dbo:President ; dbo:name "John F. Kennedy"@en ; dbo:surname "Kennedy"@en ;
    dbo:office "President"@en ; dbo:vicePresident res:Lyndon_B._Johnson ;
    dbo:birthDate "1917-05-29"^^xsd:date ; dbo:spouse res:Jacqueline_Kennedy .
res:Lyndon_B._Johnson a dbo:President ; dbo:name "Lyndon B. Johnson"@en ; dbo:surname "Johnson"@en ;
    dbo:office "President"@en .
res:Jacqueline_Kennedy a dbo:Person ; dbo:name "Jacqueline Kennedy"@en ; dbo:surname "Kennedy"@en .
res:Robert_F._Kennedy a dbo:Politician ; dbo:name "Robert F. Kennedy"@en ; dbo:surname "Kennedy"@en ;
    dbo:child res:Kathleen_Kennedy .
res:Kathleen_Kennedy a dbo:Politician ; dbo:name "Kathleen Kennedy"@en ; dbo:surname "Kennedy"@en ;
    dbo:spouse res:David_Townsend .
res:David_Townsend a dbo:Person ; dbo:name "David Townsend"@en ; dbo:surname "Townsend"@en .

# --- Easy 3: Time zone of Salt Lake City ---
res:Salt_Lake_City a dbo:City ; dbo:name "Salt Lake City"@en ; dbo:timeZone "UTC-07:00"@en ;
    dbo:population 200133 .

# --- Easy 4: Tom Hanks's wife ---
res:Tom_Hanks a dbo:Actor ; dbo:name "Tom Hanks"@en ; dbo:surname "Hanks"@en ;
    dbo:spouse res:Rita_Wilson .
res:Rita_Wilson a dbo:Actor ; dbo:name "Rita Wilson"@en ; dbo:surname "Wilson"@en .

# --- Easy 5: Children of Margaret Thatcher ---
res:Margaret_Thatcher a dbo:Politician ; dbo:name "Margaret Thatcher"@en ; dbo:surname "Thatcher"@en ;
    dbo:child res:Mark_Thatcher , res:Carol_Thatcher .
res:Mark_Thatcher a dbo:Person ; dbo:name "Mark Thatcher"@en .
res:Carol_Thatcher a dbo:Person ; dbo:name "Carol Thatcher"@en .

# --- Easy 6: Currency of the Czech Republic ---
res:Czech_Republic a dbo:Country ; dbo:name "Czech Republic"@en ; dbo:currency res:Czech_Koruna .
res:Czech_Koruna a dbo:Currency ; dbo:name "Czech koruna"@en .

# --- Easy 7: Designer of the Brooklyn Bridge ---
res:Brooklyn_Bridge a dbo:Bridge ; dbo:name "Brooklyn Bridge"@en ; dbo:designer res:John_A._Roebling .
res:John_A._Roebling a dbo:Person ; dbo:name "John A. Roebling"@en .

# --- Easy 8: Wife of U.S. president Abraham Lincoln ---
res:Abraham_Lincoln a dbo:President ; dbo:name "Abraham Lincoln"@en ; dbo:surname "Lincoln"@en ;
    dbo:office "President"@en ; dbo:spouse res:Mary_Todd_Lincoln .
res:Mary_Todd_Lincoln a dbo:Person ; dbo:name "Mary Todd Lincoln"@en .

# --- Easy 9: Creator of Wikipedia ---
res:Wikipedia a dbo:Website ; dbo:name "Wikipedia"@en ; dbo:creator res:Jimmy_Wales .
res:Jimmy_Wales a dbo:Person ; dbo:name "Jimmy Wales"@en .

# --- Easy 10: Depth of lake Placid ---
res:Lake_Placid a dbo:Lake ; dbo:name "Lake Placid"@en ; dbo:depth 50 .

# --- Medium 1: Instruments played by Cat Stevens ---
res:Cat_Stevens a dbo:MusicalArtist ; dbo:name "Cat Stevens"@en ;
    dbo:instrument res:Guitar , res:Piano .
res:Guitar dbo:name "Guitar"@en .
res:Piano dbo:name "Piano"@en .

# --- Medium 2: Parents of the wife of Juan Carlos I ---
res:Juan_Carlos_I a dbo:Person ; dbo:name "Juan Carlos I"@en ; dbo:spouse res:Queen_Sofia .
res:Queen_Sofia a dbo:Person ; dbo:name "Queen Sofia"@en ;
    dbo:parent res:Paul_of_Greece , res:Frederica_of_Hanover .
res:Paul_of_Greece a dbo:Person ; dbo:name "Paul of Greece"@en .
res:Frederica_of_Hanover a dbo:Person ; dbo:name "Frederica of Hanover"@en .

# --- Medium 3: U.S. state in which Fort Knox is located ---
res:Fort_Knox a dbo:MilitaryBase ; dbo:name "Fort Knox"@en ; dbo:state res:Kentucky .
res:Kentucky a dbo:Place ; dbo:name "Kentucky"@en .

# --- Medium 4: Person who is called Frank The Tank ---
res:Frank_Ricard a dbo:Person ; dbo:name "Frank Ricard"@en ; dbo:nickname "Frank The Tank"@en .

# --- Medium 5: Birthdays of all actors of the television show Charmed ---
res:Charmed a dbo:TelevisionShow ; dbo:name "Charmed"@en ;
    dbo:starring res:Alyssa_Milano , res:Holly_Marie_Combs , res:Shannen_Doherty .
res:Alyssa_Milano a dbo:Actor ; dbo:name "Alyssa Milano"@en ; dbo:birthDate "1972-12-19"^^xsd:date .
res:Holly_Marie_Combs a dbo:Actor ; dbo:name "Holly Marie Combs"@en ; dbo:birthDate "1973-12-03"^^xsd:date .
res:Shannen_Doherty a dbo:Actor ; dbo:name "Shannen Doherty"@en ; dbo:birthDate "1971-04-12"^^xsd:date .

# --- Medium 6: Country in which the Limerick Lake is located ---
res:Limerick_Lake a dbo:Lake ; dbo:name "Limerick Lake"@en ; dbo:country res:Canada .
res:Canada a dbo:Country ; dbo:name "Canada"@en ; dbo:capital res:Ottawa .
res:Ottawa a dbo:City ; dbo:name "Ottawa"@en ; dbo:population 934243 ; dbo:country res:Canada .

# --- Medium 8 / Difficult 5: Australia, capital, populous cities ---
res:Australia a dbo:Country ; dbo:name "Australia"@en ; dbo:capital res:Canberra .
res:Canberra a dbo:City ; dbo:name "Canberra"@en ; dbo:population 430000 ; dbo:country res:Australia .
res:Sydney a dbo:City ; dbo:name "Sydney"@en ; dbo:population 5300000 ; dbo:country res:Australia .
res:Melbourne a dbo:City ; dbo:name "Melbourne"@en ; dbo:population 5000000 ; dbo:country res:Australia .

# --- Difficult 1: Chess players who died where they were born ---
res:Miguel_Castillo a dbo:ChessPlayer ; dbo:name "Miguel Castillo"@en ;
    dbo:birthPlace res:Rome_City ; dbo:deathPlace res:Rome_City .
res:Viktor_Olsen a dbo:ChessPlayer ; dbo:name "Viktor Olsen"@en ;
    dbo:birthPlace res:Vienna_City ; dbo:deathPlace res:Vienna_City .
res:Pavel_Dvorak a dbo:ChessPlayer ; dbo:name "Pavel Dvorak"@en ;
    dbo:birthPlace res:Rome_City ; dbo:deathPlace res:Vienna_City .
res:Rome_City a dbo:City ; dbo:name "Rome"@en .
res:Vienna_City a dbo:City ; dbo:name "Vienna"@en .

# --- Difficult 2: Books by William Goldman with more than 300 pages ---
res:William_Goldman a dbo:Writer ; dbo:name "William Goldman"@en ; dbo:surname "Goldman"@en .
res:The_Princess_Bride a dbo:Book ; dbo:name "The Princess Bride"@en ;
    dbo:author res:William_Goldman ; dbo:numberOfPages 493 .
res:Marathon_Man a dbo:Book ; dbo:name "Marathon Man"@en ;
    dbo:author res:William_Goldman ; dbo:numberOfPages 309 .
res:Heat_Book a dbo:Book ; dbo:name "Heat"@en ;
    dbo:author res:William_Goldman ; dbo:numberOfPages 260 .

# --- Difficult 3 / Figure 6: Books by Jack Kerouac published by Viking Press ---
res:Jack_Kerouac a dbo:Writer ; dbo:name "Jack Kerouac"@en ; dbo:surname "Kerouac"@en .
res:Viking_Press a dbo:Publisher ; dbo:name "Viking Press"@en ; rdfs:label "Viking Press"@en .
res:Grove_Press a dbo:Publisher ; dbo:name "Grove Press"@en ; rdfs:label "Grove Press"@en .
res:On_The_Road a dbo:Book ; dbo:name "On The Road"@en ;
    dbo:author res:Jack_Kerouac ; dbo:publisher res:Viking_Press .
res:Door_Wide_Open a dbo:Book ; dbo:name "Door Wide Open"@en ;
    dbo:author res:Jack_Kerouac ; dbo:publisher res:Viking_Press .
res:Doctor_Sax a dbo:Book ; dbo:name "Doctor Sax"@en ;
    dbo:author res:Jack_Kerouac ; dbo:publisher res:Grove_Press .
res:Big_Sur_Film a dbo:Film ; dbo:name "Big Sur"@en ; dbo:writer res:Jack_Kerouac .

# --- Difficult 4: Films directed by Steven Spielberg with budget >= $80M ---
res:Steven_Spielberg a dbo:Person ; dbo:name "Steven Spielberg"@en ; dbo:surname "Spielberg"@en .
res:Jurassic_Dawn a dbo:Film ; dbo:name "Jurassic Dawn"@en ;
    dbo:director res:Steven_Spielberg ; dbo:budget 1.5E8 .
res:Ocean_Rescue a dbo:Film ; dbo:name "Ocean Rescue"@en ;
    dbo:director res:Steven_Spielberg ; dbo:budget 8.0E7 .
res:Quiet_Fields a dbo:Film ; dbo:name "Quiet Fields"@en ;
    dbo:director res:Steven_Spielberg ; dbo:budget 3.0E7 .

# --- Difficult 6: Films starring Clint Eastwood directed by himself ---
res:Clint_Eastwood a dbo:Actor ; dbo:name "Clint Eastwood"@en ; dbo:surname "Eastwood"@en .
res:Iron_Ridge a dbo:Film ; dbo:name "Iron Ridge"@en ;
    dbo:starring res:Clint_Eastwood ; dbo:director res:Clint_Eastwood .
res:Pale_Creek a dbo:Film ; dbo:name "Pale Creek"@en ;
    dbo:starring res:Clint_Eastwood ; dbo:director res:Clint_Eastwood .
res:Borrowed_Time a dbo:Film ; dbo:name "Borrowed Time"@en ;
    dbo:starring res:Clint_Eastwood ; dbo:director res:Steven_Spielberg .

# --- Difficult 7: Presidents born in 1945 ---
res:Aldo_Moreno a dbo:President ; dbo:name "Aldo Moreno"@en ; dbo:office "President"@en ;
    dbo:birthDate "1945-03-14"^^xsd:date .
res:Nils_Bergstrom a dbo:President ; dbo:name "Nils Bergstrom"@en ; dbo:office "President"@en ;
    dbo:birthDate "1945-11-02"^^xsd:date .
res:Omar_Haddad a dbo:President ; dbo:name "Omar Haddad"@en ; dbo:office "President"@en ;
    dbo:birthDate "1950-06-21"^^xsd:date .

# --- Difficult 8: Companies in both aerospace and medicine ---
res:Helix_Dynamics a dbo:Company ; dbo:name "Helix Dynamics"@en ;
    dbo:industry "Aerospace"@en , "Medicine"@en .
res:Novacore_Labs a dbo:Company ; dbo:name "Novacore Labs"@en ;
    dbo:industry "Aerospace"@en , "Medicine"@en .
res:Skyward_Industries a dbo:Company ; dbo:name "Skyward Industries"@en ;
    dbo:industry "Aerospace"@en .
res:Vitalis_Pharma a dbo:Company ; dbo:name "Vitalis Pharma"@en ;
    dbo:industry "Medicine"@en .

# --- Difficult 9: Most populous city in Canada ---
res:Toronto a dbo:City ; dbo:name "Toronto"@en ; dbo:population 2930000 ; dbo:country res:Canada .
res:Montreal a dbo:City ; dbo:name "Montreal"@en ; dbo:population 1780000 ; dbo:country res:Canada .
"#;

/// Expand a `dbo:` local name to a full IRI.
pub fn dbo(local: &str) -> String {
    format!("http://dbpedia.org/ontology/{local}")
}

/// Expand a `res:` local name to a full IRI.
pub fn res(local: &str) -> String {
    format!("http://dbpedia.org/resource/{local}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_parse_as_turtle() {
        let g = sapphire_rdf::turtle::parse(ANCHORS).expect("anchor turtle parses");
        assert!(g.len() > 150, "got {} triples", g.len());
    }

    #[test]
    fn hierarchy_covers_all_anchor_types() {
        let g = sapphire_rdf::turtle::parse(ANCHORS).unwrap();
        let type_iri = sapphire_rdf::Term::iri(sapphire_rdf::vocab::rdf::TYPE);
        let tid = g.term_id(&type_iri).unwrap();
        let classes: std::collections::HashSet<String> =
            CLASS_HIERARCHY.iter().map(|(c, _)| dbo(c)).collect();
        for t in g.matching(None, Some(tid), None) {
            let class = g.term(t[2]).lexical().to_string();
            assert!(
                classes.contains(&class),
                "anchor type {class} missing from hierarchy"
            );
        }
    }

    #[test]
    fn predicate_list_covers_anchor_predicates() {
        let g = sapphire_rdf::turtle::parse(ANCHORS).unwrap();
        let preds: std::collections::HashSet<String> = PREDICATES.iter().map(|p| dbo(p)).collect();
        for (_, p, _) in g.iter_terms() {
            let iri = p.lexical();
            if iri.starts_with("http://dbpedia.org/ontology/") {
                assert!(
                    preds.contains(iri),
                    "anchor predicate {iri} not in PREDICATES"
                );
            }
        }
    }
}
