//! Quickstart: register an endpoint, let Sapphire initialize, then compose a
//! query interactively — auto-complete, run, and accept a suggestion.
//!
//! Run with: `cargo run -p sapphire-bench --example quickstart`

use std::sync::Arc;

use sapphire_core::prelude::*;
use sapphire_core::InitMode;
use sapphire_datagen::{generate, DatasetConfig};

fn main() {
    // 1. A SPARQL endpoint. In production this is a remote server; here it is
    //    the simulated DBpedia-like endpoint (see DESIGN.md).
    println!("generating a DBpedia-like dataset…");
    let graph = generate(DatasetConfig::tiny(42));
    println!("  {} triples", graph.len());
    let endpoint: Arc<dyn Endpoint> = Arc::new(LocalEndpoint::new(
        "dbpedia",
        graph,
        EndpointLimits::public_endpoint(500_000),
    ));

    // 2. Register it with Sapphire. This runs the §5 initialization: cache
    //    predicates, walk the class hierarchy for literals, build the index.
    println!("initializing Sapphire (caching predicates and literals)…");
    let pum = PredictiveUserModel::initialize(
        vec![endpoint],
        Lexicon::dbpedia_default(),
        SapphireConfig::default(),
        InitMode::Federated,
    )
    .expect("initialization");
    let (name, stats) = &pum.init_stats()[0];
    println!(
        "  endpoint {name:?}: {} queries issued, {} timeouts, {} literals cached",
        stats.total_queries(),
        stats.timeouts,
        stats.literals_cached
    );

    // 3. Type a term and watch the QCM complete it.
    let mut session = Session::new(&pum);
    for typed in ["Ke", "Kenn"] {
        let completions = session.complete(typed);
        let texts: Vec<&str> = completions
            .suggestions
            .iter()
            .take(5)
            .map(|s| s.text.as_str())
            .collect();
        println!("typing {typed:?} → completions {texts:?}");
    }

    // 4. Build the query from keywords: who has surname "Kennedy"?
    session.set_row(0, TripleInput::new("?person", "surname", "Kennedy"));
    let result = session.run().expect("query runs");
    println!("\nanswers ({} rows):", result.answers.total_rows());
    print!("{}", result.answers.view().to_table());

    // 5. The QSM always offers refinements.
    for alt in result.suggestions.alternatives.iter().take(3) {
        println!("suggestion: {}", alt.describe());
    }
}
