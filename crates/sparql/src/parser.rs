//! Recursive-descent parser for the SPARQL subset.

use std::collections::HashMap;
use std::fmt;

use sapphire_rdf::{vocab, Literal, Term};

use crate::ast::*;
use crate::lexer::{tokenize, LexError, Token};

/// A parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.to_string(),
        }
    }
}

/// Parse a query string into a [`Query`].
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        prefixes: vocab::standard_prefixes()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
        agg_counter: 0,
    };
    let q = p.query()?;
    if !p.at_end() {
        return Err(p.err(format!("trailing tokens starting at {}", p.peek_desc())));
    }
    Ok(q)
}

/// Parse a SELECT query, rejecting ASK.
pub fn parse_select(input: &str) -> Result<SelectQuery, ParseError> {
    match parse_query(input)? {
        Query::Select(s) => Ok(s),
        Query::Ask(_) => Err(ParseError {
            message: "expected SELECT, found ASK".into(),
        }),
    }
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: HashMap<String, String>,
    agg_counter: usize,
}

impl Parser {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_desc(&self) -> String {
        match self.peek() {
            Some(t) => format!("{t}"),
            None => "<eof>".to_string(),
        }
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {}", self.peek_desc())))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {}", self.peek_desc())))
        }
    }

    fn query(&mut self) -> Result<Query, ParseError> {
        while self.eat_kw("PREFIX") {
            self.prefix_decl()?;
        }
        if self.eat_kw("SELECT") {
            self.select_rest().map(Query::Select)
        } else if self.eat_kw("ASK") {
            self.expect(&Token::LBrace)?;
            let pattern = self.graph_pattern()?;
            self.expect(&Token::RBrace)?;
            Ok(Query::Ask(pattern))
        } else {
            Err(self.err(format!(
                "expected SELECT or ASK, found {}",
                self.peek_desc()
            )))
        }
    }

    fn prefix_decl(&mut self) -> Result<(), ParseError> {
        // The lexer produces a PName with empty local for `dbo:`.
        match self.bump() {
            Some(Token::PName(prefix, local)) if local.is_empty() => match self.bump() {
                Some(Token::Iri(iri)) => {
                    self.prefixes.insert(prefix, iri);
                    Ok(())
                }
                other => Err(self.err(format!("expected IRI after PREFIX, found {other:?}"))),
            },
            other => Err(self.err(format!("expected prefix name, found {other:?}"))),
        }
    }

    fn select_rest(&mut self) -> Result<SelectQuery, ParseError> {
        let distinct = self.eat_kw("DISTINCT");
        let projection = self.projection()?;
        // WHERE is optional in SPARQL.
        self.eat_kw("WHERE");
        self.expect(&Token::LBrace)?;
        let pattern = self.graph_pattern()?;
        self.expect(&Token::RBrace)?;

        let mut group_by = Vec::new();
        let mut order_by = Vec::new();
        let mut limit = None;
        let mut offset = None;
        loop {
            if self.eat_kw("GROUP") {
                self.expect_kw("BY")?;
                while let Some(Token::Var(_)) = self.peek() {
                    if let Some(Token::Var(v)) = self.bump() {
                        group_by.push(v);
                    }
                }
                if group_by.is_empty() {
                    return Err(self.err("GROUP BY requires at least one variable"));
                }
            } else if self.eat_kw("ORDER") {
                self.expect_kw("BY")?;
                loop {
                    if self.eat_kw("DESC") {
                        self.expect(&Token::LParen)?;
                        let expr = self.expr()?;
                        self.expect(&Token::RParen)?;
                        order_by.push(OrderKey {
                            expr,
                            descending: true,
                        });
                    } else if self.eat_kw("ASC") {
                        self.expect(&Token::LParen)?;
                        let expr = self.expr()?;
                        self.expect(&Token::RParen)?;
                        order_by.push(OrderKey {
                            expr,
                            descending: false,
                        });
                    } else if matches!(self.peek(), Some(Token::Var(_))) {
                        let Some(Token::Var(v)) = self.bump() else {
                            unreachable!()
                        };
                        order_by.push(OrderKey {
                            expr: Expr::Var(v),
                            descending: false,
                        });
                    } else {
                        break;
                    }
                }
                if order_by.is_empty() {
                    return Err(self.err("ORDER BY requires at least one key"));
                }
            } else if self.eat_kw("LIMIT") {
                limit = Some(self.number_usize()?);
            } else if self.eat_kw("OFFSET") {
                offset = Some(self.number_usize()?);
            } else {
                break;
            }
        }

        Ok(SelectQuery {
            distinct,
            projection,
            pattern,
            group_by,
            order_by,
            limit,
            offset,
        })
    }

    fn number_usize(&mut self) -> Result<usize, ParseError> {
        match self.bump() {
            Some(Token::Number(n)) => n
                .parse::<usize>()
                .map_err(|_| self.err(format!("expected non-negative integer, found {n}"))),
            other => Err(self.err(format!("expected number, found {other:?}"))),
        }
    }

    fn projection(&mut self) -> Result<Projection, ParseError> {
        if self.eat(&Token::Star) {
            return Ok(Projection::Star);
        }
        let mut items = Vec::new();
        loop {
            match self.peek() {
                Some(Token::Var(_)) => {
                    if let Some(Token::Var(v)) = self.bump() {
                        items.push(SelectItem::Var(v));
                    }
                }
                Some(Token::LParen) => {
                    // (AGG(...) AS ?alias)
                    self.bump();
                    let agg = self.aggregate()?;
                    self.expect_kw("AS")?;
                    let alias = match self.bump() {
                        Some(Token::Var(v)) => v,
                        other => {
                            return Err(
                                self.err(format!("expected variable after AS, found {other:?}"))
                            )
                        }
                    };
                    self.expect(&Token::RParen)?;
                    items.push(SelectItem::Agg { agg, alias });
                }
                Some(Token::Keyword(k))
                    if matches!(k.as_str(), "COUNT" | "SUM" | "MIN" | "MAX" | "AVG") =>
                {
                    // Bare aggregate without alias, as in the paper's
                    // `SELECT DISTINCT count (?uri)`.
                    let agg = self.aggregate()?;
                    self.agg_counter += 1;
                    let alias = format!("agg{}", self.agg_counter);
                    items.push(SelectItem::Agg { agg, alias });
                }
                _ => break,
            }
        }
        if items.is_empty() {
            return Err(self.err(format!("expected projection, found {}", self.peek_desc())));
        }
        Ok(Projection::Items(items))
    }

    fn aggregate(&mut self) -> Result<Aggregate, ParseError> {
        let kw = match self.bump() {
            Some(Token::Keyword(k)) => k,
            other => return Err(self.err(format!("expected aggregate, found {other:?}"))),
        };
        self.expect(&Token::LParen)?;
        let agg = match kw.as_str() {
            "COUNT" => {
                let distinct = self.eat_kw("DISTINCT");
                if self.eat(&Token::Star) {
                    Aggregate::Count {
                        distinct,
                        var: None,
                    }
                } else {
                    let v = self.var()?;
                    Aggregate::Count {
                        distinct,
                        var: Some(v),
                    }
                }
            }
            "SUM" => Aggregate::Sum(self.var()?),
            "MIN" => Aggregate::Min(self.var()?),
            "MAX" => Aggregate::Max(self.var()?),
            "AVG" => Aggregate::Avg(self.var()?),
            other => return Err(self.err(format!("unknown aggregate {other}"))),
        };
        self.expect(&Token::RParen)?;
        Ok(agg)
    }

    fn var(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            Some(Token::Var(v)) => Ok(v),
            other => Err(self.err(format!("expected variable, found {other:?}"))),
        }
    }

    fn graph_pattern(&mut self) -> Result<GraphPattern, ParseError> {
        let mut gp = GraphPattern::default();
        loop {
            match self.peek() {
                None | Some(Token::RBrace) => break,
                Some(Token::Keyword(k)) if k == "FILTER" => {
                    self.bump();
                    self.expect(&Token::LParen)?;
                    let e = self.expr()?;
                    self.expect(&Token::RParen)?;
                    gp.filters.push(e);
                    // Optional '.' after a filter.
                    self.eat(&Token::Dot);
                }
                _ => {
                    self.triple_block(&mut gp)?;
                }
            }
        }
        Ok(gp)
    }

    fn triple_block(&mut self, gp: &mut GraphPattern) -> Result<(), ParseError> {
        let subject = self.term_pattern()?;
        loop {
            let predicate = self.predicate_pattern()?;
            loop {
                let object = self.term_pattern()?;
                gp.triples.push(TriplePattern::new(
                    subject.clone(),
                    predicate.clone(),
                    object,
                ));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            if !self.eat(&Token::Semicolon) {
                break;
            }
            if matches!(self.peek(), Some(Token::Dot) | Some(Token::RBrace) | None) {
                break;
            }
        }
        // '.' between triple blocks is optional before '}'.
        self.eat(&Token::Dot);
        Ok(())
    }

    fn predicate_pattern(&mut self) -> Result<TermPattern, ParseError> {
        if self.eat(&Token::A) {
            return Ok(TermPattern::iri(vocab::rdf::TYPE));
        }
        let t = self.term_pattern()?;
        match &t {
            TermPattern::Var(_) => Ok(t),
            TermPattern::Term(Term::Iri(_)) => Ok(t),
            _ => Err(self.err("predicate must be an IRI or variable")),
        }
    }

    fn expand_pname(&self, prefix: &str, local: &str) -> Result<String, ParseError> {
        self.prefixes
            .get(prefix)
            .map(|ns| format!("{ns}{local}"))
            .ok_or_else(|| self.err(format!("unknown prefix {prefix:?}")))
    }

    fn term_pattern(&mut self) -> Result<TermPattern, ParseError> {
        match self.bump() {
            Some(Token::Var(v)) => Ok(TermPattern::Var(v)),
            Some(Token::Iri(iri)) => Ok(TermPattern::Term(Term::Iri(iri))),
            Some(Token::PName(p, l)) => {
                Ok(TermPattern::Term(Term::Iri(self.expand_pname(&p, &l)?)))
            }
            Some(Token::Str(s)) => Ok(TermPattern::Term(Term::Literal(self.literal_suffix(s)?))),
            Some(Token::Number(n)) => Ok(TermPattern::Term(Term::Literal(number_literal(&n)))),
            Some(Token::Keyword(k)) if k == "TRUE" || k == "FALSE" => Ok(TermPattern::Term(
                Term::Literal(Literal::typed(k.to_ascii_lowercase(), vocab::xsd::BOOLEAN)),
            )),
            other => Err(self.err(format!("expected term, found {other:?}"))),
        }
    }

    fn literal_suffix(&mut self, value: String) -> Result<Literal, ParseError> {
        if let Some(Token::LangTag(_)) = self.peek() {
            let Some(Token::LangTag(lang)) = self.bump() else {
                unreachable!()
            };
            return Ok(Literal::lang_tagged(value, lang));
        }
        if self.eat(&Token::DtMarker) {
            let dt = match self.bump() {
                Some(Token::Iri(iri)) => iri,
                Some(Token::PName(p, l)) => self.expand_pname(&p, &l)?,
                other => return Err(self.err(format!("expected datatype IRI, found {other:?}"))),
            };
            return Ok(Literal::typed(value, dt));
        }
        Ok(Literal::simple(value))
    }

    // ---- expressions (precedence: || < && < unary ! < comparison < primary) ----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat(&Token::OrOr) {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.cmp_expr()?;
        while self.eat(&Token::AndAnd) {
            let right = self.cmp_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let left = self.unary_expr()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(CmpOp::Eq),
            Some(Token::Ne) => Some(CmpOp::Ne),
            Some(Token::Lt) => Some(CmpOp::Lt),
            Some(Token::Le) => Some(CmpOp::Le),
            Some(Token::Gt) => Some(CmpOp::Gt),
            Some(Token::Ge) => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.unary_expr()?;
            return Ok(Expr::Cmp(op, Box::new(left), Box::new(right)));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Token::Bang) {
            let inner = self.unary_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Token::LParen) => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Var(_)) => {
                let Some(Token::Var(v)) = self.bump() else {
                    unreachable!()
                };
                Ok(Expr::Var(v))
            }
            Some(Token::Iri(_)) => {
                let Some(Token::Iri(iri)) = self.bump() else {
                    unreachable!()
                };
                Ok(Expr::Const(Term::Iri(iri)))
            }
            Some(Token::PName(_, _)) => {
                let Some(Token::PName(p, l)) = self.bump() else {
                    unreachable!()
                };
                Ok(Expr::Const(Term::Iri(self.expand_pname(&p, &l)?)))
            }
            Some(Token::Str(_)) => {
                let Some(Token::Str(s)) = self.bump() else {
                    unreachable!()
                };
                Ok(Expr::Const(Term::Literal(self.literal_suffix(s)?)))
            }
            Some(Token::Number(_)) => {
                let Some(Token::Number(n)) = self.bump() else {
                    unreachable!()
                };
                Ok(Expr::Const(Term::Literal(number_literal(&n))))
            }
            Some(Token::Keyword(k)) => self.function_expr(&k),
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }

    fn function_expr(&mut self, kw: &str) -> Result<Expr, ParseError> {
        match kw {
            "TRUE" | "FALSE" => {
                self.bump();
                Ok(Expr::Const(Term::Literal(Literal::typed(
                    kw.to_ascii_lowercase(),
                    vocab::xsd::BOOLEAN,
                ))))
            }
            "ISLITERAL" => self.unary_fn(Expr::IsLiteral),
            "ISIRI" | "ISURI" => self.unary_fn(Expr::IsIri),
            "LANG" => self.unary_fn(Expr::Lang),
            "STR" => self.unary_fn(Expr::Str),
            "STRLEN" => self.unary_fn(Expr::StrLen),
            "LCASE" => self.unary_fn(Expr::LCase),
            "UCASE" => self.unary_fn(Expr::UCase),
            "YEAR" => self.unary_fn(Expr::Year),
            "BOUND" => {
                self.bump();
                self.expect(&Token::LParen)?;
                let v = self.var()?;
                self.expect(&Token::RParen)?;
                Ok(Expr::Bound(v))
            }
            "CONTAINS" => self.binary_fn(Expr::Contains),
            "STRSTARTS" => self.binary_fn(Expr::StrStarts),
            "REGEX" => {
                self.bump();
                self.expect(&Token::LParen)?;
                let target = self.expr()?;
                self.expect(&Token::Comma)?;
                let pattern = match self.bump() {
                    Some(Token::Str(s)) => s,
                    other => {
                        return Err(
                            self.err(format!("REGEX pattern must be a string, found {other:?}"))
                        )
                    }
                };
                let mut case_insensitive = false;
                if self.eat(&Token::Comma) {
                    match self.bump() {
                        Some(Token::Str(flags)) => case_insensitive = flags.contains('i'),
                        other => {
                            return Err(
                                self.err(format!("REGEX flags must be a string, found {other:?}"))
                            )
                        }
                    }
                }
                self.expect(&Token::RParen)?;
                Ok(Expr::Regex(Box::new(target), pattern, case_insensitive))
            }
            other => Err(self.err(format!("unexpected keyword {other} in expression"))),
        }
    }

    fn unary_fn(&mut self, build: fn(Box<Expr>) -> Expr) -> Result<Expr, ParseError> {
        self.bump();
        self.expect(&Token::LParen)?;
        let e = self.expr()?;
        self.expect(&Token::RParen)?;
        Ok(build(Box::new(e)))
    }

    fn binary_fn(&mut self, build: fn(Box<Expr>, Box<Expr>) -> Expr) -> Result<Expr, ParseError> {
        self.bump();
        self.expect(&Token::LParen)?;
        let a = self.expr()?;
        self.expect(&Token::Comma)?;
        let b = self.expr()?;
        self.expect(&Token::RParen)?;
        Ok(build(Box::new(a), Box::new(b)))
    }
}

fn number_literal(lexical: &str) -> Literal {
    let dt = if lexical.contains(['e', 'E']) {
        vocab::xsd::DOUBLE
    } else if lexical.contains('.') {
        vocab::xsd::DECIMAL
    } else {
        vocab::xsd::INTEGER
    };
    Literal::typed(lexical.to_string(), dt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_intro_query() {
        // The Ivy League query from the paper's introduction.
        let q = parse_select(
            r#"
PREFIX res: <http://dbpedia.org/resource/>
PREFIX dbo: <http://dbpedia.org/ontology/>
SELECT DISTINCT count (?uri) WHERE {
  ?uri rdf:type dbo:Scientist.
  ?uri dbo:almaMater ?university.
  ?university dbo:affiliation res:Ivy_League.
}
"#,
        )
        .unwrap();
        assert!(q.distinct);
        assert_eq!(q.pattern.triples.len(), 3);
        assert!(q.has_aggregates());
        let Projection::Items(items) = &q.projection else {
            panic!()
        };
        assert!(matches!(
            &items[0],
            SelectItem::Agg { agg: Aggregate::Count { distinct: false, var: Some(v) }, .. } if v == "uri"
        ));
    }

    #[test]
    fn parse_q1_frequency_query() {
        let q = parse_select(
            "SELECT DISTINCT ?p (COUNT(*) AS ?frequency) WHERE { ?s ?p ?o } GROUP BY ?p ORDER BY DESC(?frequency)",
        )
        .unwrap();
        assert_eq!(q.group_by, vec!["p"]);
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].descending);
        let Projection::Items(items) = &q.projection else {
            panic!()
        };
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].name(), "frequency");
    }

    #[test]
    fn parse_q5_filter_query() {
        let q = parse_select(
            r#"SELECT DISTINCT ?o WHERE {
                 ?s <http://x/p> ?o.
                 FILTER (isliteral(?o) && lang(?o) = 'en' && strlen(str(?o)) < 80)
               } LIMIT 1"#,
        )
        .unwrap();
        assert_eq!(q.limit, Some(1));
        assert_eq!(q.pattern.filters.len(), 1);
        // ((isliteral && lang=en) && strlen<80) — left-associative.
        let Expr::And(left, _right) = &q.pattern.filters[0] else {
            panic!()
        };
        assert!(matches!(**left, Expr::And(_, _)));
    }

    #[test]
    fn parse_semicolon_and_comma_groups() {
        let q = parse_select(
            r#"SELECT * WHERE { ?s a dbo:Person ; dbo:name "Kennedy"@en , "JFK"@en . }"#,
        )
        .unwrap();
        assert_eq!(q.pattern.triples.len(), 3);
        assert_eq!(
            q.pattern.triples[0].predicate,
            TermPattern::iri(vocab::rdf::TYPE)
        );
        assert_eq!(q.pattern.triples[1].subject, q.pattern.triples[2].subject);
    }

    #[test]
    fn parse_ask() {
        let q = parse_query("ASK { ?s ?p ?o }").unwrap();
        assert!(matches!(q, Query::Ask(gp) if gp.triples.len() == 1));
    }

    #[test]
    fn parse_order_by_plain_var() {
        let q =
            parse_select("SELECT ?s WHERE { ?s ?p ?o } ORDER BY ?s LIMIT 10 OFFSET 20").unwrap();
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].descending);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, Some(20));
    }

    #[test]
    fn parse_numeric_filters() {
        let q = parse_select("SELECT ?f WHERE { ?f dbo:budget ?b . FILTER(?b >= 8.0E7) }").unwrap();
        let Expr::Cmp(CmpOp::Ge, _, right) = &q.pattern.filters[0] else {
            panic!()
        };
        let Expr::Const(Term::Literal(lit)) = &**right else {
            panic!()
        };
        assert_eq!(lit.as_f64(), Some(8.0e7));
    }

    #[test]
    fn parse_count_distinct_star() {
        let q = parse_select("SELECT (COUNT(DISTINCT ?x) AS ?n) WHERE { ?x ?p ?o }").unwrap();
        let Projection::Items(items) = &q.projection else {
            panic!()
        };
        assert!(matches!(
            &items[0],
            SelectItem::Agg {
                agg: Aggregate::Count {
                    distinct: true,
                    var: Some(_)
                },
                ..
            }
        ));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_query("SELECT WHERE { ?s ?p ?o }").is_err());
        assert!(parse_query("SELECT ?s { ?s ?p }").is_err());
        assert!(parse_query("SELECT ?s WHERE { ?s nope:p ?o }").is_err());
        assert!(parse_query("FOO ?s").is_err());
        assert!(parse_query("SELECT ?s WHERE { ?s ?p ?o } LIMIT -3").is_err());
        assert!(parse_query("SELECT ?s WHERE { \"lit\" ?p ?o } extra").is_err());
    }

    #[test]
    fn custom_prefix_overrides_default() {
        let q = parse_select(
            "PREFIX dbo: <http://other.example/onto/> SELECT ?s WHERE { ?s a dbo:City }",
        )
        .unwrap();
        let TermPattern::Term(Term::Iri(iri)) = &q.pattern.triples[0].object else {
            panic!()
        };
        assert_eq!(iri, "http://other.example/onto/City");
    }

    #[test]
    fn regex_with_flags() {
        let q =
            parse_select(r#"SELECT ?s WHERE { ?s ?p ?o . FILTER(regex(str(?o), "ken", "i")) }"#)
                .unwrap();
        assert!(matches!(&q.pattern.filters[0], Expr::Regex(_, p, true) if p == "ken"));
    }

    #[test]
    fn filter_between_patterns() {
        let q = parse_select(
            "SELECT ?s WHERE { ?s a dbo:City . FILTER(bound(?s)) . ?s dbo:population ?pop }",
        )
        .unwrap();
        assert_eq!(q.pattern.triples.len(), 2);
        assert_eq!(q.pattern.filters.len(), 1);
    }
}
