//! Per-request trace spans and the flight recorder.
//!
//! A [`Trace`] is a cheap `Arc` handle created at the request's entry tier
//! (front-end submit, server entry, or cluster edge) when the 1-in-N sampler
//! fires. It rides the request across threads — the evented front-end parks
//! and resumes sessions on different workers, and the cluster edge fans out
//! onto scoped shard threads — collecting [`SpanRecord`]s along the way.
//! Deep layers (coalescer, caches, model scans) never see the handle: they
//! run under a thread-local [`TraceScope`] and their [`StageTimer`](crate::StageTimer)
//! spans attach to whatever trace is current, so adding a stage never
//! changes a function signature.
//!
//! Completion pushes the finished [`TraceRecord`] into the
//! [`FlightRecorder`]: a bounded lock-sharded ring buffer of recent traces
//! plus an exact slowest-N exemplar set per stage, so "show me what a p99
//! request actually did" is one call after any load run.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::Stage;

/// One timed interval inside a request.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Stage name (one of [`Stage::name`]) or a custom label.
    pub name: &'static str,
    /// Offset from the trace's start, microseconds.
    pub start_us: u64,
    /// Duration, microseconds.
    pub dur_us: u64,
    /// Index of the enclosing span (per-shard scatter children point at
    /// their `shard_rtt` span); `None` for request-level spans.
    pub parent: Option<u32>,
    /// Freeform annotation: `leader`/`follower wait_us=…`, `shard=2
    /// replica=0 hedge`, cache `hit`/`miss`, …
    pub tag: String,
}

struct Meta {
    tenant: String,
    kind: &'static str,
    tier: String,
}

struct TraceInner {
    id: u64,
    started: Instant,
    meta: Mutex<Meta>,
    spans: Mutex<Vec<SpanRecord>>,
}

/// Live handle to an in-flight sampled request. Clone freely; all clones
/// append into the same span list.
#[derive(Clone)]
pub struct Trace(Arc<TraceInner>);

impl Trace {
    pub(crate) fn new(id: u64, kind: &'static str, tenant: &str) -> Trace {
        Trace(Arc::new(TraceInner {
            id,
            started: Instant::now(),
            meta: Mutex::new(Meta {
                tenant: tenant.to_string(),
                kind,
                tier: String::new(),
            }),
            spans: Mutex::new(Vec::new()),
        }))
    }

    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// The instant the trace began (spans are stored relative to it).
    pub fn started(&self) -> Instant {
        self.0.started
    }

    /// Record the execution tier the request ultimately ran at.
    pub fn set_tier(&self, tier: &str) {
        self.0.meta.lock().unwrap().tier = tier.to_string();
    }

    /// Append a completed span; returns its index (usable as a parent).
    pub fn add_span(
        &self,
        name: &'static str,
        started_at: Instant,
        dur_us: u64,
        parent: Option<u32>,
        tag: String,
    ) -> u32 {
        let start_us = started_at
            .saturating_duration_since(self.0.started)
            .as_micros() as u64;
        let mut spans = self.0.spans.lock().unwrap();
        spans.push(SpanRecord {
            name,
            start_us,
            dur_us,
            parent,
            tag,
        });
        (spans.len() - 1) as u32
    }

    /// Open a span whose duration is not known yet (a scatter parent that
    /// must exist before its children do); close it with [`close_span`].
    ///
    /// [`close_span`]: Trace::close_span
    pub fn open_span(
        &self,
        name: &'static str,
        parent: Option<u32>,
        tag: String,
    ) -> (u32, Instant) {
        let at = Instant::now();
        (self.add_span(name, at, 0, parent, tag), at)
    }

    /// Fill in the duration of a span opened with [`Trace::open_span`].
    pub fn close_span(&self, idx: u32, dur_us: u64) {
        if let Some(span) = self.0.spans.lock().unwrap().get_mut(idx as usize) {
            span.dur_us = dur_us;
        }
    }

    /// Seal the trace into an immutable record (total = start → now).
    pub(crate) fn finish(self) -> TraceRecord {
        let total_us = self.0.started.elapsed().as_micros() as u64;
        let meta = self.0.meta.lock().unwrap();
        let spans = std::mem::take(&mut *self.0.spans.lock().unwrap());
        TraceRecord {
            id: self.0.id,
            tenant: meta.tenant.clone(),
            kind: meta.kind,
            tier: meta.tier.clone(),
            total_us,
            spans,
        }
    }
}

/// A completed, immutable request trace.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    pub id: u64,
    pub tenant: String,
    pub kind: &'static str,
    /// Execution tier, when the request reported one (empty otherwise).
    pub tier: String,
    /// End-to-end duration, microseconds.
    pub total_us: u64,
    pub spans: Vec<SpanRecord>,
}

impl TraceRecord {
    /// Longest span duration recorded for `stage` (0 when absent).
    pub fn stage_us(&self, stage: Stage) -> u64 {
        let name = stage.name();
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_us)
            .max()
            .unwrap_or(0)
    }

    /// Render the trace as indented text, children under their parents.
    pub fn render(&self) -> String {
        let mut out = format!(
            "trace {} kind={} tenant={} tier={} total_us={}\n",
            self.id,
            self.kind,
            self.tenant,
            if self.tier.is_empty() {
                "-"
            } else {
                &self.tier
            },
            self.total_us
        );
        // Spans are appended in completion order; render roots in order and
        // each child directly under its parent.
        for (i, span) in self.spans.iter().enumerate() {
            if span.parent.is_some() {
                continue;
            }
            render_span(&mut out, span, 1);
            for child in self.spans.iter() {
                if child.parent == Some(i as u32) {
                    render_span(&mut out, child, 2);
                }
            }
        }
        out
    }
}

fn render_span(out: &mut String, span: &SpanRecord, depth: usize) {
    out.push_str(&"  ".repeat(depth));
    out.push_str(&format!(
        "[{:>8} +{:>8}us] {}",
        span.start_us, span.dur_us, span.name
    ));
    if !span.tag.is_empty() {
        out.push(' ');
        out.push_str(&span.tag);
    }
    out.push('\n');
}

// --- thread-local request context ------------------------------------

#[derive(Clone)]
struct Ctx {
    trace: Trace,
    parent: Option<u32>,
}

thread_local! {
    static CURRENT: RefCell<Option<Ctx>> = const { RefCell::new(None) };
    static REQUEST_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// The trace of the request this thread is currently executing, if any.
pub fn current() -> Option<Trace> {
    CURRENT.with(|c| c.borrow().as_ref().map(|ctx| ctx.trace.clone()))
}

/// Current trace plus the span index new spans should parent under.
pub fn current_ctx() -> Option<(Trace, Option<u32>)> {
    CURRENT.with(|c| {
        c.borrow()
            .as_ref()
            .map(|ctx| (ctx.trace.clone(), ctx.parent))
    })
}

/// Installs a trace (or clears it, for `None`) as this thread's current
/// request context for the guard's lifetime; restores the previous context
/// on drop. Used where a request handle crosses a thread boundary: front-end
/// workers resuming a parked session, cluster scatter threads.
pub struct TraceScope {
    prev: Option<Ctx>,
}

impl TraceScope {
    pub fn enter(trace: Option<Trace>) -> TraceScope {
        let next = trace.map(|trace| Ctx {
            trace,
            parent: None,
        });
        TraceScope {
            prev: CURRENT.with(|c| c.replace(next)),
        }
    }

    /// Enter with spans parented under `parent` (a scatter shard span).
    pub fn enter_with_parent(trace: Trace, parent: u32) -> TraceScope {
        TraceScope {
            prev: CURRENT.with(|c| {
                c.replace(Some(Ctx {
                    trace,
                    parent: Some(parent),
                }))
            }),
        }
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT.with(|c| c.replace(self.prev.take()));
    }
}

/// Marks this thread as inside a request whose end-to-end accounting is
/// owned by an outer tier, so inner tiers' request scopes stay inert
/// instead of double-counting `end_to_end` or opening nested root traces.
pub struct RequestMark(());

impl RequestMark {
    pub fn new() -> RequestMark {
        REQUEST_DEPTH.with(|d| d.set(d.get() + 1));
        RequestMark(())
    }
}

impl Default for RequestMark {
    fn default() -> Self {
        RequestMark::new()
    }
}

impl Drop for RequestMark {
    fn drop(&mut self) {
        REQUEST_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Whether an outer tier already owns this thread's request accounting.
pub fn in_request() -> bool {
    REQUEST_DEPTH.with(|d| d.get()) > 0
}

// --- flight recorder ---------------------------------------------------

const RING_SHARDS: usize = 8;
const DEFAULT_RING_CAPACITY: usize = 2048;
const DEFAULT_KEEP_SLOWEST: usize = 8;

struct Ring {
    buf: std::collections::VecDeque<Arc<TraceRecord>>,
    capacity: usize,
}

/// Bounded, lock-sharded store of completed traces: a ring of the most
/// recent records plus an exact slowest-N exemplar set per stage (and one
/// for end-to-end totals).
pub struct FlightRecorder {
    rings: Vec<Mutex<Ring>>,
    /// `slowest[stage]` holds up to `keep` records, ascending by that
    /// stage's longest span; the last slot for totals.
    slowest: Vec<Mutex<Vec<Arc<TraceRecord>>>>,
    keep: usize,
    recorded: AtomicU64,
    evicted: AtomicU64,
}

impl FlightRecorder {
    pub fn new(ring_capacity: usize, keep_slowest: usize) -> FlightRecorder {
        let per_shard = ring_capacity.div_ceil(RING_SHARDS).max(1);
        FlightRecorder {
            rings: (0..RING_SHARDS)
                .map(|_| {
                    Mutex::new(Ring {
                        buf: std::collections::VecDeque::with_capacity(per_shard),
                        capacity: per_shard,
                    })
                })
                .collect(),
            slowest: (0..=Stage::COUNT).map(|_| Mutex::new(Vec::new())).collect(),
            keep: keep_slowest.max(1),
            recorded: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
        }
    }

    pub fn push(&self, record: TraceRecord) {
        let record = Arc::new(record);
        self.recorded.fetch_add(1, Ordering::Relaxed);
        {
            let mut ring = self.rings[record.id as usize % RING_SHARDS].lock().unwrap();
            if ring.buf.len() == ring.capacity {
                ring.buf.pop_front();
                self.evicted.fetch_add(1, Ordering::Relaxed);
            }
            ring.buf.push_back(record.clone());
        }
        for stage in Stage::ALL {
            let us = record.stage_us(stage);
            if us > 0 {
                self.offer_slowest(stage as usize, us, &record);
            }
        }
        self.offer_slowest(Stage::COUNT, record.total_us, &record);
    }

    /// Insert into a slowest-N list iff it beats the current floor; the
    /// whole comparison runs under the list's mutex so the invariant — the
    /// list holds exactly the N largest keys ever offered — is exact even
    /// under concurrent pushes.
    fn offer_slowest(&self, slot: usize, key_us: u64, record: &Arc<TraceRecord>) {
        let stage = Stage::ALL.get(slot).copied();
        let key = |r: &Arc<TraceRecord>| match stage {
            Some(s) => r.stage_us(s),
            None => r.total_us,
        };
        let mut list = self.slowest[slot].lock().unwrap();
        if list.len() == self.keep && key(&list[0]) >= key_us {
            return;
        }
        let at = list.partition_point(|r| key(r) < key_us);
        list.insert(at, record.clone());
        if list.len() > self.keep {
            list.remove(0);
        }
    }

    /// Completed traces pushed since construction.
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Records evicted from the ring to make room (0 means every sampled
    /// trace is still retrievable).
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// The slowest-N exemplars for one stage, slowest last.
    pub fn slowest_for(&self, stage: Stage) -> Vec<Arc<TraceRecord>> {
        self.slowest[stage as usize].lock().unwrap().clone()
    }

    /// The N slowest requests end-to-end, slowest first.
    pub fn slowest(&self, n: usize) -> Vec<Arc<TraceRecord>> {
        let list = self.slowest[Stage::COUNT].lock().unwrap();
        list.iter().rev().take(n).cloned().collect()
    }

    /// Most recent records across all ring shards (order unspecified).
    pub fn recent(&self) -> Vec<Arc<TraceRecord>> {
        self.rings
            .iter()
            .flat_map(|r| r.lock().unwrap().buf.iter().cloned().collect::<Vec<_>>())
            .collect()
    }

    /// Human-readable dump of the N slowest traces.
    pub fn dump_slowest(&self, n: usize) -> String {
        let mut out = String::new();
        for record in self.slowest(n) {
            out.push_str(&record.render());
        }
        out
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(DEFAULT_RING_CAPACITY, DEFAULT_KEEP_SLOWEST)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, total_us: u64, stage: Stage, stage_us: u64) -> TraceRecord {
        TraceRecord {
            id,
            tenant: "t".to_string(),
            kind: "run",
            tier: String::new(),
            total_us,
            spans: vec![SpanRecord {
                name: stage.name(),
                start_us: 0,
                dur_us: stage_us,
                parent: None,
                tag: String::new(),
            }],
        }
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let rec = FlightRecorder::new(8, 4);
        for id in 0..100 {
            rec.push(record(id, id, Stage::QsmScan, id));
        }
        assert_eq!(rec.recorded(), 100);
        assert!(rec.recent().len() <= 8);
        assert_eq!(rec.evicted() + rec.recent().len() as u64, 100);
    }

    #[test]
    fn slowest_keeps_the_exact_top_n_per_stage() {
        let rec = FlightRecorder::new(1024, 3);
        for id in 0..50u64 {
            // Shuffle the offer order deterministically.
            let v = (id * 17) % 50;
            rec.push(record(id, v, Stage::QcmScan, v + 1));
        }
        let top: Vec<u64> = rec
            .slowest_for(Stage::QcmScan)
            .iter()
            .map(|r| r.stage_us(Stage::QcmScan))
            .collect();
        assert_eq!(top, vec![48, 49, 50]);
        let totals: Vec<u64> = rec.slowest(3).iter().map(|r| r.total_us).collect();
        assert_eq!(totals, vec![49, 48, 47]);
    }

    #[test]
    fn scopes_nest_and_restore() {
        assert!(current().is_none());
        let t = Trace::new(1, "run", "tenant");
        {
            let _outer = TraceScope::enter(Some(t.clone()));
            assert_eq!(current().unwrap().id(), 1);
            {
                let _inner = TraceScope::enter(None);
                assert!(current().is_none());
            }
            assert_eq!(current().unwrap().id(), 1);
            assert!(!in_request());
            let _mark = RequestMark::new();
            assert!(in_request());
        }
        assert!(current().is_none());
        assert!(!in_request());
    }

    #[test]
    fn render_indents_children_under_parents() {
        let t = Trace::new(7, "run", "alice");
        t.set_tier("full");
        let (shard, at) = t.open_span("shard_rtt", None, "shard=2".to_string());
        t.add_span("qsm_scan", at, 40, Some(shard), String::new());
        t.close_span(shard, 55);
        let rec = t.finish();
        let text = rec.render();
        assert!(text.contains("trace 7 kind=run tenant=alice tier=full"));
        let shard_line = text.lines().position(|l| l.contains("shard_rtt")).unwrap();
        let child_line = text.lines().position(|l| l.contains("qsm_scan")).unwrap();
        assert_eq!(child_line, shard_line + 1);
        assert!(text.lines().nth(child_line).unwrap().starts_with("    "));
    }
}
