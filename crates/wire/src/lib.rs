//! # sapphire-wire
//!
//! A real process boundary for the Sapphire cluster's edge↔shard hop.
//!
//! PRs 3–7 built a multi-tier federation whose tiers compose *in process*:
//! `ClusterRouter` → replica was a function call, so serialization,
//! framing, partial failure, and connection management were never paid or
//! tested. This crate is that boundary made real:
//!
//! * [`frame`] — length-prefixed frames with a magic byte and a hard size
//!   cap, and the typed [`WireError`] taxonomy every layer above maps from;
//! * [`codec`] — a hand-rolled, dependency-free binary encoding (the repo
//!   takes no serde) of the edge↔shard request/reply types, tier and
//!   remaining-deadline included, with a *total* decoder: corrupt bytes
//!   return [`WireError::Corrupt`], never a panic, a hang, or a huge
//!   allocation;
//! * [`WireServer`] — hosts any [`ShardService`] behind a TCP listener
//!   (bounded accept/worker model, graceful drain, and a `kill` switch for
//!   fault drills);
//! * [`WireClient`] — implements [`ShardService`] over a reconnecting
//!   connection pool with per-call deadlines, typed mapping of every IO
//!   failure onto [`ServerError::Unreachable`] (so the router's existing
//!   backoff/hedging/degradation machinery fires unchanged), and piggybacked
//!   load headers that keep the router's load probes round-trip-free;
//! * [`FaultProxy`] — injectable latency, connection drops, mid-stream
//!   kills, and one-way partitions between any client and server.
//!
//! The contract that makes all of this safe: every request on this wire is
//! **stateless and idempotent** (the cluster scatter shapes carry the
//! tenant and full query; sessions never cross shards), so "the link died,
//! fail over to a sibling replica" is always correct.
//!
//! [`ShardService`]: sapphire_server::ShardService
//! [`ServerError::Unreachable`]: sapphire_server::ServerError::Unreachable

#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod fault;
pub mod frame;
pub mod server;

pub use client::{WireClient, WireClientConfig};
pub use codec::{LoadHeader, WireReply, WireRequest};
pub use fault::{FaultPlan, FaultProxy};
pub use frame::{WireError, MAX_FRAME, WIRE_VERSION};
pub use server::{WireServer, WireServerConfig, WireServerStats};
