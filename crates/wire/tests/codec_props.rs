//! Property tests for the hand-rolled wire codec.
//!
//! Two families:
//!
//! * **Round trip** — randomized instances covering every variant of
//!   [`WireRequest`] and [`WireReply`] (and every [`ServerError`] arm)
//!   survive encode → decode intact. Requests compare structurally;
//!   replies, whose payload types don't implement `PartialEq`, compare by
//!   re-encoding the decoded value and demanding byte identity (the codec
//!   is deterministic, so equal bytes ⇔ equal values).
//! * **Totality** — the decoder never panics, hangs, or over-allocates on
//!   hostile input: every strict prefix of a valid payload is rejected,
//!   random bit flips decode or fail but never crash, and the frame layer
//!   rejects corrupt lengths and oversized announcements before allocating.
//!
//! The generators use the proptest shim's deterministic [`Gen`] directly
//! (the shim's strategy DSL doesn't reach recursive ASTs), re-seeded per
//! case so failures reproduce.

use std::sync::Arc;
use std::time::Duration;

use proptest::{Gen, CASES};
use sapphire_core::qcm::{Completion, CompletionResult};
use sapphire_core::qsm::{
    AlteredPosition, QsmOutput, RelaxedQuery, StructureSuggestion, TermAlternative,
};
use sapphire_core::session::SessionError;
use sapphire_core::MatchSource;
use sapphire_rdf::{Literal, Term};
use sapphire_server::registry::SessionId;
use sapphire_server::{RunPayload, ServerError};
use sapphire_sparql::{
    Aggregate, CmpOp, Expr, GraphPattern, OrderKey, Projection, Query, QueryResult, SelectItem,
    SelectQuery, Solutions, TermPattern, TriplePattern,
};
use sapphire_wire::codec::{
    decode_reply, decode_request, encode_reply, encode_request, LoadHeader, WireReply, WireRequest,
};
use sapphire_wire::frame::{self, WireError, MAX_FRAME};

// ------------------------------------------------------------- generators --

/// A short string mixing ASCII and multi-byte UTF-8 (exercises the decoder's
/// UTF-8 validation with correct byte lengths).
fn gen_str(g: &mut Gen) -> String {
    const ALPHABET: &[char] = &[
        'a', 'b', 'z', 'Q', '0', '9', ' ', '?', ':', '/', '-', '_', '"', '\\', 'é', 'ß', '中', '🦀',
    ];
    let len = g.below(9) as usize;
    (0..len)
        .map(|_| ALPHABET[g.below(ALPHABET.len() as u64) as usize])
        .collect()
}

fn gen_opt_str(g: &mut Gen) -> Option<String> {
    if g.below(2) == 0 {
        None
    } else {
        Some(gen_str(g))
    }
}

fn gen_duration(g: &mut Gen) -> Duration {
    Duration::new(g.below(1 << 40), g.below(1_000_000_000) as u32)
}

fn gen_term(g: &mut Gen) -> Term {
    match g.below(3) {
        0 => Term::Iri(gen_str(g)),
        1 => Term::Literal(Literal {
            value: gen_str(g),
            lang: gen_opt_str(g),
            datatype: gen_opt_str(g),
        }),
        _ => Term::Blank(gen_str(g)),
    }
}

fn gen_term_pattern(g: &mut Gen) -> TermPattern {
    if g.below(2) == 0 {
        TermPattern::Var(gen_str(g))
    } else {
        TermPattern::Term(gen_term(g))
    }
}

fn gen_triple_pattern(g: &mut Gen) -> TriplePattern {
    TriplePattern {
        subject: gen_term_pattern(g),
        predicate: gen_term_pattern(g),
        object: gen_term_pattern(g),
    }
}

fn gen_cmp_op(g: &mut Gen) -> CmpOp {
    [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ][g.below(6) as usize]
}

/// Depth-bounded so recursion terminates; at depth 0 only leaves appear.
fn gen_expr(g: &mut Gen, depth: usize) -> Expr {
    let max = if depth == 0 { 3 } else { 18 };
    match g.below(max) {
        0 => Expr::Var(gen_str(g)),
        1 => Expr::Const(gen_term(g)),
        2 => Expr::Bound(gen_str(g)),
        3 => Expr::And(
            Box::new(gen_expr(g, depth - 1)),
            Box::new(gen_expr(g, depth - 1)),
        ),
        4 => Expr::Or(
            Box::new(gen_expr(g, depth - 1)),
            Box::new(gen_expr(g, depth - 1)),
        ),
        5 => Expr::Not(Box::new(gen_expr(g, depth - 1))),
        6 => Expr::Cmp(
            gen_cmp_op(g),
            Box::new(gen_expr(g, depth - 1)),
            Box::new(gen_expr(g, depth - 1)),
        ),
        7 => Expr::IsLiteral(Box::new(gen_expr(g, depth - 1))),
        8 => Expr::IsIri(Box::new(gen_expr(g, depth - 1))),
        9 => Expr::Lang(Box::new(gen_expr(g, depth - 1))),
        10 => Expr::Str(Box::new(gen_expr(g, depth - 1))),
        11 => Expr::StrLen(Box::new(gen_expr(g, depth - 1))),
        12 => Expr::Contains(
            Box::new(gen_expr(g, depth - 1)),
            Box::new(gen_expr(g, depth - 1)),
        ),
        13 => Expr::StrStarts(
            Box::new(gen_expr(g, depth - 1)),
            Box::new(gen_expr(g, depth - 1)),
        ),
        14 => Expr::Regex(
            Box::new(gen_expr(g, depth - 1)),
            gen_str(g),
            g.below(2) == 1,
        ),
        15 => Expr::LCase(Box::new(gen_expr(g, depth - 1))),
        16 => Expr::UCase(Box::new(gen_expr(g, depth - 1))),
        _ => Expr::Year(Box::new(gen_expr(g, depth - 1))),
    }
}

fn gen_aggregate(g: &mut Gen) -> Aggregate {
    match g.below(5) {
        0 => Aggregate::Count {
            distinct: g.below(2) == 1,
            var: gen_opt_str(g),
        },
        1 => Aggregate::Sum(gen_str(g)),
        2 => Aggregate::Min(gen_str(g)),
        3 => Aggregate::Max(gen_str(g)),
        _ => Aggregate::Avg(gen_str(g)),
    }
}

fn gen_projection(g: &mut Gen) -> Projection {
    if g.below(3) == 0 {
        Projection::Star
    } else {
        let n = g.below(4) as usize;
        Projection::Items(
            (0..n)
                .map(|_| {
                    if g.below(2) == 0 {
                        SelectItem::Var(gen_str(g))
                    } else {
                        SelectItem::Agg {
                            agg: gen_aggregate(g),
                            alias: gen_str(g),
                        }
                    }
                })
                .collect(),
        )
    }
}

fn gen_graph_pattern(g: &mut Gen) -> GraphPattern {
    GraphPattern {
        triples: (0..g.below(4)).map(|_| gen_triple_pattern(g)).collect(),
        filters: (0..g.below(3)).map(|_| gen_expr(g, 2)).collect(),
    }
}

fn gen_opt_usize(g: &mut Gen) -> Option<usize> {
    if g.below(2) == 0 {
        None
    } else {
        Some(g.below(1 << 33) as usize)
    }
}

fn gen_select_query(g: &mut Gen) -> SelectQuery {
    SelectQuery {
        distinct: g.below(2) == 1,
        projection: gen_projection(g),
        pattern: gen_graph_pattern(g),
        group_by: (0..g.below(3)).map(|_| gen_str(g)).collect(),
        order_by: (0..g.below(3))
            .map(|_| OrderKey {
                expr: gen_expr(g, 1),
                descending: g.below(2) == 1,
            })
            .collect(),
        limit: gen_opt_usize(g),
        offset: gen_opt_usize(g),
    }
}

fn gen_query(g: &mut Gen) -> Query {
    if g.below(2) == 0 {
        Query::Select(gen_select_query(g))
    } else {
        Query::Ask(gen_graph_pattern(g))
    }
}

fn gen_solutions(g: &mut Gen) -> Solutions {
    let nv = g.below(4) as usize;
    Solutions {
        vars: (0..nv).map(|_| gen_str(g)).collect(),
        rows: (0..g.below(4))
            .map(|_| {
                (0..nv)
                    .map(|_| {
                        if g.below(3) == 0 {
                            None
                        } else {
                            Some(gen_term(g))
                        }
                    })
                    .collect()
            })
            .collect(),
    }
}

fn gen_query_result(g: &mut Gen) -> QueryResult {
    if g.below(2) == 0 {
        QueryResult::Solutions(gen_solutions(g))
    } else {
        QueryResult::Boolean(g.below(2) == 1)
    }
}

fn gen_completion_result(g: &mut Gen) -> CompletionResult {
    CompletionResult {
        suggestions: (0..g.below(4))
            .map(|_| Completion {
                text: gen_str(g),
                predicate_iri: gen_opt_str(g),
                source: if g.below(2) == 0 {
                    MatchSource::SuffixTree
                } else {
                    MatchSource::ResidualBins
                },
            })
            .collect(),
        tree_hit: g.below(2) == 1,
        tree_time: gen_duration(g),
        bins_time: gen_duration(g),
        residual_candidates: g.below(1 << 20) as usize,
    }
}

fn gen_term_alternative(g: &mut Gen) -> TermAlternative {
    TermAlternative {
        triple_index: g.below(64) as usize,
        position: if g.below(2) == 0 {
            AlteredPosition::Predicate
        } else {
            AlteredPosition::Object
        },
        original: gen_str(g),
        replacement: gen_str(g),
        // Raw bit patterns: NaN, infinities, and subnormals must all
        // survive the f64-as-bits encoding byte-exactly.
        similarity: f64::from_bits(g.bits()),
        query: gen_select_query(g),
        answers: gen_solutions(g),
    }
}

fn gen_qsm_output(g: &mut Gen) -> QsmOutput {
    let tier = g.below(3) as usize;
    QsmOutput {
        alternatives: (0..g.below(3)).map(|_| gen_term_alternative(g)).collect(),
        relaxations: (0..g.below(2))
            .map(|_| StructureSuggestion {
                relaxed: RelaxedQuery {
                    query: gen_select_query(g),
                    tree: (0..g.below(3))
                        .map(|_| (gen_term(g), gen_term(g), gen_term(g)))
                        .collect(),
                    terminals: (0..g.below(3)).map(|_| gen_term(g)).collect(),
                    queries_used: g.below(1 << 10) as usize,
                    complete: g.below(2) == 1,
                },
                answers: gen_solutions(g),
            })
            .collect(),
        candidates: Arc::new((0..g.below(3)).map(|_| gen_term_alternative(g)).collect()),
        elapsed: gen_duration(g),
        tier,
        degraded: tier > 0,
    }
}

fn gen_run_payload(g: &mut Gen) -> RunPayload {
    RunPayload {
        answers: gen_solutions(g),
        executed: g.below(2) == 1,
        suggestions: Arc::new(gen_qsm_output(g)),
    }
}

fn gen_server_error(g: &mut Gen) -> ServerError {
    match g.below(11) {
        0 => ServerError::Overloaded {
            in_flight: g.below(1 << 16) as usize,
            queue_depth: g.below(1 << 16) as usize,
        },
        1 => ServerError::QueueTimeout {
            waited_ms: g.bits(),
        },
        2 => ServerError::Timeout {
            work_used: g.bits(),
        },
        3 => ServerError::QuotaExhausted {
            tenant: gen_str(g),
            used: g.bits(),
            budget: g.bits(),
        },
        4 => ServerError::UnknownSession(SessionId(g.bits())),
        5 => ServerError::SessionLimit {
            open: g.below(1 << 20) as usize,
            limit: g.below(1 << 20) as usize,
        },
        6 => ServerError::UnknownSuggestion {
            index: g.below(1 << 20) as usize,
            available: g.below(1 << 20) as usize,
        },
        7 => ServerError::ShuttingDown,
        8 => ServerError::Session(match g.below(3) {
            0 => SessionError::InvalidSubject(gen_str(g)),
            1 => SessionError::UnknownPredicate(gen_str(g)),
            _ => SessionError::EmptyQuery,
        }),
        9 => ServerError::Unreachable { reason: gen_str(g) },
        _ => ServerError::Backend(gen_str(g)),
    }
}

fn gen_request(g: &mut Gen) -> WireRequest {
    match g.below(3) {
        0 => WireRequest::Complete {
            tenant: gen_str(g),
            term: gen_str(g),
            fetch: g.below(1 << 16) as usize,
        },
        1 => WireRequest::Run {
            tenant: gen_str(g),
            query: gen_select_query(g),
            tier: g.below(3) as usize,
            budget: if g.below(2) == 0 {
                None
            } else {
                Some(gen_duration(g))
            },
        },
        _ => WireRequest::Raw {
            tenant: gen_str(g),
            query: gen_query(g),
        },
    }
}

fn gen_load_header(g: &mut Gen) -> LoadHeader {
    LoadHeader {
        in_flight: g.below(1 << 20) as u32,
        queued: g.below(1 << 20) as u32,
        pressure: g.below(3) as u8,
    }
}

fn gen_reply_result(g: &mut Gen) -> Result<WireReply, ServerError> {
    match g.below(4) {
        0 => Ok(WireReply::Completion(gen_completion_result(g))),
        1 => Ok(WireReply::Run(gen_run_payload(g))),
        2 => Ok(WireReply::Raw(gen_query_result(g))),
        _ => Err(gen_server_error(g)),
    }
}

// ------------------------------------------------------------- round trip --

#[test]
fn every_request_variant_round_trips() {
    let mut g = Gen::new("wire::codec::request_round_trip");
    for case in 0..CASES {
        g.start_case(case);
        let req = gen_request(&mut g);
        let bytes = encode_request(&req);
        let back = decode_request(&bytes).unwrap_or_else(|e| panic!("case {case}: {e}\n{req:?}"));
        assert_eq!(back, req, "case {case}");
        // Encoding is deterministic: re-encoding the decoded value is a
        // byte-identical frame payload.
        assert_eq!(encode_request(&back), bytes, "case {case}");
    }
}

#[test]
fn every_reply_variant_round_trips_byte_exact() {
    let mut g = Gen::new("wire::codec::reply_round_trip");
    for case in 0..CASES {
        g.start_case(case);
        let load = gen_load_header(&mut g);
        let result = gen_reply_result(&mut g);
        let bytes = encode_reply(load, &result);
        let (load_back, result_back) =
            decode_reply(&bytes).unwrap_or_else(|e| panic!("case {case}: {e}\n{result:?}"));
        assert_eq!(load_back, load, "case {case}");
        // Reply payload types carry no PartialEq; the codec is
        // deterministic, so byte identity of the re-encoding IS value
        // equality — and it's exactly the property the cluster determinism
        // gate needs (same reply ⇒ same bytes at the edge).
        assert_eq!(encode_reply(load_back, &result_back), bytes, "case {case}");
        if let (Err(e_back), Err(e)) = (&result_back, &result) {
            assert_eq!(e_back, e, "case {case}: error arm is structural");
        }
    }
}

// --------------------------------------------------------------- totality --

#[test]
fn every_strict_prefix_of_a_request_is_rejected_without_panic() {
    let mut g = Gen::new("wire::codec::request_prefixes");
    for case in 0..CASES {
        g.start_case(case);
        let bytes = encode_request(&gen_request(&mut g));
        for cut in 0..bytes.len() {
            // Left-to-right deterministic parse: a strict prefix always
            // runs out of bytes (or trips a presence/length check) before
            // `done()` could pass. Must be an error, never a panic.
            assert!(
                decode_request(&bytes[..cut]).is_err(),
                "case {case}: prefix of {cut}/{} decoded",
                bytes.len()
            );
        }
    }
}

#[test]
fn every_strict_prefix_of_a_reply_is_rejected_without_panic() {
    let mut g = Gen::new("wire::codec::reply_prefixes");
    for case in 0..CASES {
        g.start_case(case);
        let load = gen_load_header(&mut g);
        let bytes = encode_reply(load, &gen_reply_result(&mut g));
        for cut in 0..bytes.len() {
            assert!(
                decode_reply(&bytes[..cut]).is_err(),
                "case {case}: prefix of {cut}/{} decoded",
                bytes.len()
            );
        }
    }
}

#[test]
fn bit_flips_never_panic_or_over_allocate() {
    let mut g = Gen::new("wire::codec::bit_flips");
    for case in 0..CASES {
        g.start_case(case);
        let mut req_bytes = encode_request(&gen_request(&mut g));
        let mut rep_bytes = encode_reply(gen_load_header(&mut g), &gen_reply_result(&mut g));
        for bytes in [&mut req_bytes, &mut rep_bytes] {
            if bytes.is_empty() {
                continue;
            }
            for _ in 0..16 {
                let pos = g.below(bytes.len() as u64) as usize;
                let bit = 1u8 << g.below(8);
                bytes[pos] ^= bit;
                // Either parse is acceptable (a flip inside string content
                // yields a different valid message); crashing is not. The
                // reader's `len()` bound also keeps a corrupt count from
                // sizing a huge allocation, so this loop stays cheap.
                let _ = decode_request(bytes);
                let _ = decode_reply(bytes);
                bytes[pos] ^= bit; // restore for the next flip
            }
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut g = Gen::new("wire::codec::trailing");
    for case in 0..CASES {
        g.start_case(case);
        let mut bytes = encode_request(&gen_request(&mut g));
        bytes.push(0);
        assert!(decode_request(&bytes).is_err(), "case {case}");
    }
}

// ------------------------------------------------------------ frame layer --

#[test]
fn truncated_frames_at_every_cut_fail_typed_without_hanging() {
    let mut frame_bytes = Vec::new();
    frame::write_frame(&mut frame_bytes, frame::kind::REQUEST, &[7u8; 32]).unwrap();
    for cut in 0..frame_bytes.len() {
        let err = frame::read_frame(&mut &frame_bytes[..cut], MAX_FRAME)
            .expect_err("truncated frame decoded");
        match err {
            // Cut before any byte: a clean close. Cut mid-header or
            // mid-payload: a short read. Both typed, neither a hang (the
            // reader consumes a finite slice, never waits).
            WireError::Closed => assert_eq!(cut, 0),
            WireError::ShortRead => assert!(cut > 0),
            other => panic!("cut {cut}: unexpected {other:?}"),
        }
    }
}

#[test]
fn corrupt_length_cannot_allocate_past_the_cap() {
    // A hostile length just under u32::MAX must be rejected by the cap
    // check before the payload buffer is sized.
    for hostile in [MAX_FRAME + 1, u32::MAX / 2, u32::MAX] {
        let mut buf = vec![frame::MAGIC, frame::kind::REPLY];
        buf.extend_from_slice(&hostile.to_le_bytes());
        match frame::read_frame(&mut &buf[..], MAX_FRAME) {
            Err(WireError::TooLarge { len, max }) => {
                assert_eq!(len, hostile);
                assert_eq!(max, MAX_FRAME);
            }
            other => panic!("hostile len {hostile}: {other:?}"),
        }
    }
    // At exactly the cap the length is legal; the failure is the missing
    // payload, not the size.
    let mut buf = vec![frame::MAGIC, frame::kind::REPLY];
    buf.extend_from_slice(&1u32.to_le_bytes());
    assert_eq!(
        frame::read_frame(&mut &buf[..], MAX_FRAME),
        Err(WireError::ShortRead)
    );
}

/// `base` wrapped in `depth` layers of `Not`, built iteratively.
fn nested_not(depth: usize, base: Expr) -> Expr {
    let mut e = base;
    for _ in 0..depth {
        e = Expr::Not(Box::new(e));
    }
    e
}

fn request_with_filter(filter: Expr) -> WireRequest {
    WireRequest::Run {
        tenant: "t".to_string(),
        query: SelectQuery {
            distinct: false,
            projection: Projection::Star,
            pattern: GraphPattern {
                triples: Vec::new(),
                filters: vec![filter],
            },
            group_by: Vec::new(),
            order_by: Vec::new(),
            limit: None,
            offset: None,
        },
        tier: 0,
        budget: None,
    }
}

#[test]
fn plausibly_deep_expressions_round_trip() {
    let req = request_with_filter(nested_not(100, Expr::Var("x".to_string())));
    let bytes = encode_request(&req);
    assert_eq!(decode_request(&bytes).expect("depth 100 decodes"), req);
}

#[test]
fn absurdly_deep_expressions_are_corrupt_not_a_stack_overflow() {
    // One byte of payload per level: a few KB of 0x04 `Not` tags — far
    // under the frame cap — must come back as a typed `Corrupt`, not
    // recurse the decoder off the worker's stack and abort the process.
    // 4096 levels is ~32x past the decoder's depth bound and shallow
    // enough that the (recursive) encoder used to build the fixture is
    // itself safe.
    let req = request_with_filter(nested_not(4096, Expr::Var("x".to_string())));
    let bytes = encode_request(&req);
    match decode_request(&bytes) {
        Err(WireError::Corrupt(msg)) => assert!(
            msg.contains("deep"),
            "expected the depth bound to trip, got: {msg}"
        ),
        other => panic!("deep nesting must be Corrupt, got {other:?}"),
    }
}

#[test]
fn hostile_wide_element_counts_fail_fast_without_huge_preallocation() {
    // A reply claiming millions of `TermAlternative`s (hundreds of bytes
    // each once decoded) backed by one byte per claimed element: the count
    // passes the remaining-bytes bound, so the decoder's preallocation cap
    // is what stands between this frame and a multi-GB capacity request.
    // The first element must fail typed, fast, without a panic.
    let claimed: u32 = 3_000_000;
    let mut payload = Vec::new();
    payload.extend_from_slice(&0u32.to_le_bytes()); // load in_flight
    payload.extend_from_slice(&0u32.to_le_bytes()); // load queued
    payload.push(0); // load pressure
    payload.push(1); // ok
    payload.push(1); // Run body
    payload.extend_from_slice(&0u32.to_le_bytes()); // solutions: 0 vars
    payload.extend_from_slice(&0u32.to_le_bytes()); // solutions: 0 rows
    payload.push(0); // executed = false
    payload.extend_from_slice(&claimed.to_le_bytes()); // alternatives count
    payload.resize(payload.len() + claimed as usize, 0xFF);
    assert!(matches!(decode_reply(&payload), Err(WireError::Corrupt(_))));
}

#[test]
fn desynchronized_streams_fail_on_magic_not_length() {
    let mut g = Gen::new("wire::frame::desync");
    for case in 0..CASES {
        g.start_case(case);
        let first = g.below(256) as u8;
        if first == frame::MAGIC {
            continue;
        }
        let mut buf = vec![first];
        buf.extend((0..16).map(|_| g.below(256) as u8));
        assert!(
            matches!(
                frame::read_frame(&mut &buf[..], MAX_FRAME),
                Err(WireError::Corrupt(_))
            ),
            "case {case}: byte 0x{first:02X} accepted as magic"
        );
    }
}
