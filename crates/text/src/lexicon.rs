//! A Lemon-style verbalization lexicon.
//!
//! Algorithm 2 (§6.2.1) calls `Lemon.getLexica(e)` to find how a predicate is
//! "verbalized in natural language. For example, 'wife' or 'husband' can be
//! verbalized by using 'spouse' instead." The paper uses the DBpedia Lemon
//! lexicon [8, 26]; the live lexicon is a data artifact we cannot ship, so we
//! substitute a curated synonym-group lexicon over the synthetic dataset's
//! vocabulary. The QSM only consumes the `getLexica(term) → verbalizations`
//! contract, which this reproduces exactly.

use std::collections::HashMap;

use crate::tokenize::normalize;

/// A verbalization lexicon: groups of phrases that verbalize one another.
#[derive(Debug, Default, Clone)]
pub struct Lexicon {
    /// Normalized phrase → group index.
    membership: HashMap<String, usize>,
    /// Groups of phrases (normalized).
    groups: Vec<Vec<String>>,
}

impl Lexicon {
    /// An empty lexicon.
    pub fn new() -> Self {
        Self::default()
    }

    /// The default lexicon for the synthetic DBpedia-like vocabulary,
    /// standing in for the DBpedia Lemon lexicon.
    pub fn dbpedia_default() -> Self {
        let mut lex = Lexicon::new();
        let groups: &[&[&str]] = &[
            &["spouse", "wife", "husband", "married to", "partner"],
            &[
                "alma mater",
                "graduated from",
                "studied at",
                "educated at",
                "school attended",
            ],
            &["birth place", "born in", "place of birth", "birthplace"],
            &["death place", "died in", "place of death"],
            &[
                "birth date",
                "born on",
                "date of birth",
                "birthday",
                "birthdays",
            ],
            &["death date", "died on", "date of death"],
            &["author", "writer", "written by", "wrote"],
            &["director", "directed by", "film director"],
            &["starring", "stars", "actor in", "acted in", "cast member"],
            &["publisher", "published by", "publishing house"],
            &[
                "population",
                "inhabitants",
                "people living",
                "number of people",
                "populous",
            ],
            &["country", "nation", "located in country"],
            &["capital", "capital city"],
            &["time zone", "timezone"],
            &["currency", "money"],
            &["designer", "designed by", "architect"],
            &["creator", "created by", "founder", "founded by"],
            &["child", "children", "son", "daughter"],
            &["parent", "parents", "father", "mother"],
            &["vice president", "vp", "deputy"],
            &[
                "instrument",
                "instruments",
                "plays instrument",
                "played instruments",
            ],
            &["budget", "cost", "production budget"],
            &["number of pages", "pages", "page count"],
            &["depth", "deep"],
            &["industry", "sector", "business", "works in"],
            &["affiliation", "affiliated with", "member of"],
            &["located in", "location", "situated in", "state", "lies in"],
            &[
                "name",
                "label",
                "called",
                "surname",
                "family name",
                "nickname",
            ],
            &["type", "kind", "category", "is a"],
            &["chess player", "chess grandmaster"],
        ];
        for group in groups {
            lex.add_group(group.iter().copied());
        }
        lex
    }

    /// Register a group of mutually-substitutable verbalizations. Phrases are
    /// normalized; a phrase already present merges its old and new groups.
    pub fn add_group<'a, I: IntoIterator<Item = &'a str>>(&mut self, phrases: I) {
        let normalized: Vec<String> = phrases.into_iter().map(normalize).collect();
        // Merge with any existing group sharing a phrase.
        let existing = normalized
            .iter()
            .find_map(|p| self.membership.get(p).copied());
        let idx = match existing {
            Some(i) => i,
            None => {
                self.groups.push(Vec::new());
                self.groups.len() - 1
            }
        };
        for p in normalized {
            if !self.groups[idx].contains(&p) {
                self.membership.insert(p.clone(), idx);
                self.groups[idx].push(p);
            }
        }
    }

    /// `getLexica(term)`: all verbalizations of `term`'s group, the queried
    /// term itself first. An unknown term verbalizes only as itself.
    pub fn get_lexica(&self, term: &str) -> Vec<String> {
        let n = normalize(term);
        let mut out = vec![n.clone()];
        if let Some(&idx) = self.membership.get(&n) {
            for p in &self.groups[idx] {
                if *p != n {
                    out.push(p.clone());
                }
            }
        }
        out
    }

    /// True if two phrases verbalize each other.
    pub fn are_synonyms(&self, a: &str, b: &str) -> bool {
        let (na, nb) = (normalize(a), normalize(b));
        if na == nb {
            return true;
        }
        matches!(
            (self.membership.get(&na), self.membership.get(&nb)),
            (Some(x), Some(y)) if x == y
        )
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_lexicon_spouse_group() {
        let lex = Lexicon::dbpedia_default();
        let lexica = lex.get_lexica("wife");
        assert!(lexica.contains(&"spouse".to_string()));
        assert!(lexica.contains(&"husband".to_string()));
        assert_eq!(lexica[0], "wife", "queried term must come first");
    }

    #[test]
    fn normalization_applies() {
        let lex = Lexicon::dbpedia_default();
        assert!(lex.are_synonyms("Alma  Mater", "graduated from"));
        assert!(lex.are_synonyms("almaMater".replace("M", " m").as_str(), "studied at"));
    }

    #[test]
    fn unknown_term_is_self_only() {
        let lex = Lexicon::dbpedia_default();
        assert_eq!(lex.get_lexica("zorble"), vec!["zorble".to_string()]);
        assert!(!lex.are_synonyms("zorble", "spouse"));
        assert!(lex.are_synonyms("zorble", "Zorble"));
    }

    #[test]
    fn add_group_merges_overlapping() {
        let mut lex = Lexicon::new();
        lex.add_group(["a", "b"]);
        lex.add_group(["b", "c"]);
        assert!(lex.are_synonyms("a", "c"));
        assert_eq!(lex.group_count(), 1);
    }

    #[test]
    fn groups_are_disjoint_unless_merged() {
        let mut lex = Lexicon::new();
        lex.add_group(["x", "y"]);
        lex.add_group(["p", "q"]);
        assert!(!lex.are_synonyms("x", "p"));
        assert_eq!(lex.group_count(), 2);
    }
}
